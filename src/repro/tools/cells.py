"""Standard-cell library: layout footprints + transistor templates.

Each :class:`CellDef` couples the three views of Fig. 7 for one cell:

* the **logic view** — a boolean function name ('inv', 'nand2', ...);
* the **transistor view** — a netlist fragment template using the cell's
  port names as external nets;
* the **physical view** — a footprint (width, height) with port offsets,
  placed into layouts by the placer and generators and read back by the
  extractor.

The default :func:`standard_library` contains the CMOS cells the examples
use (inverter, NAND2, NOR2, buffer) plus the pseudo-NMOS crosspoint cells
the PLA generator needs (``pla_nmos``, ``pla_load``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..errors import ToolError
from .netlist import GROUND, NMOS, PMOS, POWER, WEAK, Netlist


@dataclass(frozen=True)
class CellDef:
    """One library cell: ports, footprint and transistor template."""

    name: str
    ports: tuple[str, ...]
    width: int
    height: int
    port_offsets: tuple[tuple[str, tuple[int, int]], ...]
    template: Callable[[], Netlist]
    function: str = ""

    def port_offset(self, port: str) -> tuple[int, int]:
        for name, offset in self.port_offsets:
            if name == port:
                return offset
        raise ToolError(f"cell {self.name!r} has no port {port!r}")

    def netlist_fragment(self) -> Netlist:
        fragment = self.template()
        return fragment

    def area(self) -> int:
        return self.width * self.height

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "ports": list(self.ports),
                "width": self.width, "height": self.height,
                "function": self.function}


class CellLibrary:
    """Named collection of cell definitions."""

    def __init__(self, name: str = "stdcells") -> None:
        self.name = name
        self._cells: dict[str, CellDef] = {}

    def add(self, cell: CellDef) -> CellDef:
        if cell.name in self._cells:
            raise ToolError(f"duplicate cell {cell.name!r}")
        self._cells[cell.name] = cell
        return cell

    def cell(self, name: str) -> CellDef:
        try:
            return self._cells[name]
        except KeyError:
            raise ToolError(f"no cell {name!r} in library {self.name!r}"
                            ) from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._cells))

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def to_dict(self) -> dict[str, Any]:
        # Libraries are code-defined; persistence stores the identity and
        # re-resolves against the in-process standard library.
        return {"name": self.name, "cells": sorted(self._cells)}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CellLibrary":
        library = standard_library()
        missing = [c for c in payload.get("cells", ())
                   if c not in library]
        if missing:
            raise ToolError(f"library payload references unknown cells "
                            f"{missing}")
        library.name = payload.get("name", library.name)
        return library


# ---------------------------------------------------------------------------
# transistor templates (the transistor view of each cell)
# ---------------------------------------------------------------------------

def _inv_template() -> Netlist:
    netlist = Netlist("inv", inputs=("a",), outputs=("y",))
    netlist.add("mp", PMOS, gate="a", source=POWER, drain="y", width=2.0)
    netlist.add("mn", NMOS, gate="a", source=GROUND, drain="y", width=1.0)
    return netlist


def _buf_template() -> Netlist:
    netlist = Netlist("buf", inputs=("a",), outputs=("y",))
    netlist.add("mp1", PMOS, gate="a", source=POWER, drain="x", width=2.0)
    netlist.add("mn1", NMOS, gate="a", source=GROUND, drain="x", width=1.0)
    netlist.add("mp2", PMOS, gate="x", source=POWER, drain="y", width=2.0)
    netlist.add("mn2", NMOS, gate="x", source=GROUND, drain="y", width=1.0)
    return netlist


def _nand2_template() -> Netlist:
    netlist = Netlist("nand2", inputs=("a", "b"), outputs=("y",))
    netlist.add("mpa", PMOS, gate="a", source=POWER, drain="y", width=2.0)
    netlist.add("mpb", PMOS, gate="b", source=POWER, drain="y", width=2.0)
    netlist.add("mna", NMOS, gate="a", source="mid", drain="y", width=2.0)
    netlist.add("mnb", NMOS, gate="b", source=GROUND, drain="mid",
                width=2.0)
    return netlist


def _nor2_template() -> Netlist:
    netlist = Netlist("nor2", inputs=("a", "b"), outputs=("y",))
    netlist.add("mpa", PMOS, gate="a", source=POWER, drain="mid",
                width=4.0)
    netlist.add("mpb", PMOS, gate="b", source="mid", drain="y", width=4.0)
    netlist.add("mna", NMOS, gate="a", source=GROUND, drain="y", width=1.0)
    netlist.add("mnb", NMOS, gate="b", source=GROUND, drain="y", width=1.0)
    return netlist


def _xor2_template() -> Netlist:
    """XOR built hierarchically from NAND gates (templates may nest)."""
    netlist = Netlist("xor2", inputs=("a", "b"), outputs=("y",))
    netlist.add_instance("n1", "nand2", a="a", b="b", y="nab")
    netlist.add_instance("n2", "nand2", a="a", b="nab", y="w1")
    netlist.add_instance("n3", "nand2", a="nab", b="b", y="w2")
    netlist.add_instance("n4", "nand2", a="w1", b="w2", y="y")
    return netlist


def _aoi21_template() -> Netlist:
    """AND-OR-INVERT: y = ~((a & b) | c)."""
    netlist = Netlist("aoi21", inputs=("a", "b", "c"), outputs=("y",))
    # pull-up conducts iff (~a | ~b) & ~c: a,b parallel, then c in series
    netlist.add("mpa", PMOS, gate="a", source=POWER, drain="pm",
                width=4.0)
    netlist.add("mpb", PMOS, gate="b", source=POWER, drain="pm",
                width=4.0)
    netlist.add("mpc", PMOS, gate="c", source="pm", drain="y",
                width=2.0)
    netlist.add("mna", NMOS, gate="a", source="nm", drain="y", width=2.0)
    netlist.add("mnb", NMOS, gate="b", source=GROUND, drain="nm",
                width=2.0)
    netlist.add("mnc", NMOS, gate="c", source=GROUND, drain="y",
                width=1.0)
    return netlist


def _tielo_template() -> Netlist:
    """Constant 0: an always-on pull-down."""
    netlist = Netlist("tielo", inputs=(), outputs=("y",))
    netlist.add("mn", NMOS, gate=POWER, source=GROUND, drain="y")
    return netlist


def _tiehi_template() -> Netlist:
    """Constant 1: an always-on pull-up."""
    netlist = Netlist("tiehi", inputs=(), outputs=("y",))
    netlist.add("mp", PMOS, gate=GROUND, source=POWER, drain="y")
    return netlist


def _dlatch_template() -> Netlist:
    """Dynamic transparent latch: pass transistor + two inverters.

    Relies on the simulator's charge retention: with ``en`` low the
    storage node floats and keeps its value.
    """
    netlist = Netlist("dlatch", inputs=("d", "en"), outputs=("q",))
    netlist.add("pass", NMOS, gate="en", source="d", drain="s",
                width=1.5)
    netlist.add("mp1", PMOS, gate="s", source=POWER, drain="qb",
                width=2.0)
    netlist.add("mn1", NMOS, gate="s", source=GROUND, drain="qb",
                width=1.0)
    netlist.add("mp2", PMOS, gate="qb", source=POWER, drain="q",
                width=2.0)
    netlist.add("mn2", NMOS, gate="qb", source=GROUND, drain="q",
                width=1.0)
    return netlist


def _dff_template() -> Netlist:
    """Master-slave D flip-flop from two dynamic latches.

    Master is transparent while the clock is low, slave while it is
    high: q updates on the rising edge.
    """
    netlist = Netlist("dff", inputs=("d", "clk"), outputs=("q",))
    netlist.add("cinvp", PMOS, gate="clk", source=POWER, drain="clkb",
                width=2.0)
    netlist.add("cinvn", NMOS, gate="clk", source=GROUND, drain="clkb",
                width=1.0)
    netlist.add_instance("master", "dlatch", d="d", en="clkb", q="m")
    netlist.add_instance("slave", "dlatch", d="m", en="clk", q="q")
    return netlist


def _pla_nmos_template() -> Netlist:
    """Crosspoint pulldown of a pseudo-NMOS NOR plane."""
    netlist = Netlist("pla_nmos", inputs=("g",), outputs=("line",))
    netlist.add("mn", NMOS, gate="g", source=GROUND, drain="line",
                width=2.0)
    return netlist


def _pla_load_template() -> Netlist:
    """Weak always-on PMOS pull-up for a pseudo-NMOS line."""
    netlist = Netlist("pla_load", inputs=(), outputs=("line",))
    netlist.add("mp", PMOS, gate=GROUND, source=POWER, drain="line",
                width=1.0, strength=WEAK)
    return netlist


def standard_library() -> CellLibrary:
    """The default cell library used by examples and benchmarks."""
    library = CellLibrary("stdcells")
    library.add(CellDef(
        "inv", ("a", "y"), width=2, height=4,
        port_offsets=(("a", (0, 1)), ("y", (1, 1))),
        template=_inv_template, function="inv"))
    library.add(CellDef(
        "buf", ("a", "y"), width=3, height=4,
        port_offsets=(("a", (0, 1)), ("y", (2, 1))),
        template=_buf_template, function="buf"))
    library.add(CellDef(
        "nand2", ("a", "b", "y"), width=3, height=4,
        port_offsets=(("a", (0, 1)), ("b", (0, 2)), ("y", (2, 1))),
        template=_nand2_template, function="nand2"))
    library.add(CellDef(
        "nor2", ("a", "b", "y"), width=3, height=4,
        port_offsets=(("a", (0, 1)), ("b", (0, 2)), ("y", (2, 1))),
        template=_nor2_template, function="nor2"))
    library.add(CellDef(
        "xor2", ("a", "b", "y"), width=5, height=4,
        port_offsets=(("a", (0, 1)), ("b", (0, 2)), ("y", (4, 1))),
        template=_xor2_template, function="xor2"))
    library.add(CellDef(
        "aoi21", ("a", "b", "c", "y"), width=4, height=4,
        port_offsets=(("a", (0, 1)), ("b", (0, 2)), ("c", (0, 3)),
                      ("y", (3, 1))),
        template=_aoi21_template, function="aoi21"))
    library.add(CellDef(
        "tielo", ("y",), width=1, height=4,
        port_offsets=(("y", (0, 1)),),
        template=_tielo_template, function="tielo"))
    library.add(CellDef(
        "tiehi", ("y",), width=1, height=4,
        port_offsets=(("y", (0, 1)),),
        template=_tiehi_template, function="tiehi"))
    library.add(CellDef(
        "dlatch", ("d", "en", "q"), width=4, height=4,
        port_offsets=(("d", (0, 1)), ("en", (0, 2)), ("q", (3, 1))),
        template=_dlatch_template, function="dlatch"))
    library.add(CellDef(
        "dff", ("d", "clk", "q"), width=6, height=4,
        port_offsets=(("d", (0, 1)), ("clk", (0, 2)), ("q", (5, 1))),
        template=_dff_template, function="dff"))
    library.add(CellDef(
        "pla_nmos", ("g", "line"), width=1, height=2,
        port_offsets=(("g", (0, 0)), ("line", (0, 1))),
        template=_pla_nmos_template, function="pla_nmos"))
    library.add(CellDef(
        "pla_load", ("line",), width=1, height=1,
        port_offsets=(("line", (0, 0)),),
        template=_pla_load_template, function="pla_load"))
    return library
