"""The mini-CAD tool substrate.

Pure-Python reimplementations of every tool the paper's schemas name:
editors, an annealing placer, a layout extractor, a COSMOS-style compiled
switch-level simulator, an LVS verifier, a plotter, layout generators and
three statistical optimizers — plus the design-data models they operate
on.  Importing this package registers codecs for all design-data classes
with the global codec registry, so the history database can persist them.
"""

from ..history.datastore import GLOBAL_CODECS, CodecRegistry
from .cells import CellDef, CellLibrary, standard_library
from .device_models import DeviceModels, default_models
from .drc import DrcReport, DrcViolation, check_design_rules
from .erc import ErcReport, ErcViolation, check_electrical_rules
from .editors import (edit_device_models, edit_layout, edit_logic,
                      edit_netlist)
from .encapsulations import (compose_circuit, edit_session,
                             install_standard_tools,
                             register_standard_encapsulations)
from .extractor import ExtractionStatistics, extract
from .generators import pla_layout, pla_statistics, stdcell_layout, tech_map
from .layout import Layout, Pin, Placement, Wire
from .layout_render import render_layout
from .logic import (LogicSpec, evaluate, operator_count,
                    parse_expr, simplify, variables)
from .netlist import (GROUND, NMOS, PMOS, POWER, STRONG, WEAK,
                      CellInstance, Netlist, Transistor)
from .optimizer import optimize
from .performance import ONE, UNKNOWN, ZERO, PerformanceReport
from .placer import place, placement_quality
from .plotter import PerformancePlot, plot
from .router import RoutingSummary, route_layout
from .simulator import (CompiledNetwork, compile_netlist, simulate,
                        truth_table)
from .spice import from_spice, to_spice
from .vcd import to_vcd
from .stimuli import (Stimuli, exhaustive, from_table, random_vectors,
                      walking_ones)
from .verifier import Verification, verify


def register_tool_codecs(registry: CodecRegistry) -> None:
    """Register codecs for every tool data class with a registry."""
    registry.register_dataclass_like("netlist", Netlist)
    registry.register_dataclass_like("layout", Layout)
    registry.register_dataclass_like("logic-spec", LogicSpec)
    registry.register_dataclass_like("device-models", DeviceModels)
    registry.register_dataclass_like("stimuli", Stimuli)
    registry.register_dataclass_like("performance", PerformanceReport)
    registry.register_dataclass_like("performance-plot", PerformancePlot)
    registry.register_dataclass_like("verification", Verification)
    registry.register_dataclass_like("extraction-statistics",
                                     ExtractionStatistics)
    registry.register_dataclass_like("compiled-network", CompiledNetwork)
    registry.register_dataclass_like("cell-library", CellLibrary)
    registry.register_dataclass_like("drc-report", DrcReport)
    registry.register_dataclass_like("erc-report", ErcReport)


# one-time registration with the shared registry
if not getattr(GLOBAL_CODECS, "_repro_tools_registered", False):
    register_tool_codecs(GLOBAL_CODECS)
    GLOBAL_CODECS._repro_tools_registered = True  # type: ignore[attr-defined]

__all__ = [
    "GROUND",
    "NMOS",
    "ONE",
    "PMOS",
    "POWER",
    "STRONG",
    "UNKNOWN",
    "WEAK",
    "ZERO",
    "CellDef",
    "CellInstance",
    "CellLibrary",
    "CompiledNetwork",
    "DeviceModels",
    "DrcReport",
    "DrcViolation",
    "ErcReport",
    "ErcViolation",
    "ExtractionStatistics",
    "Layout",
    "LogicSpec",
    "Netlist",
    "PerformancePlot",
    "PerformanceReport",
    "Pin",
    "Placement",
    "Stimuli",
    "Transistor",
    "Verification",
    "Wire",
    "check_design_rules",
    "check_electrical_rules",
    "compile_netlist",
    "compose_circuit",
    "default_models",
    "edit_device_models",
    "edit_layout",
    "edit_logic",
    "edit_netlist",
    "edit_session",
    "evaluate",
    "exhaustive",
    "extract",
    "from_spice",
    "from_table",
    "install_standard_tools",
    "operator_count",
    "optimize",
    "parse_expr",
    "pla_layout",
    "pla_statistics",
    "place",
    "placement_quality",
    "plot",
    "RoutingSummary",
    "random_vectors",
    "register_standard_encapsulations",
    "render_layout",
    "route_layout",
    "register_tool_codecs",
    "simplify",
    "simulate",
    "standard_library",
    "stdcell_layout",
    "tech_map",
    "to_spice",
    "to_vcd",
    "truth_table",
    "variables",
    "verify",
    "walking_ones",
]
