"""Editing tools: layout editor, circuit (netlist) editor, logic editor,
device model editor.

Editors are the versioning workhorses of the paper (section 4.2):
*"Versioning is closely associated with editing tasks which, in a task
schema, are characterized by having a data dependency whose source and
target are of the same entity type."*  Each editor here applies a
deterministic **edit script** — a list of command dicts — to an optional
previous version, yielding a new object.  Interactive editing is replayed
as scripts, which keeps the Fig. 9 session fully scriptable.

Command formats (``op`` selects the command):

Layout: ``place`` (name, cell, x, y) · ``move`` (name, x, y) ·
``remove`` (name) · ``route`` (net, points) · ``unroute`` (net) ·
``pin`` (net, x, y, direction) · ``rename`` (name)

Netlist: ``new`` (name, inputs, outputs) · ``add_transistor``
(fields of :class:`~repro.tools.netlist.Transistor`) · ``add_instance``
(name, cell, connections) · ``remove_transistor`` (name) ·
``set_width`` (name, width) · ``rename`` (name)

Logic: ``new`` (name) · ``set`` (equation string) · ``rename`` (name)

Device models: ``set`` (field, value) · ``rename`` (name)
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Sequence

from ..errors import ToolError
from .device_models import DeviceModels
from .layout import Layout
from .logic import LogicSpec, parse_expr
from .netlist import Netlist, Transistor

EditScript = Sequence[Mapping[str, Any]]


def edit_layout(script: EditScript,
                previous: Layout | None = None) -> Layout:
    """Apply a layout edit script to a previous version (or from scratch)."""
    layout = previous.copy() if previous is not None else Layout("layout")
    for command in script:
        op = command.get("op")
        if op == "place":
            layout.place(command["name"], command["cell"],
                         command["x"], command["y"])
        elif op == "move":
            layout.move(command["name"], command["x"], command["y"])
        elif op == "remove":
            layout.remove(command["name"])
        elif op == "route":
            layout.route(command["net"],
                         [tuple(p) for p in command["points"]])
        elif op == "unroute":
            layout.unroute(command["net"])
        elif op == "pin":
            layout.add_pin(command["net"], command["x"], command["y"],
                           command.get("direction", "in"))
        elif op == "rename":
            layout.name = command["name"]
        else:
            raise ToolError(f"layout editor: unknown op {op!r}")
    return layout


def edit_netlist(script: EditScript,
                 previous: Netlist | None = None) -> Netlist:
    """Apply a netlist edit script."""
    netlist = previous.copy() if previous is not None else None
    for command in script:
        op = command.get("op")
        if op == "new":
            netlist = Netlist(command["name"],
                              command.get("inputs", ()),
                              command.get("outputs", ()))
            continue
        if netlist is None:
            raise ToolError(
                "netlist editor: script must start with 'new' when no "
                "previous netlist is given")
        if op == "add_transistor":
            fields = {k: v for k, v in command.items() if k != "op"}
            netlist.add_transistor(Transistor(**fields))
        elif op == "add_instance":
            netlist.add_instance(command["name"], command["cell"],
                                 **command.get("connections", {}))
        elif op == "remove_transistor":
            netlist = netlist.without_device(command["name"])
        elif op == "set_width":
            netlist = netlist.with_device_width(command["name"],
                                                command["width"])
        elif op == "rename":
            netlist = netlist.renamed(command["name"])
        else:
            raise ToolError(f"netlist editor: unknown op {op!r}")
    if netlist is None:
        raise ToolError("netlist editor: empty script and no previous "
                        "netlist")
    return netlist


def edit_logic(script: EditScript,
               previous: LogicSpec | None = None) -> LogicSpec:
    """Apply a logic edit script (equations are replaced by output name)."""
    name = previous.name if previous is not None else "logic"
    equations: dict[str, Any] = (
        {o: e for o, e in previous.equations} if previous is not None
        else {})
    for command in script:
        op = command.get("op")
        if op == "new":
            name = command["name"]
            equations = {}
        elif op == "set":
            lhs, _, rhs = command["equation"].partition("=")
            if not rhs:
                raise ToolError(
                    f"logic editor: equation {command['equation']!r} "
                    "lacks '='")
            equations[lhs.strip()] = parse_expr(rhs)
        elif op == "drop":
            equations.pop(command["output"], None)
        elif op == "rename":
            name = command["name"]
        else:
            raise ToolError(f"logic editor: unknown op {op!r}")
    if not equations:
        return LogicSpec(name, (), ())
    free: set[str] = set()
    for expr in equations.values():
        free |= _expr_vars(expr)
    return LogicSpec(name, tuple(sorted(free)), tuple(equations.items()))


def _expr_vars(expr: Any) -> set[str]:
    from .logic import variables
    return variables(expr)


def edit_device_models(script: EditScript,
                       previous: DeviceModels | None = None
                       ) -> DeviceModels:
    """Apply a device-model edit script."""
    models = previous if previous is not None else DeviceModels()
    for command in script:
        op = command.get("op")
        if op == "set":
            field = command["field"]
            valid = {f.name for f in dataclasses.fields(DeviceModels)}
            if field not in valid:
                raise ToolError(
                    f"device model editor: unknown field {field!r}")
            models = dataclasses.replace(models,
                                         **{field: command["value"]})
        elif op == "rename":
            models = dataclasses.replace(models, name=command["name"])
        else:
            raise ToolError(f"device model editor: unknown op {op!r}")
    return models
