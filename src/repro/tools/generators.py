"""Layout generators: standard-cell and PLA implementations of logic.

These are the two alternative implementation routes of the Chiueh & Katz
scenario the paper cites in section 2: *"if a designer implemented a logic
circuit using standard cells and then wished to re-implement the same
circuit using a PLA, he or she could reposition a cursor ... and create a
new activity branch using a 'create PLA' task."*

* :func:`tech_map` — logic spec to a gate-level (hierarchical) netlist
  over inv/nand2/nor2 cells;
* :func:`stdcell_layout` — tech map + annealing placement = a
  *StdCellLayout*;
* :func:`pla_layout` — a pseudo-NMOS NOR-NOR PLA built from crosspoint
  cells = a *PLALayout*.

Both outputs are ordinary :class:`~repro.tools.layout.Layout` objects, so
the extractor/simulator/verifier chain works identically on either
implementation — that is what makes the history-branching example
meaningful.
"""

from __future__ import annotations

import itertools
from typing import Any, Mapping

from ..errors import ToolError
from .cells import CellLibrary
from .layout import Layout
from .logic import Expr, LogicSpec, simplify
from .netlist import Netlist
from .placer import DEFAULT_SPEC, place


# ---------------------------------------------------------------------------
# technology mapping
# ---------------------------------------------------------------------------

class _Mapper:
    """Naive tech mapper: AND -> NAND2+INV, OR -> NOR2+INV, NOT -> INV."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self._counter = itertools.count()
        self._cse: dict[str, str] = {}

    def fresh_net(self) -> str:
        return f"w{next(self._counter)}"

    def fresh_gate(self, kind: str) -> str:
        return f"{kind}{next(self._counter)}"

    def map_expr(self, expr: Expr, target: str | None = None) -> str:
        key = repr(expr)
        if target is None and key in self._cse:
            return self._cse[key]
        net = self._map(expr, target)
        if target is None:
            self._cse[key] = net
        return net

    def _map(self, expr: Expr, target: str | None) -> str:
        op = expr[0]
        if op == "var":
            source = expr[1]
            if target is not None and target != source:
                # outputs must be driven by a gate: buffer the variable
                out = target
                gate = self.fresh_gate("buf")
                self.netlist.add_instance(gate, "buf", a=source, y=out)
                return out
            return source
        if op == "const":
            # constants come from tie cells (always-on pull-up/down)
            out = target if target is not None else self.fresh_net()
            cell = "tiehi" if expr[1] else "tielo"
            gate = self.fresh_gate("tie")
            self.netlist.add_instance(gate, cell, y=out)
            return out
        if op == "not":
            inner = self.map_expr(expr[1])
            out = target if target is not None else self.fresh_net()
            gate = self.fresh_gate("inv")
            self.netlist.add_instance(gate, "inv", a=inner, y=out)
            return out
        if op == "or":
            xor_operands = _xor_pattern(expr)
            if xor_operands is not None:
                left = self.map_expr(xor_operands[0])
                right = self.map_expr(xor_operands[1])
                out = target if target is not None else self.fresh_net()
                gate = self.fresh_gate("xor")
                self.netlist.add_instance(gate, "xor2", a=left, b=right,
                                          y=out)
                return out
        if op in ("and", "or"):
            terms = [self.map_expr(e) for e in expr[1:]]
            value = terms[0]
            for term in terms[1:]:
                value = self._map_pair(op, value, term, None)
            if target is not None and value != target:
                gate = self.fresh_gate("buf")
                self.netlist.add_instance(gate, "buf", a=value, y=target)
                return target
            return value
        raise ToolError(f"unknown operator {op!r}")

    def _map_pair(self, op: str, a: str, b: str,
                  target: str | None) -> str:
        inverted = self.fresh_net()
        out = target if target is not None else self.fresh_net()
        if op == "and":
            gate = self.fresh_gate("nand")
            self.netlist.add_instance(gate, "nand2", a=a, b=b, y=inverted)
        else:
            gate = self.fresh_gate("nor")
            self.netlist.add_instance(gate, "nor2", a=a, b=b, y=inverted)
        inv = self.fresh_gate("inv")
        self.netlist.add_instance(inv, "inv", a=inverted, y=out)
        return out


def _xor_pattern(expr: Expr) -> tuple[Expr, Expr] | None:
    """Recognize ``(p & ~q) | (~p & q)`` and return ``(p, q)``.

    A structural peephole: the mapper emits one xor2 cell instead of two
    NAND trees when an OR of two ANDs forms the exclusive-or shape.
    """
    if expr[0] != "or" or len(expr) != 3:
        return None
    left, right = expr[1], expr[2]
    if left[0] != "and" or right[0] != "and":
        return None
    if len(left) != 3 or len(right) != 3:
        return None

    def split(term: Expr) -> tuple[str, Expr] | None:
        # returns ('pos'|'neg', operand)
        if term[0] == "not":
            return ("neg", term[1])
        return ("pos", term)

    left_terms = [split(t) for t in left[1:]]
    right_terms = [split(t) for t in right[1:]]
    if any(t is None for t in (*left_terms, *right_terms)):
        return None
    # left must be {pos p, neg q}; right must be {neg p, pos q}
    left_pos = [o for sign, o in left_terms if sign == "pos"]
    left_neg = [o for sign, o in left_terms if sign == "neg"]
    right_pos = [o for sign, o in right_terms if sign == "pos"]
    right_neg = [o for sign, o in right_terms if sign == "neg"]
    if len(left_pos) != 1 or len(left_neg) != 1 \
            or len(right_pos) != 1 or len(right_neg) != 1:
        return None
    p, q = left_pos[0], left_neg[0]
    if repr(right_neg[0]) == repr(p) and repr(right_pos[0]) == repr(q):
        return (p, q)
    return None


def tech_map(spec: LogicSpec, name: str | None = None) -> Netlist:
    """Map a logic spec to a hierarchical gate netlist."""
    netlist = Netlist(name or f"{spec.name}-gates",
                      inputs=spec.inputs, outputs=spec.outputs)
    mapper = _Mapper(netlist)
    for output, expr in spec.equations:
        mapper.map_expr(simplify(expr), target=output)
    return netlist


def stdcell_layout(spec: LogicSpec, library: CellLibrary,
                   placement_spec: Mapping[str, Any] | None = None,
                   name: str | None = None) -> Layout:
    """Standard-cell implementation: tech map, then place and route."""
    netlist = tech_map(spec)
    merged = dict(DEFAULT_SPEC)
    if placement_spec:
        merged.update(placement_spec)
    layout = place(netlist, merged, library)
    layout.name = name or f"{spec.name}-stdcell"
    return layout


# ---------------------------------------------------------------------------
# PLA generation
# ---------------------------------------------------------------------------

def pla_layout(spec: LogicSpec, library: CellLibrary,
               name: str | None = None) -> Layout:
    """Pseudo-NMOS NOR-NOR PLA implementation of a logic spec.

    AND plane: one product line per distinct minterm (shared between
    outputs), pulled down by crosspoints gated with the literal
    *complements*.  OR plane: one NOR line per output pulled down by its
    product terms, re-inverted by an output inverter.
    """
    for cell in ("pla_nmos", "pla_load", "inv"):
        if cell not in library:
            raise ToolError(f"PLA generation needs cell {cell!r}")
    layout = Layout(name or f"{spec.name}-pla")
    inputs = spec.inputs
    outputs = spec.outputs
    table = spec.truth_table()
    terms: list[tuple[int, ...]] = []
    term_outputs: dict[tuple[int, ...], list[int]] = {}
    for bits, values in table:
        if any(values):
            terms.append(bits)
            term_outputs[bits] = [k for k, v in enumerate(values) if v]
    n_terms = len(terms)
    x_or = 4 * len(inputs) + 6

    wires: dict[str, list[tuple[int, int]]] = {}

    def touch(net: str, point: tuple[int, int]) -> None:
        wires.setdefault(net, []).append(point)

    # input pins, true lines, complement inverters and complement lines
    for i, net in enumerate(inputs):
        x_true, x_comp = 4 * i, 4 * i + 2
        pin = layout.add_pin(net, x_true, -8, "in")
        touch(net, pin.point())
        inv_name = f"cinv_{net}"
        layout.place(inv_name, "inv", x_comp, -6)
        touch(net, (x_comp + 0, -5))            # inv input port a
        touch(f"{net}_bar", (x_comp + 1, -5))   # inv output port y
    # AND plane
    for j, bits in enumerate(terms):
        y = 2 * j
        product = f"p{j}"
        load = layout.place(f"load_{product}", "pla_load", -2, y + 1)
        touch(product, (load.x, load.y))
        for i, bit in enumerate(bits):
            # pulldown gated by the literal complement
            gate_net = f"{inputs[i]}_bar" if bit == 1 else inputs[i]
            column = 4 * i + 2 if bit == 1 else 4 * i
            cross = layout.place(f"and_{j}_{i}", "pla_nmos", column, y)
            touch(gate_net, (cross.x, cross.y))
            touch(product, (cross.x, cross.y + 1))
    # OR plane + output inverters + pins
    for k, output in enumerate(outputs):
        x = x_or + 4 * k
        nor_line = f"z{k}"
        load = layout.place(f"load_{nor_line}", "pla_load", x,
                            2 * n_terms + 1)
        touch(nor_line, (load.x, load.y))
        for j, bits in enumerate(terms):
            if k not in term_outputs[bits]:
                continue
            cross = layout.place(f"or_{j}_{k}", "pla_nmos", x, 2 * j)
            touch(f"p{j}", (cross.x, cross.y))
            touch(nor_line, (cross.x, cross.y + 1))
        inv_name = f"oinv_{output}"
        layout.place(inv_name, "inv", x, 2 * n_terms + 4)
        touch(nor_line, (x + 0, 2 * n_terms + 5))
        touch(output, (x + 1, 2 * n_terms + 5))
        pin = layout.add_pin(output, x + 1, 2 * n_terms + 8, "out")
        touch(output, pin.point())
    for net, points in sorted(wires.items()):
        layout.route(net, sorted(set(points)))
    return layout


def pla_statistics(spec: LogicSpec) -> dict[str, int]:
    """Size summary used by tests and benches."""
    terms = set()
    for output in spec.outputs:
        terms.update(spec.minterms(output))
    return {"inputs": len(spec.inputs), "outputs": len(spec.outputs),
            "terms": len(terms)}
