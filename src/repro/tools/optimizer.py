"""Statistical circuit optimizers (three tools, one signature).

Section 3.3: *"we have encapsulated three statistical circuit
optimization tools that take exactly the same input arguments and produce
the same type of output"* and *"an optimization procedure may have a
circuit simulator passed to it as an argument"*.

All three strategies share :func:`optimize`'s signature — a circuit
(device models + netlist), a **simulator passed as data**, and an
optimization spec — and return a width-tuned netlist.  The objective is

    J(w) = delay_weight * D(w) + area_weight * total_width(w)

where ``D(w) = settle_steps * stage_delay * (1 + drive_coeff *
mean(1/w_i))`` — wider devices drive harder (lower delay) but cost area —
plus an enormous penalty if the tuned circuit stops producing clean 0/1
outputs under the evaluation stimuli.  The simulator the caller passes is
genuinely invoked for every candidate evaluation.

Strategies: ``random`` (uniform sampling), ``coordinate`` (cyclic
per-device descent), ``annealing`` (temperature-scheduled perturbation).
"""

from __future__ import annotations

import math
import random
from typing import Any, Callable, Mapping

from ..errors import ToolError
from .device_models import DeviceModels
from .netlist import Netlist
from .performance import PerformanceReport
from .stimuli import Stimuli, exhaustive, walking_ones

DEFAULT_SPEC: dict[str, Any] = {
    "delay_weight": 1.0,
    "area_weight": 0.15,
    "drive_coeff": 3.0,
    "width_bounds": [0.5, 8.0],
    "iterations": 40,
    "seed": 7,
}

SimulateFn = Callable[[Netlist, Stimuli, DeviceModels], PerformanceReport]


def default_stimuli(netlist: Netlist) -> Stimuli:
    """Evaluation vectors: exhaustive up to 6 inputs, else walking ones."""
    if len(netlist.inputs) <= 6:
        return exhaustive(netlist.inputs, name="opt-eval")
    return walking_ones(netlist.inputs, name="opt-eval")


def objective(report: PerformanceReport, netlist: Netlist,
              spec: Mapping[str, Any]) -> float:
    """The shared cost function J(w)."""
    widths = [t.width for t in netlist.transistors()]
    if not widths:
        raise ToolError("cannot optimize an empty netlist")
    mean_inverse_width = sum(1.0 / w for w in widths) / len(widths)
    delay = (max(report.settle_steps or (0,)) * report.stage_delay_ns
             * (1.0 + float(spec["drive_coeff"]) * mean_inverse_width))
    area = sum(widths)
    cost = (float(spec["delay_weight"]) * delay
            + float(spec["area_weight"]) * area)
    if report.has_unknowns or report.oscillating_vectors:
        cost += 1e6  # functional failure dominates everything
    return cost


def _evaluate(netlist: Netlist, simulate: SimulateFn, stimuli: Stimuli,
              models: DeviceModels, spec: Mapping[str, Any]) -> float:
    return objective(simulate(netlist, stimuli, models), netlist, spec)


def _clamp(width: float, bounds: tuple[float, float]) -> float:
    low, high = bounds
    return max(low, min(high, width))


def optimize(netlist: Netlist, models: DeviceModels,
             simulate: SimulateFn, spec: Mapping[str, Any], *,
             strategy: str = "random") -> tuple[Netlist, float, int]:
    """Tune transistor widths; returns (netlist, best cost, evaluations)."""
    merged = dict(DEFAULT_SPEC)
    merged.update(spec)
    bounds = (float(merged["width_bounds"][0]),
              float(merged["width_bounds"][1]))
    iterations = int(merged["iterations"])
    rng = random.Random(int(merged["seed"]))
    stimuli = default_stimuli(netlist)
    devices = [t.name for t in netlist.transistors()]
    if not devices:
        raise ToolError("cannot optimize an empty netlist")

    best = netlist.renamed(f"{netlist.name}-opt")
    best_cost = _evaluate(best, simulate, stimuli, models, merged)
    evaluations = 1

    if strategy == "random":
        for _ in range(iterations):
            candidate = best.copy()
            for device in devices:
                candidate = candidate.with_device_width(
                    device, _clamp(rng.uniform(*bounds), bounds))
            cost = _evaluate(candidate, simulate, stimuli, models, merged)
            evaluations += 1
            if cost < best_cost:
                best, best_cost = candidate, cost
    elif strategy == "coordinate":
        step = (bounds[1] - bounds[0]) / 4.0
        current, current_cost = best, best_cost
        while step > 0.05 and evaluations < iterations + 1:
            improved = False
            for device in devices:
                width = current.transistor(device).width
                for direction in (step, -step):
                    candidate = current.with_device_width(
                        device, _clamp(width + direction, bounds))
                    cost = _evaluate(candidate, simulate, stimuli, models,
                                     merged)
                    evaluations += 1
                    if cost < current_cost:
                        current, current_cost = candidate, cost
                        improved = True
                        break
                if evaluations >= iterations + 1:
                    break
            if not improved:
                step /= 2.0
        best, best_cost = current, current_cost
    elif strategy == "annealing":
        current, current_cost = best, best_cost
        temperature = max(best_cost / 5.0, 1e-6)
        for _ in range(iterations):
            device = rng.choice(devices)
            width = current.transistor(device).width
            delta = rng.gauss(0.0, (bounds[1] - bounds[0]) / 6.0)
            candidate = current.with_device_width(
                device, _clamp(width + delta, bounds))
            cost = _evaluate(candidate, simulate, stimuli, models, merged)
            evaluations += 1
            accept = (cost < current_cost
                      or rng.random() < math.exp(
                          (current_cost - cost) / max(temperature, 1e-9)))
            if accept:
                current, current_cost = candidate, cost
            if current_cost < best_cost:
                best, best_cost = current, current_cost
            temperature *= 0.95
    else:
        raise ToolError(f"unknown optimization strategy {strategy!r}")
    return best.renamed(f"{netlist.name}-opt"), best_cost, evaluations
