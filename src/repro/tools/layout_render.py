"""ASCII rendering of layouts: the physical view as a picture.

Draws the grid with one character per coordinate: cell footprints as
letters (first letter of the cell type, the origin uppercased), wire
points as ``+``, pins as ``I``/``O``/``S`` by direction.  Deterministic,
so figure benchmarks and docs can embed the output.
"""

from __future__ import annotations

from .cells import CellLibrary
from .layout import Layout

_PIN_GLYPH = {"in": "I", "out": "O", "supply": "S"}


def render_layout(layout: Layout, library: CellLibrary | None = None,
                  *, max_width: int = 100, max_height: int = 48) -> str:
    """Draw the layout as ASCII art (clipped to max dimensions)."""
    min_x, min_y, max_x, max_y = layout.bounding_box(library)
    width = min(max_x - min_x + 1, max_width)
    height = min(max_y - min_y + 1, max_height)
    if width <= 0 or height <= 0:
        return f"layout {layout.name!r}: (empty)"
    grid = [[" "] * width for _ in range(height)]

    def put(x: int, y: int, glyph: str) -> None:
        column = x - min_x
        row = y - min_y
        if 0 <= column < width and 0 <= row < height:
            grid[row][column] = glyph

    # cell footprints
    for placement in layout.placements():
        glyph = placement.cell[0].lower()
        if library is not None:
            cell = library.cell(placement.cell)
            for dx in range(cell.width):
                for dy in range(cell.height):
                    put(placement.x + dx, placement.y + dy, glyph)
        put(placement.x, placement.y, glyph.upper())
    # wires override cell interiors at their claimed points
    for wire in layout.wires():
        for x, y in wire.points:
            put(x, y, "+")
    for pin in layout.pins():
        put(pin.x, pin.y, _PIN_GLYPH.get(pin.direction, "?"))

    lines = [f"layout {layout.name!r} "
             f"({layout.cell_count} cells, "
             f"{len(layout.wires())} wires, bbox "
             f"{min_x},{min_y}..{max_x},{max_y})"]
    # draw with y increasing downward being wrong for schematics: flip
    for row in reversed(range(height)):
        lines.append("".join(grid[row]).rstrip())
    legend = sorted({p.cell for p in layout.placements()})
    if legend:
        lines.append("legend: " + ", ".join(
            f"{cell[0].lower()}={cell}" for cell in legend)
            + "; +=wire, I/O=pins")
    return "\n".join(lines)
