"""Performance reports: the *Performance* entity of the standard schema.

A :class:`PerformanceReport` is what the simulator produces: output
waveforms, per-vector settle counts and transition counts, plus derived
delay/energy metrics computed against a
:class:`~repro.tools.device_models.DeviceModels` parameter set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .device_models import DeviceModels

ZERO = "0"
ONE = "1"
UNKNOWN = "X"


@dataclass(frozen=True)
class PerformanceReport:
    """Simulation outcome for one (circuit, stimuli, models) triple."""

    circuit: str
    stimuli: str
    models: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    waveforms: tuple[tuple[str, tuple[str, ...]], ...]
    settle_steps: tuple[int, ...]
    transitions: tuple[int, ...]
    stage_delay_ns: float
    switching_energy_fj: float
    oscillating_vectors: tuple[int, ...] = ()

    # -- derived metrics ------------------------------------------------
    @property
    def vector_count(self) -> int:
        return len(self.settle_steps)

    def waveform(self, net: str) -> tuple[str, ...]:
        for name, values in self.waveforms:
            if name == net:
                return values
        raise KeyError(f"no waveform recorded for net {net!r}")

    def waveform_map(self) -> dict[str, tuple[str, ...]]:
        return dict(self.waveforms)

    @property
    def worst_delay_ns(self) -> float:
        if not self.settle_steps:
            return 0.0
        return max(self.settle_steps) * self.stage_delay_ns

    @property
    def average_delay_ns(self) -> float:
        if not self.settle_steps:
            return 0.0
        return (sum(self.settle_steps) / len(self.settle_steps)
                * self.stage_delay_ns)

    @property
    def total_energy_fj(self) -> float:
        return sum(self.transitions) * self.switching_energy_fj

    @property
    def average_power_uw(self) -> float:
        """Energy / time, assuming one vector per settled interval."""
        total_time_ns = sum(self.settle_steps) * self.stage_delay_ns
        if total_time_ns <= 0:
            return 0.0
        # fJ/ns == uW
        return self.total_energy_fj / total_time_ns

    @property
    def has_unknowns(self) -> bool:
        return any(UNKNOWN in values for _, values in self.waveforms)

    def output_table(self) -> tuple[tuple[str, ...], ...]:
        """Rows of output values, one row per vector."""
        by_net = self.waveform_map()
        return tuple(
            tuple(by_net[o][i] for o in self.outputs)
            for i in range(self.vector_count))

    # -- persistence -------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "circuit": self.circuit,
            "stimuli": self.stimuli,
            "models": self.models,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "waveforms": [[net, list(values)]
                          for net, values in self.waveforms],
            "settle_steps": list(self.settle_steps),
            "transitions": list(self.transitions),
            "stage_delay_ns": self.stage_delay_ns,
            "switching_energy_fj": self.switching_energy_fj,
            "oscillating_vectors": list(self.oscillating_vectors),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "PerformanceReport":
        return cls(
            circuit=payload["circuit"],
            stimuli=payload["stimuli"],
            models=payload["models"],
            inputs=tuple(payload["inputs"]),
            outputs=tuple(payload["outputs"]),
            waveforms=tuple((net, tuple(values))
                            for net, values in payload["waveforms"]),
            settle_steps=tuple(payload["settle_steps"]),
            transitions=tuple(payload["transitions"]),
            stage_delay_ns=payload["stage_delay_ns"],
            switching_energy_fj=payload["switching_energy_fj"],
            oscillating_vectors=tuple(payload.get("oscillating_vectors",
                                                  ())),
        )


def make_report(circuit: str, stimuli: str, models: DeviceModels,
                inputs: tuple[str, ...], outputs: tuple[str, ...],
                waveforms: dict[str, list[str]],
                settle_steps: list[int], transitions: list[int],
                oscillating: list[int]) -> PerformanceReport:
    """Assemble a report from raw simulation arrays."""
    return PerformanceReport(
        circuit=circuit,
        stimuli=stimuli,
        models=models.name,
        inputs=inputs,
        outputs=outputs,
        waveforms=tuple(sorted((net, tuple(values))
                               for net, values in waveforms.items())),
        settle_steps=tuple(settle_steps),
        transitions=tuple(transitions),
        stage_delay_ns=models.stage_delay_ns,
        switching_energy_fj=models.switching_energy_fj(),
        oscillating_vectors=tuple(oscillating),
    )
