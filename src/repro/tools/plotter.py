"""ASCII performance plotter (the *Plotter* of Fig. 1).

Turns a :class:`~repro.tools.performance.PerformanceReport` into a
deterministic text artifact: waveforms per output plus a metric summary.
The plot object is first-class design data (a *Performance Plot* entity)
so it lands in the history database like everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .performance import ONE, UNKNOWN, ZERO, PerformanceReport

_GLYPHS = {ZERO: "_", ONE: "#", UNKNOWN: "?"}


@dataclass(frozen=True)
class PerformancePlot:
    """Rendered waveforms + metrics for one performance report."""

    circuit: str
    stimuli: str
    text: str

    def to_dict(self) -> dict[str, Any]:
        return {"circuit": self.circuit, "stimuli": self.stimuli,
                "text": self.text}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "PerformancePlot":
        return cls(**payload)

    def __str__(self) -> str:
        return self.text


def waveform_line(values: tuple[str, ...], width: int = 3) -> str:
    """One net's waveform as a glyph strip (3 columns per vector)."""
    return "".join(_GLYPHS.get(v, "?") * width for v in values)


def plot(report: PerformanceReport) -> PerformancePlot:
    """Render a report into an ASCII plot."""
    lines = [f"performance plot: {report.circuit} / {report.stimuli} "
             f"({report.models})"]
    label_width = max((len(n) for n, _ in report.waveforms), default=4)
    ruler = "".join(f"{i % 10}--" for i in range(report.vector_count))
    lines.append(f"  {'vec'.rjust(label_width)} {ruler}")
    for net, values in report.waveforms:
        lines.append(f"  {net.rjust(label_width)} {waveform_line(values)}")
    lines.append(
        f"  worst delay {report.worst_delay_ns:.2f} ns | avg "
        f"{report.average_delay_ns:.2f} ns | energy "
        f"{report.total_energy_fj:.1f} fJ | power "
        f"{report.average_power_uw:.2f} uW")
    if report.oscillating_vectors:
        lines.append(f"  OSCILLATING vectors: "
                     f"{list(report.oscillating_vectors)}")
    if report.has_unknowns:
        lines.append("  note: waveforms contain unknown (X) values")
    return PerformancePlot(report.circuit, report.stimuli,
                           "\n".join(lines))
