"""CI gate: the resilience layer must recover from a scripted crash.

Drives the real ``repro run`` CLI over a saved Fig. 6 parallel flow
with a seeded fault plan (two transient Extractor crashes):

1. with ``--retries 3`` the run must recover — exit 0, all branches
   produced, and the ledger must record exactly the two retries;
2. a second same-seed run in a fresh project must record byte-identical
   per-tool retry counts (the chaos drill is deterministic);
3. the recovered history must be content-identical (same entity types,
   same data digests) to a run that never saw a fault — atomicity means
   faults leave no residue;
4. with retries disabled the same plan must be fatal — exit 1.

Everything runs through the CLI (``repro run <dir> fig6 --executor
parallel --fault-plan ...``), so the flags, the ledger wiring, and the
exit-code contract are all under test, not just the library layer.
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).parent))

BRANCHES = 4
SEED = 7
INJECTED_CRASHES = 2


def build_project(root: pathlib.Path) -> None:
    """A saved environment with a bound Fig. 6 flow in its catalog."""
    from repro import DesignEnvironment
    from repro.persistence import save_environment
    from repro.schema import standard as S
    from repro.schema.standard import odyssey_schema
    from repro.tools import (install_standard_tools, standard_library,
                             stdcell_layout)
    from repro.tools.logic import LogicSpec

    env = DesignEnvironment(odyssey_schema(), user="chaos")
    tools = install_standard_tools(env)
    library = standard_library()
    equations = ["y = a & b", "y = a | b", "y = ~(a & b)",
                 "y = (a & ~b) | (~a & b)"]
    flow = env.new_flow("fig6")
    for index, equation in enumerate(equations[:BRANCHES]):
        spec = LogicSpec.from_equations(f"f{index}", equation)
        layout = env.install_data(
            S.STD_CELL_LAYOUT,
            stdcell_layout(spec, library, {"seed": index}),
            name=f"variant-{index}")
        netlist_node = flow.place(S.EXTRACTED_NETLIST)
        tool_node = flow.graph.add_node(S.EXTRACTOR)
        layout_node = flow.graph.add_node(S.LAYOUT)
        layout_node.bind(layout.instance_id)
        tool_node.bind(tools[S.EXTRACTOR].instance_id)
        flow.connect(netlist_node, tool_node)
        flow.connect(netlist_node, layout_node, role="layout")
    env.save_flow("fig6", flow)
    save_environment(env, root)


def write_plan(path: pathlib.Path) -> None:
    from repro.execution import FaultPlan, FaultSpec
    from repro.schema import standard as S

    FaultPlan([FaultSpec(S.EXTRACTOR, index + 1)
               for index in range(INJECTED_CRASHES)],
              seed=SEED).save(path)


def run_cli(directory: pathlib.Path, *extra: str) -> int:
    from repro.cli import main as repro_main

    return repro_main(["run", str(directory), "fig6",
                       "--executor", "parallel",
                       "--machines", str(BRANCHES), *extra])


def retry_counts(directory: pathlib.Path) -> str:
    """Canonical JSON of the last run's recorded retry telemetry."""
    from repro.obs import RunLedger

    record = RunLedger(directory / "ledger.jsonl").records()[-1]
    per_tool = {tool: stats.retries
                for tool, stats in sorted(record.tools.items())}
    return json.dumps({"retries": record.retries,
                       "timeouts": record.timeouts,
                       "failures": record.failures,
                       "per_tool": per_tool}, sort_keys=True)


def history_signature(directory: pathlib.Path) -> list[tuple[str, str]]:
    """(entity type, content digest) multiset of the whole history."""
    from repro.persistence import load_environment

    env = load_environment(directory)
    return sorted((inst.entity_type, inst.data_ref)
                  for inst in env.db.instances())


def netlist_count(directory: pathlib.Path) -> int:
    from repro.persistence import load_environment
    from repro.schema import standard as S

    env = load_environment(directory)
    return len(env.db.browse(S.EXTRACTED_NETLIST))


def main() -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as scratch:
        root = pathlib.Path(scratch)
        plan = root / "plan.json"
        write_plan(plan)

        # 1. crash-then-recover: retries enabled must succeed
        recovered = root / "recovered"
        build_project(recovered)
        code = run_cli(recovered, "--retries", "3",
                       "--fault-plan", str(plan))
        print(f"with --retries 3: exit {code}")
        if code != 0:
            failures.append(
                f"retries enabled must recover, exited {code}")
        counts = retry_counts(recovered)
        print(f"  ledger telemetry: {counts}")
        if json.loads(counts)["retries"] != INJECTED_CRASHES:
            failures.append(
                f"ledger must record {INJECTED_CRASHES} retries, "
                f"got {counts}")
        if netlist_count(recovered) != BRANCHES:
            failures.append(
                f"all {BRANCHES} branches must produce, got "
                f"{netlist_count(recovered)}")

        # 2. determinism: a same-seed re-run records identical telemetry
        replay = root / "replay"
        build_project(replay)
        code = run_cli(replay, "--retries", "3",
                       "--fault-plan", str(plan))
        if code != 0:
            failures.append(f"same-seed replay exited {code}")
        if retry_counts(replay) != counts:
            failures.append(
                "same-seed runs recorded different retry counts:\n"
                f"  {counts}\n  {retry_counts(replay)}")
        else:
            print("  same-seed replay: retry telemetry byte-identical")

        # 3. atomicity: recovered history == never-faulted history
        pristine = root / "pristine"
        build_project(pristine)
        code = run_cli(pristine)
        if code != 0:
            failures.append(f"fault-free run exited {code}")
        if history_signature(recovered) != history_signature(pristine):
            failures.append(
                "recovered history differs from a fault-free run")
        else:
            print("  recovered history content-identical to "
                  "fault-free run")

        # 4. the same plan without a retry budget must be fatal
        fragile = root / "fragile"
        build_project(fragile)
        code = run_cli(fragile, "--fault-plan", str(plan))
        print(f"without retries: exit {code}")
        if code != 1:
            failures.append(
                f"retries disabled must fail with exit 1, got {code}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("chaos smoke check passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
