"""FIG-2: a tool created during the design (the COSMOS example).

Regenerates the Fig. 2 subgraph as an executed flow: a *Compiled
Simulator* is produced by the *Sim Compiler* from a netlist, then
executed on different stimuli.  The benchmark quantifies the figure's
*reason to exist*: compiling once and running N stimulus sets beats
recompiling per run — which is why COSMOS is worth representing as a
design entity at all.
"""

import pytest

from repro.history import backward_trace
from repro.schema import standard as S
from repro.tools import (compile_netlist, default_models, random_vectors,
                         standard_library, tech_map)
from repro.tools.logic import LogicSpec
from repro.tools.simulator import simulate_interpreted

N_STIMULI = 8
VECTORS = 24


@pytest.fixture
def netlist():
    spec = LogicSpec.from_equations(
        "alu-slice",
        "s = (a & ~b & ~c) | (~a & b & ~c) | (~a & ~b & c) | (a & b & c)",
        "co = (a & b) | (a & c) | (b & c)")
    return tech_map(spec).flatten(standard_library())


@pytest.fixture
def stimuli_sets(netlist):
    return [random_vectors(netlist.inputs, VECTORS, seed=seed)
            for seed in range(N_STIMULI)]


def test_bench_fig02_compiled_vs_interpreted(benchmark, write_artifact,
                                             netlist, stimuli_sets):
    """Why COSMOS exists: compile once, then run stimuli fast.

    The compiled network precomputes net indexing and the static
    channel-connected-group partition and evaluates event-driven; the
    interpretive reference simulator re-derives structure from the raw
    netlist every settle step.  Both produce bit-identical results
    (property-tested); the bench measures the speed shape.
    """
    models = default_models()
    network = compile_netlist(netlist)

    def compiled_once():
        return [network.simulate(stim, models) for stim in stimuli_sets]

    def interpreted():
        return [simulate_interpreted(netlist, stim, models)
                for stim in stimuli_sets]

    reports = benchmark(compiled_once)
    assert len(reports) == N_STIMULI

    import time
    t0 = time.perf_counter()
    compiled_reports = compiled_once()
    compiled_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    interpreted_reports = interpreted()
    interpreted_time = time.perf_counter() - t0

    # identical answers, different cost
    for fast, slow in zip(compiled_reports, interpreted_reports):
        assert fast.waveform_map() == slow.waveform_map()
        assert fast.settle_steps == slow.settle_steps
    assert interpreted_time > compiled_time  # the COSMOS shape

    text = [
        "FIG-2: tool created during the design (COSMOS)",
        f"netlist: {netlist.name} ({netlist.device_count} transistors, "
        f"{len(network.group_nets)} channel groups)",
        f"stimulus sets: {N_STIMULI} x {VECTORS} vectors",
        "",
        f"compiled simulator (compile once, run {N_STIMULI}): "
        f"{compiled_time * 1e3:8.2f} ms",
        f"interpretive reference simulator:        "
        f"{interpreted_time * 1e3:8.2f} ms",
        f"compiled advantage:                      "
        f"{interpreted_time / compiled_time:8.2f}x",
        "",
        "results are bit-identical between the two engines",
    ]
    write_artifact("fig02_cosmos", "\n".join(text))


def test_bench_fig02_flow_records_tool_derivation(benchmark, stocked,
                                                  write_artifact):
    """The Fig. 2 flow executed through the framework, history included."""

    def run_cosmos_flow():
        env = stocked
        flow, goal = env.goal_flow(S.PERFORMANCE, "cosmos")
        flow.expand(goal)
        sim_node = flow.sole_node_of_type(S.SIMULATOR)
        flow.specialize(sim_node, S.COMPILED_SIMULATOR)
        flow.expand(sim_node)
        flow.expand(flow.sole_node_of_type(S.CIRCUIT))
        for node in flow.nodes_of_type(S.NETLIST):
            if not node.is_bound:
                flow.bind(node, env.netlist.instance_id)
        flow.bind(flow.sole_node_of_type(S.DEVICE_MODELS),
                  env.models.instance_id)
        flow.bind(flow.sole_node_of_type(S.STIMULI),
                  env.stimuli.instance_id)
        flow.bind(flow.sole_node_of_type(S.SIM_COMPILER),
                  stocked.tools[S.SIM_COMPILER].instance_id)
        env.run(flow, force=True)
        return flow, goal

    flow, goal = benchmark.pedantic(run_cosmos_flow, rounds=3,
                                    iterations=1)
    perf = stocked.db.get(goal.produced[-1])
    compiled_tool = stocked.db.get(perf.derivation.tool)
    assert compiled_tool.entity_type == S.COMPILED_SIMULATOR
    assert compiled_tool.derivation is not None  # the tool is data too
    write_artifact(
        "fig02_flow_trace",
        "FIG-2 flow trace (the compiled simulator is itself derived):\n"
        + backward_trace(stocked.db, perf.instance_id).render())
