"""CLAIM-F: the encapsulation patterns of section 3.3, measured.

Three claims in one bench:

1. **shared encapsulation** — the three statistical optimizers run
   through ONE registered encapsulation (resolution walks the subtype
   chain); each produces a functionally equivalent tuned netlist;
2. **tools as data** — every optimization task receives the Simulator
   instance as an ordinary data input, recorded in the derivation;
3. **multi-function tools** — one underlying program object installed as
   two tool instances of different entity types (editor + extractor),
   each behaviour selected by its type's encapsulation.
"""

from repro.execution import encapsulation
from repro.schema import standard as S
from repro.tools import (default_models, extract, standard_library,
                         tech_map, truth_table)
from repro.tools.editors import edit_layout
from repro.tools.logic import LogicSpec

from conftest import fresh_env

OPTIMIZERS = (S.RANDOM_OPTIMIZER, S.COORDINATE_OPTIMIZER,
              S.ANNEALING_OPTIMIZER)


def optimization_flow(env, optimizer_type):
    flow, goal = env.goal_flow(S.OPTIMIZED_NETLIST,
                               f"opt-{optimizer_type}")
    flow.expand(goal)
    flow.specialize(flow.sole_node_of_type(S.OPTIMIZER), optimizer_type)
    circuit = flow.sole_node_of_type(S.CIRCUIT)
    flow.expand(circuit)
    input_netlist = next(n for n in flow.nodes_of_type(S.NETLIST)
                         if n.node_id != goal.node_id)
    flow.bind(input_netlist, env.netlist.instance_id)
    flow.bind(flow.sole_node_of_type(S.DEVICE_MODELS),
              env.models.instance_id)
    flow.bind(flow.sole_node_of_type(S.OPTIMIZER),
              env.tools[optimizer_type].instance_id)
    flow.bind(flow.nodes_of_type(S.SIMULATOR)[0],
              env.tools[S.SIMULATOR].instance_id)
    flow.bind(flow.sole_node_of_type(S.OPTIMIZATION_SPEC),
              env.spec_instance.instance_id)
    return flow, goal


def stocked():
    env = fresh_env()
    spec = LogicSpec.from_equations("cell", "y = ~(a & b)")
    env.netlist = env.install_data(  # type: ignore[attr-defined]
        S.EDITED_NETLIST,
        tech_map(spec).flatten(standard_library()), name="cell-net")
    env.models = env.install_data(  # type: ignore[attr-defined]
        S.DEVICE_MODELS, default_models(), name="tech")
    env.spec_instance = env.install_data(  # type: ignore[attr-defined]
        S.OPTIMIZATION_SPEC, {"iterations": 10, "seed": 5},
        name="ospec")
    return env


def test_bench_claim_shared_encapsulation(benchmark, write_artifact):
    env = stocked()
    rows = ["CLAIM-F (1+2): three optimizers, one encapsulation, "
            "simulator as data",
            f"{'optimizer':>28} {'encapsulation':>14} "
            f"{'width before':>13} {'width after':>12}"]
    reference = truth_table(env.db.data(env.netlist))
    for optimizer_type in OPTIMIZERS:
        resolved = env.registry.resolve(optimizer_type)
        flow, goal = optimization_flow(env, optimizer_type)
        report = env.run(flow)
        tuned = env.db.data(goal.produced[0])
        assert truth_table(tuned) == reference  # function preserved
        # the simulator arrived as DATA: check the derivation record
        record = env.db.get(goal.produced[0]).derivation
        simulator_input = record.input_map()["simulator"]
        assert env.db.get(simulator_input).entity_type == S.SIMULATOR
        rows.append(
            f"{optimizer_type:>28} {resolved.name:>14} "
            f"{env.db.data(env.netlist).total_width():>13.1f} "
            f"{tuned.total_width():>12.1f}")
    # one shared encapsulation object served all three
    names = {env.registry.resolve(t).name for t in OPTIMIZERS}
    assert names == {"statopt"}
    rows.append("")
    rows.append("all three tool types resolved to the single shared "
                "'statopt' encapsulation")
    write_artifact("claim_f_shared_encapsulation", "\n".join(rows))

    flow, goal = optimization_flow(env, S.RANDOM_OPTIMIZER)
    benchmark.pedantic(lambda: env.run(flow, force=True), rounds=3,
                       iterations=1)


def test_bench_claim_multifunction_tool(benchmark, write_artifact):
    """One program, two tool types: layout editor AND extractor."""
    env = fresh_env()
    library = standard_library()

    class MagicProgram:
        """A 'magic'-style tool that both edits and extracts."""

        def edit(self, script, previous):
            return edit_layout(script, previous)

        def extract(self, layout):
            return extract(layout, library)

    program = MagicProgram()

    def edit_behaviour(ctx, inputs):
        return program.edit(ctx.options["script"],
                            inputs.get("previous"))

    def extract_behaviour(ctx, inputs):
        netlist, statistics = program.extract(inputs["layout"])
        produced = {S.EXTRACTED_NETLIST: netlist,
                    S.EXTRACTION_STATISTICS: statistics}
        return {t: produced[t] for t in ctx.output_types}

    editor_instance = env.db.install(S.LAYOUT_EDITOR,
                                     {"program": "magic"},
                                     name="magic-as-editor")
    extractor_instance = env.db.install(S.EXTRACTOR,
                                        {"program": "magic"},
                                        name="magic-as-extractor")
    script = [
        {"op": "place", "name": "u1", "cell": "inv", "x": 2, "y": 0},
        {"op": "pin", "net": "a", "x": 0, "y": 1, "direction": "in"},
        {"op": "pin", "net": "y", "x": 6, "y": 1, "direction": "out"},
        {"op": "route", "net": "a", "points": [[0, 1], [2, 1]]},
        {"op": "route", "net": "y", "points": [[3, 1], [6, 1]]},
    ]
    env.registry.register_for_instance(
        editor_instance.instance_id,
        encapsulation("magic-edit", edit_behaviour, script=script))
    env.registry.register_for_instance(
        extractor_instance.instance_id,
        encapsulation("magic-extract", extract_behaviour))

    def run_both_behaviours():
        flow = env.new_flow("magic")
        layout_goal = flow.place(S.EDITED_LAYOUT)
        flow.expand(layout_goal)
        flow.bind(flow.sole_node_of_type(S.LAYOUT_EDITOR),
                  editor_instance.instance_id)
        netlist = flow.expand_toward(layout_goal, S.EXTRACTED_NETLIST)
        tool_node = flow.graph.add_node(S.EXTRACTOR)
        tool_node.bind(extractor_instance.instance_id)
        flow.connect(netlist, tool_node)
        report = env.run(flow, force=True)
        return flow, report

    flow, report = benchmark.pedantic(run_both_behaviours, rounds=3,
                                      iterations=1)
    encapsulations_used = sorted(r.encapsulation for r in report.results)
    assert encapsulations_used == ["magic-edit", "magic-extract"]
    netlist_node = flow.nodes_of_type(S.EXTRACTED_NETLIST)[0]
    netlist = env.db.data(netlist_node.produced[-1])
    assert truth_table(netlist) == {(0,): ("1",), (1,): ("0",)}

    write_artifact(
        "claim_f_multifunction",
        "CLAIM-F (3): one program as two tool instances\n"
        f"  {editor_instance.instance_id} -> behaviour 'magic-edit' "
        "(LayoutEditor type)\n"
        f"  {extractor_instance.instance_id} -> behaviour "
        "'magic-extract' (Extractor type)\n"
        f"  invocations used: {encapsulations_used}\n"
        "  extracted inverter verified against its truth table")
