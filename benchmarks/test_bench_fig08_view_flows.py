"""FIG-8: synthesis and verification flows between views.

Regenerates both flows of the figure over the standard schema and
executes them: (a) synthesize the physical view of a circuit from the
transistor view; (b) verify that the physical view is consistent with
the transistor view.  Benchmarks the full synthesize-then-verify cycle.
"""

from repro.core import ascii_graph
from repro.schema import standard as S
from repro.tools import default_models, tech_map
from repro.tools.logic import LogicSpec
from repro.views import (synthesis_flow, synthesize_physical,
                         verification_flow, verify_correspondence)

from conftest import fresh_env


def test_bench_fig08_view_flows(benchmark, write_artifact):
    env = fresh_env()
    spec = LogicSpec.from_equations("cell", "y = ~(a & b)")
    netlist = env.install_data(S.EDITED_NETLIST, tech_map(spec),
                               name="cell-net")
    env.install_data(S.DEVICE_MODELS, default_models(), name="tech")
    pspec = env.install_data(S.PLACEMENT_SPEC,
                             {"seed": 7, "moves": 150}, name="ps")

    def synthesize_and_verify():
        placed = synthesize_physical(env, netlist, pspec,
                                     env.tools[S.PLACER])
        verification = verify_correspondence(
            env, netlist, placed, env.tools[S.VERIFIER],
            env.tools[S.EXTRACTOR])
        return placed, verification

    placed, verification = benchmark.pedantic(synthesize_and_verify,
                                              rounds=3, iterations=1)
    assert env.db.data(verification).matched

    text = [
        "FIG-8: flows for view synthesis and view verification",
        "",
        "(a) synthesis of physical view of circuit:",
        ascii_graph(synthesis_flow(env.schema).graph),
        "",
        "(b) verification that physical view corresponds to "
        "transistor view:",
        ascii_graph(verification_flow(env.schema).graph),
        "",
        f"executed: {placed.instance_id} synthesized, verification "
        f"{'MATCH' if env.db.data(verification).matched else 'MISMATCH'}",
    ]
    write_artifact("fig08_view_flows", "\n".join(text))
