"""CLAIM-A: automatic task sequencing (flow automation).

Section 3.3: because tool and data dependencies live in the task schema,
a dynamically defined flow executes without the designer ordering the
tasks.  The bench builds extract->compose->simulate->plot chains of
growing width (independent designs through the same pipeline) and
measures end-to-end automation cost; asserts every invocation ran in
dependency order.
"""

from repro.schema import standard as S
from repro.tools import (default_models, exhaustive, stdcell_layout,
                         standard_library)
from repro.tools.logic import LogicSpec

from conftest import fresh_env

WIDTHS = (1, 4, 8)


def stocked_env(width: int):
    env = fresh_env()
    env.models = env.install_data(  # type: ignore[attr-defined]
        S.DEVICE_MODELS, default_models(), name="tech")
    env.stim = env.install_data(  # type: ignore[attr-defined]
        S.STIMULI, exhaustive(("a", "b")), name="ab")
    library = standard_library()
    env.layouts = []  # type: ignore[attr-defined]
    for index in range(width):
        spec = LogicSpec.from_equations(f"d{index}", "y = a & b")
        env.layouts.append(env.install_data(
            S.STD_CELL_LAYOUT, stdcell_layout(spec, library,
                                              {"seed": index}),
            name=f"design-{index}"))
    return env


def build_pipeline(env, layout):
    """layout -> extract -> compose -> simulate -> plot, unordered."""
    flow = env.new_flow(f"auto-{layout.instance_id}")
    plot_goal = flow.place(S.PERFORMANCE_PLOT)
    flow.expand(plot_goal)
    performance = flow.sole_node_of_type(S.PERFORMANCE)
    flow.expand(performance)
    circuit = flow.sole_node_of_type(S.CIRCUIT)
    flow.expand(circuit)
    netlist = flow.sole_node_of_type(S.NETLIST)
    flow.specialize(netlist, S.EXTRACTED_NETLIST)
    flow.expand(netlist)
    flow.bind(flow.sole_node_of_type(S.LAYOUT), layout.instance_id)
    flow.bind(flow.sole_node_of_type(S.DEVICE_MODELS),
              env.models.instance_id)
    flow.bind(flow.sole_node_of_type(S.STIMULI), env.stim.instance_id)
    for tool_type in (S.EXTRACTOR, S.SIMULATOR, S.PLOTTER):
        flow.bind(flow.sole_node_of_type(tool_type),
                  env.tools[tool_type].instance_id)
    return flow, plot_goal


def run_width(width: int):
    env = stocked_env(width)
    executed = []
    for layout in env.layouts:
        flow, goal = build_pipeline(env, layout)
        report = env.run(flow)
        executed.append((flow, goal, report))
    return env, executed


def test_bench_claim_automation(benchmark, write_artifact):
    import time

    rows = ["CLAIM-A: automatic task sequencing from the schema",
            f"{'designs':>8} {'invocations':>12} {'tool runs':>10} "
            f"{'wall ms':>8}"]
    for width in WIDTHS:
        started = time.perf_counter()
        env, executed = run_width(width)
        elapsed = (time.perf_counter() - started) * 1e3
        invocations = sum(len(r.results) for _, _, r in executed)
        runs = sum(r.runs for _, _, r in executed)
        rows.append(f"{width:>8} {invocations:>12} {runs:>10} "
                    f"{elapsed:>8.1f}")
        # dependency-order check on every report
        for flow, goal, report in executed:
            order = {node_id: position for position, node_id
                     in enumerate(flow.graph.topological_order())}
            produced_positions = [
                min(order[n] for n in result.outputs_by_node)
                for result in report.results]
            assert produced_positions == sorted(produced_positions)
            assert goal.produced  # plot reached without manual ordering

    benchmark.pedantic(lambda: run_width(4), rounds=3, iterations=1)
    write_artifact("claim_a_automation", "\n".join(rows))
