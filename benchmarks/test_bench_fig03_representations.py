"""FIG-3: the two representations of a dynamically defined flow.

Regenerates the paper's placement flow in both forms — the traditional
bipartite flow diagram (Fig. 3a) and the task graph (Fig. 3b) — plus the
Lisp-style functional forms from footnote 2.  Benchmarks the conversion
cost task-graph -> bipartite.
"""

from repro.core import (DynamicFlow, ascii_graph, flow_equation,
                        to_bipartite)
from repro.schema import standard as S
from repro.schema.standard import odyssey_schema


def build_fig3_flow() -> DynamicFlow:
    schema = odyssey_schema()
    flow = DynamicFlow(schema, "fig3")
    goal = flow.place(S.PLACED_LAYOUT)
    flow.expand(goal)
    netlist = flow.sole_node_of_type(S.NETLIST)
    flow.specialize(netlist, S.EDITED_NETLIST)
    flow.expand(netlist, include_optional=["previous"])
    return flow


def test_bench_fig03_representations(benchmark, write_artifact):
    flow = build_fig3_flow()
    goal = flow.sole_node_of_type(S.PLACED_LAYOUT)

    diagram = benchmark(to_bipartite, flow.graph)

    lisp = flow_equation(flow.graph, goal.node_id, "lisp")
    call = flow_equation(flow.graph, goal.node_id, "call")
    # footnote 2, verbatim shape
    assert lisp == ("placed_layout <- (placer, (circuit_editor, "
                    "netlist), placement_spec)")
    assert call == ("placed_layout <- placer(circuit_editor(netlist), "
                    "placement_spec)")
    assert diagram.activity_count() == 2
    assert {a.tool_type for a in diagram.activities} == {
        S.PLACER, S.CIRCUIT_EDITOR}

    text = [
        "FIG-3: two representations of one dynamically defined flow",
        "",
        "(a) traditional bipartite flow diagram:",
        diagram.render(flow.graph),
        "",
        "(b) task graph:",
        ascii_graph(flow.graph),
        "",
        "footnote 2, C/Pascal style:   " + call,
        "footnote 2, Lisp style:       " + lisp,
    ]
    write_artifact("fig03_representations", "\n".join(text))
