"""CI gate: the derivation cache must fully coalesce a warm re-run.

Runs the Fig. 5 complex flow twice in one process with the derivation
cache enabled and fails (exit 1) when:

* the warm run executes ANY tool invocation (the acceptance criterion:
  a warm re-run performs zero tool runs and returns the same ids);
* the warm run does not emit one ``cache_hit`` event per coalesced
  invocation;
* the structural numbers (cold invocations, instances created, warm
  hits) drift more than the tolerance from the checked-in baseline in
  ``benchmarks/artifacts/cache_baseline.json``;
* the warm run's wall time exceeds the cold run's by more than the
  tolerance (a very lenient sanity bound — counts, not clocks, are the
  real contract, so machine speed never flakes this check).

Regenerate the baseline after an intentional structural change with::

    PYTHONPATH=src python benchmarks/check_cache_regression.py \
        --write-baseline
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

BASELINE = (pathlib.Path(__file__).parent / "artifacts"
            / "cache_baseline.json")
TOLERANCE = 0.25


def run_once():
    """Cold + warm Fig. 5 execution in one environment; returns stats."""
    from conftest import fresh_env
    from test_bench_fig05_complex_flow import (build_fig5_flow,
                                               build_layout_instance)
    from repro.obs import CACHE_HIT, RingBufferSink
    from repro.schema import standard as S
    from repro.tools import default_models, exhaustive, tech_map
    from repro.tools.logic import LogicSpec

    env = fresh_env()
    env.models = env.install_data(S.DEVICE_MODELS, default_models(),
                                  name="tech")
    env.stimuli_inv = env.install_data(S.STIMULI, exhaustive(("a",)),
                                       name="a-vec")
    reference = env.install_data(
        S.EDITED_NETLIST,
        tech_map(LogicSpec.from_equations("ref", "y = ~a")),
        name="ref-inv")
    layout_id = build_layout_instance(env)

    cold_flow = build_fig5_flow(env, layout_id, reference.instance_id)
    cold_started = time.perf_counter()
    cold = env.run(cold_flow, cache="readwrite")
    cold_elapsed = time.perf_counter() - cold_started

    sink = RingBufferSink(256)
    env.bus.subscribe(sink)
    warm_flow = build_fig5_flow(env, layout_id, reference.instance_id)
    warm_started = time.perf_counter()
    warm = env.run(warm_flow, cache="reuse")
    warm_elapsed = time.perf_counter() - warm_started
    hit_events = sum(1 for e in sink.events()
                     if e.event_type == CACHE_HIT)

    return {
        "cold_invocations": len(cold.results),
        "cold_created": len(cold.created),
        "warm_invocations": len(warm.results),
        "warm_hits": warm.cache_hits,
        "warm_reused": len(warm.reused),
        "hit_events": hit_events,
        "same_ids": sorted(warm.reused) == sorted(cold.created),
        "cold_elapsed": cold_elapsed,
        "warm_elapsed": warm_elapsed,
    }


def check(stats: dict, baseline: dict | None) -> list[str]:
    failures = []
    if stats["warm_invocations"] != 0:
        failures.append(
            f"warm run executed {stats['warm_invocations']} tool "
            "invocations; expected 0 (full coalescing)")
    if not stats["same_ids"]:
        failures.append("warm run did not return the cold run's "
                        "instance ids")
    if stats["hit_events"] != stats["warm_hits"] \
            or stats["warm_hits"] == 0:
        failures.append(
            f"expected one cache_hit event per coalesced invocation, "
            f"got {stats['hit_events']} events for "
            f"{stats['warm_hits']} hits")
    if stats["warm_elapsed"] > stats["cold_elapsed"] * (1 + TOLERANCE) \
            and stats["warm_elapsed"] > 0.05:
        failures.append(
            f"warm run ({stats['warm_elapsed']:.3f}s) slower than "
            f"cold ({stats['cold_elapsed']:.3f}s) beyond tolerance")
    if baseline is not None:
        for key in ("cold_invocations", "cold_created", "warm_hits",
                    "warm_reused"):
            want, got = baseline[key], stats[key]
            if want and abs(got - want) / want > TOLERANCE:
                failures.append(
                    f"{key} regressed: baseline {want}, measured {got} "
                    f"(>{TOLERANCE:.0%} drift)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--write-baseline", action="store_true",
                        help="record current numbers as the baseline")
    args = parser.parse_args(argv)
    stats = run_once()
    print(json.dumps(stats, indent=1, sort_keys=True))
    if args.write_baseline:
        BASELINE.parent.mkdir(exist_ok=True)
        recorded = {k: v for k, v in stats.items()
                    if not k.endswith("_elapsed")}
        BASELINE.write_text(json.dumps(recorded, indent=1,
                                       sort_keys=True) + "\n",
                            encoding="utf-8")
        print(f"baseline written to {BASELINE}")
        return 0
    baseline = None
    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text(encoding="utf-8"))
    else:
        print(f"warning: no baseline at {BASELINE}; structural-drift "
              "checks skipped", file=sys.stderr)
    failures = check(stats, baseline)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("cache regression check passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
