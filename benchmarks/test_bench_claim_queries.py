"""CLAIM-B: history queries obviate separate version management.

Section 1: storing one small derivation record per object suffices for
derivation-history queries, and section 4.2 uses them for versioning.
The bench populates histories of growing size (N design rounds, each
round = extract + compose + simulate) and measures:

* backward chaining (derivation of one performance),
* forward chaining (everything derived from one netlist) — served by the
  database's forward index,
* template queries (simulations performed for this netlist),
* the Casotto-baseline equivalent (linear scan over trace events).

Shape to reproduce: indexed forward chaining stays flat as the database
grows; the trace-manager scan grows linearly.
"""

import time

from repro.baselines import TraceManager
from repro.history import (backward_trace, dependents_of_type,
                           template_query)
from repro.history.instance import DerivationRecord
from repro.schema import standard as S

from conftest import fresh_env

SIZES = (50, 200, 800)


def populate(env, rounds: int, mirror: TraceManager):
    """N rounds of layout->netlist->circuit->performance records."""
    extractor = env.tools[S.EXTRACTOR].instance_id
    simulator = env.tools[S.SIMULATOR].instance_id
    models = env.db.install(S.DEVICE_MODELS, {"m": 1}, name="tech")
    stim = env.db.install(S.STIMULI, [[0]], name="s")
    first_netlist = None
    for index in range(rounds):
        layout = env.db.install(S.EDITED_LAYOUT, {"i": index})
        netlist = env.db.record(
            S.EXTRACTED_NETLIST, {"n": index},
            DerivationRecord.make(extractor,
                                  {"layout": layout.instance_id}))
        circuit = env.db.record(
            S.CIRCUIT, {"c": index},
            DerivationRecord.make(None, {
                "models": models.instance_id,
                "netlist": netlist.instance_id}))
        performance = env.db.record(
            S.PERFORMANCE, {"p": index},
            DerivationRecord.make(simulator, {
                "circuit": circuit.instance_id,
                "stimuli": stim.instance_id}))
        trace = mirror.start_trace()
        mirror.record(trace, extractor, [layout.instance_id],
                      [netlist.instance_id])
        mirror.record(trace, simulator,
                      [circuit.instance_id, stim.instance_id],
                      [performance.instance_id])
        if first_netlist is None:
            first_netlist = netlist
    return first_netlist


def timed(fn, *args) -> tuple[float, object]:
    started = time.perf_counter()
    result = fn(*args)
    return (time.perf_counter() - started) * 1e6, result


def test_bench_claim_queries(benchmark, write_artifact):
    rows = ["CLAIM-B: query cost vs. history size (times in us)",
            f"{'rounds':>7} {'instances':>10} {'backward':>9} "
            f"{'forward':>8} {'template':>9} {'trace-scan':>11}"]
    measured = {}
    for rounds in SIZES:
        env = fresh_env()
        mirror = TraceManager()
        netlist = populate(env, rounds, mirror)
        performance = env.db.browse(S.PERFORMANCE)[0]

        backward_us, trace = timed(backward_trace, env.db,
                                   performance.instance_id)
        forward_us, dependents = timed(
            dependents_of_type, env.db, netlist.instance_id,
            S.PERFORMANCE)
        assert len(dependents) == 1
        # perf + circuit + netlist + layout + models + stimuli + 2 tools
        assert len(trace) == 8

        template = env.new_flow("q")
        perf_node = template.place(S.PERFORMANCE)
        circuit_node = template.graph.add_node(S.CIRCUIT)
        netlist_node = template.graph.add_node(S.NETLIST)
        template.connect(perf_node, circuit_node, role="circuit")
        template.connect(circuit_node, netlist_node, role="netlist")
        netlist_node.bind(netlist.instance_id)
        template_us, matches = timed(template_query, env.db,
                                     template.graph, perf_node.node_id)
        assert len(matches) == 1

        scan_us, found = timed(mirror.traces_touching,
                               netlist.instance_id)
        assert len(found) == 1

        measured[rounds] = (forward_us, scan_us)
        rows.append(f"{rounds:>7} {len(env.db):>10} {backward_us:>9.1f} "
                    f"{forward_us:>8.1f} {template_us:>9.1f} "
                    f"{scan_us:>11.1f}")

    # shape: the indexed forward query does not grow like the scan
    small_forward, small_scan = measured[SIZES[0]]
    large_forward, large_scan = measured[SIZES[-1]]
    scan_growth = large_scan / max(small_scan, 1e-9)
    forward_growth = large_forward / max(small_forward, 1e-9)
    rows.append("")
    rows.append(f"growth {SIZES[0]} -> {SIZES[-1]} rounds: "
                f"indexed forward x{forward_growth:.1f}, "
                f"baseline scan x{scan_growth:.1f}")
    assert scan_growth > forward_growth

    env = fresh_env()
    mirror = TraceManager()
    netlist = populate(env, SIZES[0], mirror)
    benchmark(dependents_of_type, env.db, netlist.instance_id,
              S.PERFORMANCE)
    write_artifact("claim_b_queries", "\n".join(rows))


def test_bench_persistence_scaling(benchmark, write_artifact, tmp_path):
    """Save/load cost of the history database vs size (CLAIM-B support:
    one derivation record per object keeps persistence linear and small).
    """
    import os
    import time

    from repro.baselines import TraceManager
    from repro.persistence import load_environment, save_environment

    rows = ["history persistence vs size",
            f"{'rounds':>7} {'instances':>10} {'save ms':>8} "
            f"{'load ms':>8} {'bytes/inst':>11}"]
    for rounds in SIZES[:2] + (SIZES[-1],):
        env = fresh_env()
        populate(env, rounds, TraceManager())
        directory = tmp_path / f"p{rounds}"
        started = time.perf_counter()
        save_environment(env, directory)
        save_ms = (time.perf_counter() - started) * 1e3
        size = sum(os.path.getsize(directory / f)
                   for f in os.listdir(directory))
        started = time.perf_counter()
        restored = load_environment(directory)
        load_ms = (time.perf_counter() - started) * 1e3
        assert len(restored.db) == len(env.db)
        rows.append(f"{rounds:>7} {len(env.db):>10} {save_ms:>8.1f} "
                    f"{load_ms:>8.1f} {size / len(env.db):>11.0f}")

    env = fresh_env()
    populate(env, SIZES[0], TraceManager())
    benchmark(save_environment, env, tmp_path / "bench")
    write_artifact("claim_b_persistence", "\n".join(rows))
