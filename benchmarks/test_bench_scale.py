"""SCALE-1: framework cost as the methodology grows.

Supplementary to the paper's claims: dynamically defined flows must stay
cheap as schemas and flows grow, since the designer builds them
interactively.  Synthetic pipeline methodologies of N stages (Tool_i
producing Data_i from Data_{i-1}) measure schema construction, full
backward expansion from the goal, end-to-end execution with no-op tools,
and the automatic-sequencing overhead per invocation.
"""

import time

from repro.execution import DesignEnvironment, encapsulation
from repro.schema.builder import SchemaBuilder

STAGES = (8, 32, 128)


def pipeline_schema(stages: int):
    builder = SchemaBuilder(f"pipe{stages}")
    builder.data("Data0")
    for index in range(1, stages + 1):
        builder.tool(f"Tool{index}")
        builder.data(f"Data{index}")
        builder.produced_by(f"Data{index}", f"Tool{index}",
                            inputs=[("src", f"Data{index - 1}")])
    return builder.build()


def build_and_run(stages: int) -> dict[str, float]:
    timings: dict[str, float] = {}
    started = time.perf_counter()
    schema = pipeline_schema(stages)
    timings["schema_ms"] = (time.perf_counter() - started) * 1e3

    env = DesignEnvironment(schema, user="scale")
    noop = encapsulation("noop", lambda ctx, ins: {"stage": True})
    tools = {}
    for index in range(1, stages + 1):
        tools[index] = env.install_tool(f"Tool{index}", None,
                                        name=f"t{index}")
    env.registry.register("Tool1", noop)  # shared: resolution walks up?
    # no subtype chain here: register for each type (cheap, code-only)
    for index in range(2, stages + 1):
        env.registry.register(f"Tool{index}", noop)
    source = env.install_data("Data0", {"seed": True})

    started = time.perf_counter()
    flow, goal = env.goal_flow(f"Data{stages}")
    flow.expand_fully(goal, max_depth=stages + 2)
    timings["expand_ms"] = (time.perf_counter() - started) * 1e3
    assert len(flow.nodes()) == 2 * stages + 1

    flow.bind(flow.sole_node_of_type("Data0"), source.instance_id)
    for index in range(1, stages + 1):
        flow.bind(flow.sole_node_of_type(f"Tool{index}"),
                  tools[index].instance_id)
    started = time.perf_counter()
    report = env.run(flow)
    timings["execute_ms"] = (time.perf_counter() - started) * 1e3
    assert len(report.results) == stages
    timings["per_invocation_us"] = timings["execute_ms"] / stages * 1e3

    from repro.history import backward_trace

    started = time.perf_counter()
    trace = backward_trace(env.db, goal.produced[0])
    timings["trace_ms"] = (time.perf_counter() - started) * 1e3
    assert len(trace) == 2 * stages + 1
    return timings


def test_bench_scale_pipeline(benchmark, write_artifact):
    rows = ["SCALE-1: cost vs methodology size (N-stage pipeline)",
            f"{'stages':>7} {'schema ms':>10} {'expand ms':>10} "
            f"{'execute ms':>11} {'us/invoc':>9} {'trace ms':>9}"]
    results = {}
    for stages in STAGES:
        timings = build_and_run(stages)
        results[stages] = timings
        rows.append(
            f"{stages:>7} {timings['schema_ms']:>10.2f} "
            f"{timings['expand_ms']:>10.2f} "
            f"{timings['execute_ms']:>11.2f} "
            f"{timings['per_invocation_us']:>9.0f} "
            f"{timings['trace_ms']:>9.2f}")
    # the per-invocation overhead must not blow up with depth
    small = results[STAGES[0]]["per_invocation_us"]
    large = results[STAGES[-1]]["per_invocation_us"]
    rows.append("")
    rows.append(f"per-invocation overhead growth "
                f"{STAGES[0]} -> {STAGES[-1]} stages: "
                f"{large / small:.1f}x")
    assert large / small < 30  # far from quadratic blow-up per stage

    benchmark.pedantic(lambda: build_and_run(STAGES[0]), rounds=3,
                       iterations=1)
    write_artifact("scale_pipeline", "\n".join(rows))
