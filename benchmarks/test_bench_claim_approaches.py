"""CLAIM-D: the four design approaches reach the same executable task.

Section 3.4: goal-based, tool-based, data-based and plan-based starts
all lead to equivalent flows through one representation and operation
vocabulary.  The bench builds the simulate-performance task all four
ways, asserts structural equivalence and identical execution results,
and measures the construction cost of each approach.
"""

import time

from repro.schema import standard as S

from conftest import build_simulation_flow, stocked  # noqa: F401


def shape(flow):
    """Family-level structural fingerprint of a flow.

    Types are normalized to their subtype-family root so that a node
    placed as abstract *Netlist* and one placed data-based as
    *EditedNetlist* compare equal — they denote the same task slot.
    """
    root = flow.schema.root_of
    types = sorted(root(n.entity_type) for n in flow.nodes())
    edges = sorted(
        (root(flow.node(e.consumer).entity_type), e.role,
         root(flow.node(e.supplier).entity_type))
        for e in flow.graph.edges())
    return types, edges


def goal_based_build(env):
    flow, goal = build_simulation_flow(env)
    return flow


def tool_based_build(env):
    """Start from the simulator instance, grow the task forward."""
    flow, sim = env.tool_flow(S.SIMULATOR, "tool-start",
                              tool_instance=env.tools[S.SIMULATOR])
    performance = flow.expand_toward(sim, S.PERFORMANCE)
    circuit = flow.graph.add_node(S.CIRCUIT)
    stimuli = flow.graph.add_node(S.STIMULI)
    flow.connect(performance, circuit, role="circuit")
    flow.connect(performance, stimuli, role="stimuli")
    flow.expand(circuit)
    flow.bind(flow.sole_node_of_type(S.NETLIST), env.netlist.instance_id)
    flow.bind(flow.sole_node_of_type(S.DEVICE_MODELS),
              env.models.instance_id)
    flow.bind(stimuli, env.stimuli.instance_id)
    return flow


def data_based_build(env):
    """Start from the existing netlist, grow forward, then backward."""
    flow, netlist_node = env.data_flow(env.netlist, "data-start")
    circuit = flow.expand_toward(netlist_node, S.CIRCUIT)
    models = flow.graph.add_node(S.DEVICE_MODELS)
    flow.connect(circuit, models, role="models")
    performance = flow.expand_toward(circuit, S.PERFORMANCE)
    simulator = flow.graph.add_node(S.SIMULATOR)
    stimuli = flow.graph.add_node(S.STIMULI)
    flow.connect(performance, simulator)
    flow.connect(performance, stimuli, role="stimuli")
    flow.bind(models, env.models.instance_id)
    flow.bind(simulator, env.tools[S.SIMULATOR].instance_id)
    flow.bind(stimuli, env.stimuli.instance_id)
    return flow


def plan_based_build(env):
    """Select the flow from the catalog, then only bind instances."""
    if "simulate-performance" not in env.flow_catalog:
        prototype, goal = build_simulation_flow(env)
        for node in prototype.nodes():
            node.unbind()
        env.save_flow("simulate-performance", prototype,
                      "standard simulation task")
    flow = env.plan_flow("simulate-performance")
    flow.bind(flow.sole_node_of_type(S.NETLIST), env.netlist.instance_id)
    flow.bind(flow.sole_node_of_type(S.DEVICE_MODELS),
              env.models.instance_id)
    flow.bind(flow.sole_node_of_type(S.STIMULI),
              env.stimuli.instance_id)
    flow.bind(flow.sole_node_of_type(S.SIMULATOR),
              env.tools[S.SIMULATOR].instance_id)
    return flow


APPROACHES = (("goal-based", goal_based_build),
              ("tool-based", tool_based_build),
              ("data-based", data_based_build),
              ("plan-based", plan_based_build))


def test_bench_claim_approaches(benchmark, write_artifact, stocked):
    env = stocked
    rows = ["CLAIM-D: four design approaches, one task",
            f"{'approach':>11} {'nodes':>6} {'edges':>6} "
            f"{'build us':>9} {'result':>18}"]
    shapes = []
    waveforms = []
    for name, builder in APPROACHES:
        started = time.perf_counter()
        flow = builder(env)
        build_us = (time.perf_counter() - started) * 1e6
        shapes.append(shape(flow))
        report = env.run(flow, force=True)
        goal = flow.nodes_of_type(S.PERFORMANCE)[0]
        performance = env.db.data(goal.produced[-1])
        waveform = "".join(performance.waveform("y"))
        waveforms.append(waveform)
        rows.append(f"{name:>11} {len(flow.nodes()):>6} "
                    f"{len(flow.graph.edges()):>6} {build_us:>9.1f} "
                    f"{waveform:>18}")
        assert report.created

    # all four approaches converge on the same flow and the same answer
    assert len(set(map(str, shapes))) == 1
    assert len(set(waveforms)) == 1
    rows.append("")
    rows.append("all four flows are structurally identical and produce "
                "identical performances")

    benchmark.pedantic(lambda: goal_based_build(env), rounds=20,
                       iterations=1)
    write_artifact("claim_d_approaches", "\n".join(rows))
