"""CI gate: the run ledger must catch an injected tool slowdown.

Exercises the longitudinal health pipeline end to end on the Fig. 6
parallel flow:

1. runs the flow twice with healthy tool latency, appending run records
   to a fresh ledger — ``repro health`` must exit 0 (no baseline drift);
2. runs it once more through a *delayed* tool wrapper (the injected
   regression) — ``repro health`` must flip to exit 1 with the
   ``tool-duration-drift`` check failing;
3. validates both Prometheus exporters (the ledger-derived
   ``repro_run_*`` series and ``MetricsRegistry.render_prometheus()``)
   against the minimal text-format validator below;
4. measures ledger-write overhead (best-of-N wall time with vs. without
   a ledger attached) and fails when it exceeds ``OVERHEAD_BUDGET``.

The drift gate is structural (an injected 4x slowdown against a tight
sleep-based baseline), so machine speed never flakes the verdict; only
the overhead bound touches clocks, and it compares best-of-N runs of a
sleep-dominated flow, which is stable across loaded CI machines.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

BRANCHES = 4
LATENCY = 0.04
SLOWDOWN = 4.0
#: Ledger-write overhead budget on the Fig. 6 flow (fraction of wall).
OVERHEAD_BUDGET = 0.05
OVERHEAD_ROUNDS = 4


# ---------------------------------------------------------------------------
# minimal Prometheus text-format validator
# ---------------------------------------------------------------------------
_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*"'
_SAMPLE_RE = re.compile(
    rf"^({_METRIC_NAME})(\{{{_LABEL}(?:,{_LABEL})*\}})?"
    r" (-?(?:[0-9]*\.)?[0-9]+(?:[eE][+-]?[0-9]+)?|NaN|[+-]Inf)$")
_TYPE_KINDS = {"counter", "gauge", "summary", "histogram", "untyped"}
_SAMPLE_SUFFIXES = ("_count", "_sum", "_bucket")


def validate_prometheus(text: str) -> list[str]:
    """Check text-format exposition structure; returns problem strings.

    Deliberately minimal: metric-name charset, label syntax, parseable
    values, every sample preceded by exactly one ``# TYPE`` declaration
    of its family, trailing newline.  Not a full openmetrics parser —
    just enough to guarantee a Prometheus scrape would not reject the
    export.
    """
    problems: list[str] = []
    if text and not text.endswith("\n"):
        problems.append("exposition must end with a newline")
    families: dict[str, str] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"line {number}: malformed TYPE: {line!r}")
                continue
            _, _, name, kind = parts
            if not re.fullmatch(_METRIC_NAME, name):
                problems.append(
                    f"line {number}: bad metric name {name!r}")
            if kind not in _TYPE_KINDS:
                problems.append(f"line {number}: bad kind {kind!r}")
            if name in families:
                problems.append(
                    f"line {number}: duplicate TYPE for {name!r}")
            families[name] = kind
            continue
        if line.startswith("#"):
            continue  # HELP and comments are free-form
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {number}: malformed sample: {line!r}")
            continue
        name = match.group(1)
        base = name
        for suffix in _SAMPLE_SUFFIXES:
            trimmed = name[: -len(suffix)] if name.endswith(suffix) else ""
            if trimmed and trimmed in families:
                base = trimmed
                break
        if base not in families:
            problems.append(
                f"line {number}: sample {name!r} has no TYPE declaration")
    return problems


# ---------------------------------------------------------------------------
# the Fig. 6 workload with an injectable delay
# ---------------------------------------------------------------------------
def make_env(latency: float):
    from conftest import fresh_env
    from repro.execution import encapsulation
    from repro.schema import standard as S

    env = fresh_env()

    def slow_tool(ctx, inputs):
        time.sleep(latency)
        return {t: {"made": t} for t in ctx.output_types}

    env.slow_extractor = env.install_tool(  # type: ignore[attr-defined]
        S.EXTRACTOR, None, name="slow")
    env.registry.register_for_instance(
        env.slow_extractor.instance_id,
        encapsulation("slow", slow_tool))
    return env


def build_branches(env):
    from repro.schema import standard as S

    flow = env.new_flow("fig6")
    for index in range(BRANCHES):
        layout = env.install_data(S.EDITED_LAYOUT, {"i": index})
        netlist = flow.place(S.EXTRACTED_NETLIST)
        flow.expand(netlist)
        unbound_layouts = [n for n in flow.graph.leaves()
                           if n.entity_type == S.LAYOUT
                           and not n.is_bound]
        flow.bind(unbound_layouts[0], layout.instance_id)
        unbound_tools = [n for n in flow.nodes()
                         if n.entity_type == S.EXTRACTOR
                         and not n.is_bound]
        flow.bind(unbound_tools[0], env.slow_extractor.instance_id)
    return flow


def run_once(ledger_path: pathlib.Path | None, latency: float,
             metrics=None) -> float:
    """One parallel Fig. 6 run; returns its wall time in seconds."""
    from repro.execution import MachinePool

    env = make_env(latency)
    if ledger_path is not None:
        env.attach_ledger(ledger_path)
    if metrics is not None:
        env.bus.subscribe(metrics)
    executor = env.parallel_executor(pool=MachinePool.local(BRANCHES))
    report = executor.execute(build_branches(env))
    return report.wall_time


def health_exit(root: pathlib.Path) -> int:
    """Exit code of the real ``repro health`` CLI against the ledger."""
    from repro.cli import main as repro_main

    return repro_main(["health", str(root / "ledger.jsonl")])


def measure_overhead() -> tuple[float, float, float]:
    """(without, with, fraction): best-of-N wall times and overhead."""
    with tempfile.TemporaryDirectory() as scratch:
        ledger_path = pathlib.Path(scratch) / "overhead.jsonl"
        bare = min(run_once(None, LATENCY)
                   for _ in range(OVERHEAD_ROUNDS))
        recorded = min(run_once(ledger_path, LATENCY)
                       for _ in range(OVERHEAD_ROUNDS))
    overhead = max(0.0, (recorded - bare) / bare) if bare else 0.0
    return bare, recorded, overhead


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--skip-overhead", action="store_true",
                        help="skip the timing-sensitive overhead bound")
    args = parser.parse_args(argv)

    from repro.obs import (MetricsRegistry, RunLedger,
                           render_prometheus_ledger)

    failures: list[str] = []
    metrics = MetricsRegistry()
    with tempfile.TemporaryDirectory() as scratch:
        root = pathlib.Path(scratch)
        ledger_path = root / "ledger.jsonl"

        for round_number in (1, 2):
            run_once(ledger_path, LATENCY, metrics)
        healthy = health_exit(root)
        print(f"healthy baseline: repro health exit {healthy}")
        if healthy != 0:
            failures.append(
                f"health must pass an unchanged re-run, exited {healthy}")

        # the injected regression: every tool invocation delayed
        run_once(ledger_path, LATENCY * SLOWDOWN, metrics)
        degraded = health_exit(root)
        print(f"after {SLOWDOWN:.0f}x slowdown: repro health exit "
              f"{degraded}")
        if degraded != 1:
            failures.append(
                f"health must flag a {SLOWDOWN:.0f}x tool slowdown, "
                f"exited {degraded}")

        records = RunLedger(ledger_path).records()
        if len(records) != 3:
            failures.append(
                f"expected 3 ledger records, found {len(records)}")
        ledger_text = render_prometheus_ledger(records)
        for problem in validate_prometheus(ledger_text):
            failures.append(f"ledger exposition: {problem}")
        registry_text = metrics.render_prometheus()
        if not registry_text:
            failures.append("metrics registry exported no families")
        for problem in validate_prometheus(registry_text):
            failures.append(f"registry exposition: {problem}")
        print(f"prometheus export: {len(ledger_text.splitlines())} "
              f"ledger lines, {len(registry_text.splitlines())} "
              "registry lines validated")

    if not args.skip_overhead:
        bare, recorded, overhead = measure_overhead()
        print(f"ledger overhead: {bare * 1e3:.1f}ms -> "
              f"{recorded * 1e3:.1f}ms (best of {OVERHEAD_ROUNDS}, "
              f"{overhead:.1%})")
        if overhead > OVERHEAD_BUDGET:
            failures.append(
                f"ledger writes cost {overhead:.1%} wall time "
                f"(budget {OVERHEAD_BUDGET:.0%})")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("health smoke check passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
