"""FIG-1: regenerate the example task schema of the paper's Fig. 1.

Artifact: the schema as an entity/dependency listing plus Graphviz DOT.
Benchmark: building and validating the schema from scratch (the cost a
methodology manager pays per schema edit — the *only* maintenance
artifact under the dynamic approach, see CLAIM-C).
"""

from repro.core.render import schema_to_dot
from repro.schema import standard as S
from repro.schema.standard import fig1_schema


def render_schema(schema) -> str:
    lines = [f"task schema {schema.name!r}: {len(schema)} entities, "
             f"{len(schema.dependencies())} dependencies", ""]
    lines.append("entities:")
    for entity in sorted(schema.entities(), key=lambda e: e.name):
        kind = "tool" if entity.is_tool else (
            "composed" if entity.composed else "data")
        parent = f" isa {entity.parent}" if entity.parent else ""
        lines.append(f"  {entity.name:<22} [{kind}]{parent}")
    lines.append("")
    lines.append("dependencies (f = functional, d = data, d? = optional):")
    for dep in schema.dependencies():
        lines.append(f"  {dep.source:<22} --{dep.arc_label():>2}:"
                     f"{dep.role}--> {dep.target}")
    lines.append("")
    lines.append(schema_to_dot(schema, "fig1"))
    return "\n".join(lines)


def test_bench_fig01_schema(benchmark, write_artifact):
    schema = benchmark(fig1_schema)

    # the figure's structural facts
    assert schema.functional_dependency(S.PERFORMANCE).target == \
        S.SIMULATOR
    assert set(schema.subtypes_of(S.NETLIST)) == {S.EXTRACTED_NETLIST,
                                                  S.EDITED_NETLIST}
    assert schema.entity(S.CIRCUIT).composed
    method = schema.construction(S.EDITED_NETLIST)
    assert [d.role for d in method.optional_inputs] == ["previous"]
    assert set(schema.outputs_of_tool(S.EXTRACTOR)) == {
        S.EXTRACTED_NETLIST, S.EXTRACTION_STATISTICS}

    write_artifact("fig01_schema", render_schema(schema))
