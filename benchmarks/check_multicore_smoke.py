"""CI gate: the procpool executor must be fast AND change nothing.

Three parts, all mandatory:

1. **CLI equivalence** — drives the real ``repro run`` CLI over a
   saved Fig. 6 parallel flow with ``--executor procpool --workers 2``
   and over a second, identical project sequentially.  The procpool
   run must exit 0, produce every branch, record ``procpool`` in the
   ledger, leave the shared memo behind, and leave a history whose
   (entity type, content digest) multiset is byte-identical to the
   sequential run — multi-core execution must never change what gets
   designed.

2. **Worker telemetry** — the traced procpool run must merge cleanly:
   the trace validates with no orphans, every tool span carries
   worker-side phase children (decode/verify/tool_body/encode), one
   lane span exists per worker, ``repro trace timeline`` renders the
   trace, the ledger record carries per-worker stats, and — after a
   second ``--force`` run builds a baseline — the
   ``worker-utilization`` health check reports on the smoke ledger
   without failing.

3. **Parallelism efficiency** — re-times the ``scale_pipeline``
   scenario from ``bench_multicore.py`` at 1 and 2 workers and gates
   the 2-worker efficiency (speedup / workers) against
   ``max(EFFICIENCY_FLOOR, 0.8 * checked-in baseline)`` from
   ``BENCH_multicore.json``, i.e. a hard floor plus a 20% regression
   tolerance.  Ratios, not wall seconds, so the gate is
   machine-independent.

Raw timings, the procpool run's ledger and its trace are copied into
``benchmarks/artifacts/`` for upload on CI failure.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from bench_multicore import run_scenario  # noqa: E402
from check_chaos_smoke import (build_project,  # noqa: E402
                               history_signature, netlist_count)

REPO = pathlib.Path(__file__).resolve().parent.parent
BENCH = REPO / "BENCH_multicore.json"
ARTIFACTS = REPO / "benchmarks" / "artifacts"

BRANCHES = 4
WORKERS = 2
EFFICIENCY_FLOOR = 0.6
REGRESSION_TOLERANCE = 0.8  # keep at least 80% of the recorded baseline


def run_cli(directory: pathlib.Path, *extra: str) -> int:
    from repro.cli import main as repro_main

    return repro_main(["run", str(directory), "fig6", *extra])


def last_record(directory: pathlib.Path):
    from repro.obs import RunLedger

    return RunLedger(directory / "ledger.jsonl").records()[-1]


def check_worker_telemetry(pooled: pathlib.Path,
                           failures: list[str]) -> None:
    """Gate the PR 8 surface: merged spans, timeline, health check."""
    from repro.cli import main as repro_main
    from repro.obs import (PHASE_SPAN, TOOL_SPAN, WAVE_SPAN,
                           HealthThresholds, RunLedger, evaluate_health,
                           read_spans, validate_spans)

    spans = list(read_spans(pooled / "trace.jsonl", strict=False))
    problems = validate_spans(spans)
    if problems:
        failures.append(
            f"merged procpool trace must validate, got {problems}")
    lanes = {s.value("machine") for s in spans
             if s.kind == WAVE_SPAN and s.name.startswith("lane:")}
    print(f"  trace: {len(spans)} spans, {len(lanes)} worker lanes")
    if len(lanes) != WORKERS:
        failures.append(
            f"expected {WORKERS} worker lane spans, got "
            f"{sorted(lanes)}")
    tools = [s for s in spans if s.kind == TOOL_SPAN]
    phases = [s for s in spans if s.kind == PHASE_SPAN]
    if len(tools) != BRANCHES:
        failures.append(
            f"expected {BRANCHES} tool spans, got {len(tools)}")
    orphans = [p.name for p in phases
               if p.parent_id not in {t.span_id for t in tools}]
    if orphans:
        failures.append(
            f"phase spans must parent on tool spans, orphaned: "
            f"{orphans}")
    for tool in tools:
        names = {p.value("phase") for p in phases
                 if p.parent_id == tool.span_id}
        if "tool_body" not in names:
            failures.append(
                f"tool span {tool.name} has no worker-side "
                f"tool_body phase (got {sorted(names)})")
    code = repro_main(["trace", "timeline", str(pooled)])
    if code != 0:
        failures.append(
            f"'repro trace timeline' must exit 0, got {code}")

    # a second (forced) run gives the health check a same-executor
    # baseline; --force keeps it from coalescing into pure cache hits
    code = run_cli(pooled, "--executor", "procpool",
                   "--workers", str(WORKERS), "--cache", "readwrite",
                   "--trace", "--force")
    if code != 0:
        failures.append(
            f"forced second procpool run must exit 0, got {code}")
    records = RunLedger(pooled / "ledger.jsonl").records()
    if not records[-1].workers:
        failures.append(
            "procpool ledger records must carry per-worker stats")
    report = evaluate_health(
        records, thresholds=HealthThresholds(min_samples=1))
    verdicts = {check.name: check.verdict for check in report.checks}
    print(f"  health: worker-utilization="
          f"{verdicts.get('worker-utilization')} "
          f"exit={report.exit_code}")
    if "worker-utilization" not in verdicts:
        failures.append(
            "health report must include the worker-utilization check")
    if report.exit_code != 0:
        failures.append(
            f"smoke-ledger health must pass, got exit "
            f"{report.exit_code}: {verdicts}")
    shutil.copy(pooled / "trace.jsonl",
                ARTIFACTS / "multicore_smoke_trace.jsonl")


def baseline_efficiency() -> float | None:
    """2-worker scale_pipeline efficiency from the checked-in bench."""
    if not BENCH.exists():
        return None
    entries = json.loads(BENCH.read_text(encoding="utf-8"))["entries"]
    if not entries:
        return None
    results = entries[-1]["results"]
    return results["scale_pipeline"]["efficiency"][str(WORKERS)]


def main() -> int:
    failures: list[str] = []
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory() as scratch:
        root = pathlib.Path(scratch)

        # 1a. the procpool CLI path runs the whole flow
        pooled = root / "pooled"
        build_project(pooled)
        code = run_cli(pooled, "--executor", "procpool",
                       "--workers", str(WORKERS),
                       "--cache", "readwrite", "--trace")
        print(f"procpool --workers {WORKERS}: exit {code}")
        if code != 0:
            failures.append(f"procpool run must exit 0, got {code}")
        if netlist_count(pooled) != BRANCHES:
            failures.append(
                f"all {BRANCHES} branches must produce, got "
                f"{netlist_count(pooled)}")
        record = last_record(pooled)
        print(f"  ledger: executor={record.executor} "
              f"runs={record.runs}")
        if record.executor != "procpool":
            failures.append(
                f"ledger must record executor 'procpool', got "
                f"{record.executor!r}")
        if not (pooled / "memo.jsonl").exists():
            failures.append(
                "a caching procpool run over a saved project must "
                "leave the shared derivation memo behind")
        # 1b. byte-identical history vs the sequential executor
        sequential = root / "sequential"
        build_project(sequential)
        code = run_cli(sequential)
        if code != 0:
            failures.append(f"sequential reference exited {code}")
        if history_signature(pooled) != history_signature(sequential):
            failures.append(
                "procpool history digests differ from the sequential "
                "executor")
        else:
            print("  history content-identical to sequential run")

        # 2. the traced run's worker telemetry must merge cleanly
        # (after 1b: this re-runs the flow with --force, which grows
        # the pooled history past the sequential reference)
        check_worker_telemetry(pooled, failures)
        shutil.copy(pooled / "ledger.jsonl",
                    ARTIFACTS / "multicore_smoke_ledger.jsonl")

    # 3. efficiency gate vs the checked-in trajectory
    outcome = run_scenario("scale_pipeline", sweep=(1, WORKERS),
                           repeats=2)
    raw = outcome.pop("raw")
    (ARTIFACTS / "multicore_smoke_raw.json").write_text(
        json.dumps({"raw": raw, "results": outcome}, indent=1,
                   sort_keys=True) + "\n", encoding="utf-8")
    if not outcome["digest_sequential_equal"]:
        failures.append(
            "scale_pipeline procpool digests diverged from sequential")
    efficiency = outcome["efficiency"][str(WORKERS)]
    baseline = baseline_efficiency()
    required = EFFICIENCY_FLOOR
    if baseline is not None:
        required = max(required, REGRESSION_TOLERANCE * baseline)
    print(f"scale_pipeline efficiency at {WORKERS} workers: "
          f"{efficiency:.2f} (required >= {required:.2f}, "
          f"baseline {baseline})")
    if efficiency < required:
        failures.append(
            f"parallelism efficiency {efficiency:.2f} fell below "
            f"{required:.2f} (floor {EFFICIENCY_FLOOR}, baseline "
            f"{baseline} with 20% tolerance)")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("multicore smoke check passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
