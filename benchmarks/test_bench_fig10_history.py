"""FIG-10: browsing the design history.

Replays the figure: a Performance icon in a fresh task window reveals,
via the *History* pop-up operation, the Simulator and Circuit/Stimuli
instances used to create it.  Benchmarks the backward-chaining query on
a history of growing depth (the cost of the History click).
"""

from repro.history import backward_trace
from repro.history.instance import DerivationRecord
from repro.schema import standard as S
from repro.ui import TaskWindow

from conftest import build_simulation_flow, fresh_env, stocked  # noqa: F401

DEPTHS = (4, 16, 64)


def deep_history(env, depth: int) -> str:
    """An edit chain of the given depth ending in one instance."""
    editor = env.db.install(S.CIRCUIT_EDITOR, {}, name="ed")
    current = env.db.install(S.EDITED_NETLIST, {"v": 0}, name="v0")
    for version in range(depth):
        current = env.db.record(
            S.EDITED_NETLIST, {"v": version + 1},
            DerivationRecord.make(editor.instance_id,
                                  {"previous": current.instance_id}),
            name=f"v{version + 1}")
    return current.instance_id


def test_bench_fig10_history_popup(benchmark, write_artifact, stocked):
    env = stocked
    flow, goal = build_simulation_flow(env)
    env.run(flow)
    perf_id = goal.produced[0]

    def reveal():
        window = TaskWindow(env)
        node = window.place_data(perf_id)
        revealed = window.history(node)
        return window, revealed

    window, revealed = benchmark(reveal)
    assert {n.entity_type for n in revealed} == {S.SIMULATOR, S.CIRCUIT,
                                                 S.STIMULI}
    write_artifact(
        "fig10_history",
        "FIG-10: the History operation reveals creating instances\n"
        "(the Simulator and inputs 'do not appear until after History "
        "is chosen')\n\n" + window.render()
        + "\n\nfull derivation trace:\n"
        + backward_trace(env.db, perf_id).render())


def test_bench_fig10_chain_depth_scaling(benchmark, write_artifact):
    """Backward chaining cost vs. derivation depth."""
    import time

    env = fresh_env()
    rows = ["backward-chaining query cost vs. history depth",
            f"{'depth':>6} {'trace size':>11} {'time us':>9}"]
    tips = {}
    for depth in DEPTHS:
        tips[depth] = deep_history(env, depth)
    for depth in DEPTHS:
        started = time.perf_counter()
        trace = backward_trace(env.db, tips[depth])
        elapsed = (time.perf_counter() - started) * 1e6
        rows.append(f"{depth:>6} {len(trace):>11} {elapsed:>9.1f}")
        assert len(trace) == depth + 2  # versions + v0 + editor

    benchmark(backward_trace, env.db, tips[DEPTHS[-1]])
    write_artifact("fig10_depth_scaling", "\n".join(rows))
