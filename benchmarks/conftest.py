"""Shared fixtures for the figure/claim benchmarks.

Every benchmark regenerates its paper artifact (figure structure or
claim table) into ``benchmarks/artifacts/<name>.txt`` in addition to the
pytest-benchmark timing, so the reproduction outputs survive the run.
"""

from __future__ import annotations

import itertools
import pathlib

import pytest

from repro import DesignEnvironment
from repro.history.sqlite_store import SqliteHistoryStore
from repro.history.synth import SHAPES, SynthHistory, build_history
from repro.schema import standard as S
from repro.schema.standard import odyssey_schema
from repro.tools import (default_models, exhaustive,
                         install_standard_tools, tech_map)
from repro.tools.logic import LogicSpec

ARTIFACTS = pathlib.Path(__file__).parent / "artifacts"


class TickClock:
    def __init__(self, start: float = 1_000_000.0) -> None:
        self._ticks = itertools.count()
        self._start = start

    def __call__(self) -> float:
        return self._start + next(self._ticks)


@pytest.fixture
def write_artifact():
    """Write (and echo) one benchmark's regenerated artifact."""

    def writer(name: str, text: str) -> pathlib.Path:
        ARTIFACTS.mkdir(exist_ok=True)
        path = ARTIFACTS / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return path

    return writer


def fresh_env(user: str = "bench") -> DesignEnvironment:
    env = DesignEnvironment(odyssey_schema(), user=user,
                            clock=TickClock())
    env.tools = install_standard_tools(env)  # type: ignore[attr-defined]
    return env


@pytest.fixture
def env() -> DesignEnvironment:
    return fresh_env()


@pytest.fixture
def stocked():
    """Environment with a mux design's source data installed."""
    env = fresh_env()
    spec = LogicSpec.from_equations("mux", "y = (a & ~s) | (b & s)")
    env.spec = spec  # type: ignore[attr-defined]
    env.models = env.install_data(  # type: ignore[attr-defined]
        S.DEVICE_MODELS, default_models(), name="tech")
    env.stimuli = env.install_data(  # type: ignore[attr-defined]
        S.STIMULI, exhaustive(("a", "b", "s"), name="all3"), name="all3")
    env.netlist = env.install_data(  # type: ignore[attr-defined]
        S.EDITED_NETLIST, tech_map(spec), name="mux-gates")
    return env


def synth_pair(size: int, shape: str, seed: int,
               tmp_path: pathlib.Path
               ) -> tuple[SynthHistory, SynthHistory]:
    """The same seeded synthetic history on both storage backends.

    Both builds replay one deterministic workload, so instance ids,
    derivations and timestamps match exactly — the cross-backend
    benchmarks and property tests compare their query results verbatim.
    """
    in_memory = build_history(size, shape, seed=seed)
    sqlite = build_history(
        size, shape, seed=seed,
        store=SqliteHistoryStore(tmp_path / f"synth-{shape}.sqlite"))
    return in_memory, sqlite


@pytest.fixture(params=SHAPES)
def synth_histories(request, tmp_path):
    """Per-shape (in-memory, sqlite) history pair of a modest size."""
    pair = synth_pair(400, request.param, seed=11, tmp_path=tmp_path)
    yield pair
    pair[1].db.store.close()


def build_simulation_flow(env, *, netlist_id=None, stimuli_id=None):
    """The canonical simulate-performance flow over the stocked env."""
    flow, goal = env.goal_flow(S.PERFORMANCE, "simulate")
    flow.expand(goal)
    flow.expand(flow.sole_node_of_type(S.CIRCUIT))
    flow.bind(flow.sole_node_of_type(S.NETLIST),
              netlist_id or env.netlist.instance_id)
    flow.bind(flow.sole_node_of_type(S.DEVICE_MODELS),
              env.models.instance_id)
    flow.bind(flow.sole_node_of_type(S.STIMULI),
              stimuli_id or env.stimuli.instance_id)
    flow.bind(flow.sole_node_of_type(S.SIMULATOR),
              env.tools[S.SIMULATOR].instance_id)
    return flow, goal
