"""Ablations for the design decisions called out in DESIGN.md §5.

1. subtask coalescing (decision 1): multi-output invocations run the
   tool once; the ablated flow gives each output its own tool node and
   pays per-output runs;
2. content-addressed data sharing (decision 5): identical payloads are
   stored once across versions (paper footnote 5), vs a naive store
   keeping one blob per instance;
3. invocation-level scheduling (extension): within one connected flow,
   branch-level parallelism (the paper's Fig. 6 granularity) cannot
   overlap anything; the scheduler can.
"""

import time

from repro.execution import (MachinePool, ParallelFlowExecutor,
                             ScheduledFlowExecutor, encapsulation)
from repro.history.datastore import DataStore
from repro.schema import standard as S

from conftest import fresh_env

EXTRACT_LATENCY = 0.02


def _slow_extractor(env):
    def fn(ctx, inputs):
        time.sleep(EXTRACT_LATENCY)
        return {t: {"made": t} for t in ctx.output_types}

    instance = env.db.install(S.EXTRACTOR, {}, name="slowx")
    env.registry.register_for_instance(instance.instance_id,
                                       encapsulation("slowx", fn))
    return instance


def coalesced_flow(env, extractor, layout):
    flow = env.new_flow("coalesced")
    tool = flow.graph.add_node(S.EXTRACTOR)
    tool.bind(extractor.instance_id)
    layout_node = flow.graph.add_node(S.LAYOUT)
    layout_node.bind(layout.instance_id)
    for output_type in (S.EXTRACTED_NETLIST, S.EXTRACTION_STATISTICS):
        output = flow.graph.add_node(output_type)
        flow.connect(output, tool)
        flow.connect(output, layout_node, role="layout")
    return flow


def uncoalesced_flow(env, extractor, layout):
    """Each output gets its own tool node: no sharing, no coalescing."""
    flow = env.new_flow("uncoalesced")
    layout_node = flow.graph.add_node(S.LAYOUT)
    layout_node.bind(layout.instance_id)
    for output_type in (S.EXTRACTED_NETLIST, S.EXTRACTION_STATISTICS):
        tool = flow.graph.add_node(S.EXTRACTOR)
        tool.bind(extractor.instance_id)
        output = flow.graph.add_node(output_type)
        flow.connect(output, tool)
        flow.connect(output, layout_node, role="layout")
    return flow


def test_bench_ablation_coalescing(benchmark, write_artifact):
    env = fresh_env()
    extractor = _slow_extractor(env)
    layout = env.install_data(S.EDITED_LAYOUT, {"l": 1})

    def run(builder):
        flow = builder(env, extractor, layout)
        started = time.perf_counter()
        report = env.run(flow, force=True)
        return report, time.perf_counter() - started

    coalesced_report, coalesced_time = run(coalesced_flow)
    uncoalesced_report, uncoalesced_time = run(uncoalesced_flow)
    assert coalesced_report.runs == 1
    assert uncoalesced_report.runs == 2
    assert len(coalesced_report.created) == \
        len(uncoalesced_report.created) == 2

    benchmark.pedantic(lambda: run(coalesced_flow), rounds=3,
                       iterations=1)
    write_artifact("ablation_coalescing", "\n".join([
        "ABLATION 1: subtask coalescing (DESIGN.md decision 1)",
        f"coalesced:   {coalesced_report.runs} tool run, "
        f"{coalesced_time * 1e3:6.1f} ms",
        f"uncoalesced: {uncoalesced_report.runs} tool runs, "
        f"{uncoalesced_time * 1e3:6.1f} ms",
        f"saving: {uncoalesced_time / coalesced_time:.2f}x for a "
        "2-output extractor",
    ]))


def test_bench_ablation_content_addressing(benchmark, write_artifact):
    """Footnote 5: versions share physical data."""
    identical_payload = {"rcs": "file-contents", "big": list(range(64))}
    versions = 50

    def shared_store():
        store = DataStore()
        refs = [store.put(dict(identical_payload))
                for _ in range(versions)]
        return store, refs

    store, refs = benchmark(shared_store)
    assert len(set(refs)) == 1
    assert len(store) == 1

    naive_blobs = versions  # one blob per instance without sharing
    write_artifact("ablation_content_addressing", "\n".join([
        "ABLATION 2: content-addressed data sharing "
        "(paper footnote 5)",
        f"{versions} instances with identical physical data:",
        f"  content-addressed store: {len(store)} blob",
        f"  naive per-instance store: {naive_blobs} blobs",
        f"  storage ratio: {naive_blobs / len(store):.0f}x",
    ]))


def test_bench_ablation_scheduler_vs_branches(benchmark, write_artifact):
    """One connected diamond: branch-parallelism 1x, scheduler ~1.3x+."""
    from repro import DesignEnvironment
    from repro.schema.standard import odyssey_schema
    from tests.test_extensions import diamond_flow

    def plain_env():
        # plain environment: the diamond uses synthetic dict payloads,
        # so the standard Circuit composition check must stay default
        return DesignEnvironment(odyssey_schema(), user="bench")

    def run_branch_level():
        env = plain_env()
        flow = diamond_flow(env, latency=EXTRACT_LATENCY)
        executor = ParallelFlowExecutor(env.db, env.registry,
                                        pool=MachinePool.local(2))
        started = time.perf_counter()
        executor.execute(flow)
        return time.perf_counter() - started, flow

    def run_scheduled():
        env = plain_env()
        flow = diamond_flow(env, latency=EXTRACT_LATENCY)
        executor = ScheduledFlowExecutor(env.db, env.registry,
                                         pool=MachinePool.local(2))
        started = time.perf_counter()
        executor.execute(flow)
        return time.perf_counter() - started, flow

    branch_time, flow = run_branch_level()
    scheduled_time, _ = run_scheduled()
    assert len(flow.graph.disjoint_branches()) == 1  # one component!
    assert scheduled_time < branch_time

    benchmark.pedantic(lambda: run_scheduled(), rounds=3, iterations=1)
    write_artifact("ablation_scheduler", "\n".join([
        "ABLATION 3: invocation-level scheduling vs Fig. 6 "
        "branch-level parallelism",
        "flow: one connected diamond (extract -> {verify, "
        "compose->simulate}), 2 machines",
        f"  branch-level (paper granularity): "
        f"{branch_time * 1e3:6.1f} ms (single branch: no overlap)",
        f"  invocation-level scheduler:       "
        f"{scheduled_time * 1e3:6.1f} ms",
        f"  speedup from finer granularity:   "
        f"{branch_time / scheduled_time:.2f}x",
    ]))
