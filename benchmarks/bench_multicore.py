#!/usr/bin/env python
"""Multi-core wall-time trajectory for the procpool executor.

Measures two scenarios end to end under ``ProcessFlowExecutor`` with
1, 2 and 4 worker processes:

* **fig06** — the paper's Fig. 6 shape: four independent
  layout -> extraction branches, one tool invocation each;
* **scale_pipeline** — eight independent four-stage pipelines
  (32 invocations, dependency chains limiting per-chain parallelism).

Tool bodies are deterministic ``time.sleep`` calls modelling external
CAD-tool latency, so real speedup is observable even on a single-core
CI runner (the paper's tools are external processes the framework
*waits on*; a worker process sleeping frees the others to dispatch).
Every sweep also runs the sequential executor first and asserts the
procpool history digests are byte-identical — speed never changes
what gets designed.

Modes::

    PYTHONPATH=src python benchmarks/bench_multicore.py           # check
    PYTHONPATH=src python benchmarks/bench_multicore.py --update  # record

``--update`` appends one entry to ``BENCH_multicore.json`` (the
longitudinal trajectory, one entry per PR touching the executor);
both modes write raw timings to
``benchmarks/artifacts/bench_multicore_raw.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.execution import (DesignEnvironment,            # noqa: E402
                             encapsulation)
from repro.schema.builder import SchemaBuilder             # noqa: E402

DEFAULT_BENCH = REPO / "BENCH_multicore.json"
DEFAULT_RAW = REPO / "benchmarks" / "artifacts" / \
    "bench_multicore_raw.json"
WORKER_SWEEP = (1, 2, 4)
REPEATS = 3

FIG06_BRANCHES = 4
FIG06_SLEEP = 0.05
PIPELINE_CHAINS = 8
PIPELINE_STAGES = 4
PIPELINE_SLEEP = 0.025


def _sleepy(name: str, delay: float):
    def tool(ctx, inputs):
        time.sleep(delay)
        payload = inputs["src"]
        return {"n": payload["n"] + 1, "via": name}
    return encapsulation(name, tool)


def _chain_schema(stages: int) -> "SchemaBuilder":
    builder = SchemaBuilder(f"chains{stages}")
    builder.data("Data0")
    for stage in range(1, stages + 1):
        builder.tool(f"Tool{stage}")
        builder.data(f"Data{stage}")
        builder.produced_by(f"Data{stage}", f"Tool{stage}",
                            inputs=[("src", f"Data{stage - 1}")])
    return builder


def build_scenario(chains: int, stages: int, delay: float):
    """Environment + flow: ``chains`` independent ``stages``-deep runs."""
    env = DesignEnvironment(_chain_schema(stages).build(), user="bench")
    tools = {}
    for stage in range(1, stages + 1):
        tools[stage] = env.install_tool(
            f"Tool{stage}", _sleepy(f"sleepy{stage}", delay),
            name=f"t{stage}")
    flow = env.new_flow("bench")
    for chain in range(chains):
        source = env.install_data("Data0", {"n": chain * 1000},
                                  name=f"src{chain}")
        previous = flow.place("Data0", label=f"src{chain}")
        flow.bind(previous, source.instance_id)
        for stage in range(1, stages + 1):
            out = flow.place(f"Data{stage}",
                             label=f"d{stage}c{chain}")
            tool_node = flow.place(f"Tool{stage}",
                                   label=f"t{stage}c{chain}")
            flow.bind(tool_node, tools[stage].instance_id)
            flow.connect(out, tool_node)
            flow.connect(out, previous, role="src")
            previous = out
    return env, flow


SCENARIOS = {
    "fig06": (FIG06_BRANCHES, 1, FIG06_SLEEP),
    "scale_pipeline": (PIPELINE_CHAINS, PIPELINE_STAGES,
                       PIPELINE_SLEEP),
}


def history_digest(env: DesignEnvironment):
    return sorted((inst.entity_type, inst.data_ref)
                  for inst in env.db.instances())


def run_scenario(name: str, *, sweep=WORKER_SWEEP, repeats=REPEATS):
    """Time one scenario across the worker sweep.

    Returns ``{"invocations", "digest_sequential_equal",
    "digest_workers_equal", "walls": {workers: best-of-N seconds},
    "speedups", "efficiency", "raw": [...]}``.
    """
    chains, stages, delay = SCENARIOS[name]
    sequential_env, sequential_flow = build_scenario(chains, stages,
                                                     delay)
    sequential_env.run(sequential_flow)
    reference = history_digest(sequential_env)

    walls: dict[int, float] = {}
    raw: list[dict] = []
    digests_equal = True
    invocations = chains * stages
    for workers in sweep:
        best = float("inf")
        for repeat in range(repeats):
            env, flow = build_scenario(chains, stages, delay)
            executor = env.process_executor(workers=workers)
            started = time.perf_counter()
            report = executor.execute(flow)
            wall = time.perf_counter() - started
            assert len(report.results) == invocations
            digests_equal &= history_digest(env) == reference
            raw.append({"scenario": name, "workers": workers,
                        "repeat": repeat, "wall_s": wall})
            best = min(best, wall)
        walls[workers] = best
    base = walls[sweep[0]]
    speedups = {workers: base / wall
                for workers, wall in walls.items()}
    return {
        "invocations": invocations,
        "digest_sequential_equal": digests_equal,
        "walls": {str(w): round(v, 6) for w, v in walls.items()},
        "speedups": {str(w): round(v, 4)
                     for w, v in speedups.items()},
        "efficiency": {str(w): round(v / w, 4)
                       for w, v in speedups.items()},
        "raw": raw,
    }


def load_trajectory(path: pathlib.Path) -> dict:
    if path.exists():
        return json.loads(path.read_text(encoding="utf-8"))
    return {"version": 1, "entries": []}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="append an entry to BENCH_multicore.json")
    parser.add_argument("--label", default="local",
                        help="entry label (e.g. pr7-procpool)")
    parser.add_argument("--bench", type=pathlib.Path,
                        default=DEFAULT_BENCH)
    parser.add_argument("--raw", type=pathlib.Path, default=DEFAULT_RAW)
    args = parser.parse_args(argv)

    results = {}
    raw: list[dict] = []
    failures: list[str] = []
    for name in SCENARIOS:
        outcome = run_scenario(name)
        raw.extend(outcome.pop("raw"))
        results[name] = outcome
        print(f"{name}: {outcome['invocations']} invocations")
        for workers in WORKER_SWEEP:
            key = str(workers)
            print(f"  workers={workers}: "
                  f"wall={outcome['walls'][key]:.3f}s "
                  f"speedup={outcome['speedups'][key]:.2f}x "
                  f"efficiency={outcome['efficiency'][key]:.2f}")
        if not outcome["digest_sequential_equal"]:
            failures.append(
                f"{name}: procpool history digests diverged from the "
                "sequential executor")

    # the acceptance floor: 4 workers at least 2x over 1 worker on the
    # pipeline scenario
    pipeline_speedup = results["scale_pipeline"]["speedups"]["4"]
    if pipeline_speedup < 2.0:
        failures.append(
            f"scale_pipeline speedup at 4 workers is "
            f"{pipeline_speedup:.2f}x, need >= 2x")

    args.raw.parent.mkdir(parents=True, exist_ok=True)
    args.raw.write_text(
        json.dumps({"raw": raw, "results": results}, indent=1,
                   sort_keys=True) + "\n", encoding="utf-8")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    if args.update:
        trajectory = load_trajectory(args.bench)
        trajectory["entries"].append({"label": args.label,
                                      "results": results})
        args.bench.write_text(
            json.dumps(trajectory, indent=1, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"recorded entry {args.label!r} to {args.bench}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
