"""FIG-11: version trees vs. flow traces.

Regenerates the figure's c1..c5 branching edit scenario and shows both
representations: (a) the traditional version tree, (b) the Hercules flow
trace — a semantically richer superset that also records which editor
session created each version.  Benchmarks the projection trace -> tree.
"""

from repro.baselines import version_tree_from_trace
from repro.history import forward_trace
from repro.history.instance import DerivationRecord
from repro.schema import standard as S

from conftest import fresh_env


def build_fig11_history(env):
    """c1 -> c2 -> c4 (session e1) and c1 -> c3 -> c5 (session e2)."""
    e1 = env.db.install(S.CIRCUIT_EDITOR, {"s": 1}, name="Cct E. e1")
    e2 = env.db.install(S.CIRCUIT_EDITOR, {"s": 2}, name="Cct E. e2")
    c1 = env.db.install(S.EDITED_NETLIST, {"v": 1}, name="c1")

    def edit(editor, previous, name, version):
        return env.db.record(
            S.EDITED_NETLIST, {"v": version},
            DerivationRecord.make(editor.instance_id,
                                  {"previous": previous.instance_id}),
            name=name)

    c2 = edit(e1, c1, "c2", 2)
    c3 = edit(e2, c1, "c3", 3)
    edit(e1, c2, "c4", 4)
    edit(e2, c3, "c5", 5)
    return c1, (e1, e2)


def test_bench_fig11_versioning(benchmark, write_artifact):
    env = fresh_env()
    c1, editors = build_fig11_history(env)
    trace = forward_trace(env.db, c1.instance_id)

    labels = {i: env.db.get(i).name for i in trace.instances()}

    def project():
        return version_tree_from_trace(
            S.NETLIST, trace.version_tree(S.NETLIST), labels)

    tree = benchmark(project)

    assert len(tree.versions()) == 5
    assert tree.branch_count() == 1   # c1 branches into c2 and c3
    # the classical tree lost the editing tools; the trace kept them
    assert all(e.instance_id in trace for e in editors)
    rendered_tree = tree.render()
    for label in ("c1", "c2", "c3", "c4", "c5"):
        assert label in rendered_tree

    text = [
        "FIG-11: two representations of a branching version history",
        "",
        "(a) traditional version tree (tools lost):",
        rendered_tree,
        "",
        "(b) flow trace (richer superset: editing sessions recorded):",
        trace.render(),
    ]
    write_artifact("fig11_versioning", "\n".join(text))
