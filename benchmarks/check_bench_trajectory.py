#!/usr/bin/env python
"""Per-PR history-storage performance trajectory.

Measures, for each history size (10^3/10^4/10^5 instances by default)
and each storage backend (``json``/``sqlite``):

* **insert throughput** — instances recorded per second through the
  full ``HistoryDatabase.record`` write path;
* **backward/forward-trace latency** — *cold-open* cost: open the
  persisted history and run one trace, the way a fresh ``repro
  history`` invocation pays it.  The JSON backend must parse the whole
  file first; the indexed backend touches only the rows on the trace
  path;
* **staleness-scan latency** — cold open plus ``stale_inputs`` over a
  sample of segment heads.

Two modes:

* ``--record`` appends one entry to ``BENCH_history.json`` (never
  overwrites earlier entries — the file is the repo's longitudinal
  perf trajectory, one entry per PR that touches the storage layer);
* default (check) re-measures and compares against the **last**
  recorded entry, failing on a >20% regression.  The gate compares
  json/sqlite *speedup ratios*, not absolute times: ratios divide out
  the machine, so a slow CI runner doesn't read as a regression and a
  fast one doesn't hide it.

Both modes enforce the architectural floor: cold backward traces at
the largest size must be at least ``--min-speedup`` (10x) faster on
the indexed backend, and both write every raw timing to
``benchmarks/artifacts/bench_trajectory_raw.json`` for upload as a CI
artifact.

Run from the repository root::

    PYTHONPATH=src python benchmarks/check_bench_trajectory.py
    PYTHONPATH=src python benchmarks/check_bench_trajectory.py \
        --record --label pr7-my-change
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.history.consistency import stale_inputs          # noqa: E402
from repro.history.database import (HistoryDatabase,        # noqa: E402
                                    read_history_json)
from repro.history.sqlite_store import SqliteHistoryStore   # noqa: E402
from repro.history.synth import (SynthHistory,              # noqa: E402
                                 build_history, synth_schema)
from repro.history.trace import (backward_trace,            # noqa: E402
                                 forward_trace)

DEFAULT_SIZES = (1_000, 10_000, 100_000)
DEFAULT_HISTORY = REPO / "BENCH_history.json"
DEFAULT_RAW = REPO / "benchmarks" / "artifacts" / \
    "bench_trajectory_raw.json"
QUERY_METRICS = ("backward_trace_s", "forward_trace_s", "stale_scan_s")
STALE_SAMPLE = 10

#: Ratios are only gated when both of the baseline's underlying
#: measurements took at least this long: a ratio whose denominator is
#: a 2ms cold open swings 30% from page-cache luck alone, which is
#: jitter, not regression.  Sub-threshold metrics are still recorded,
#: and the fast-query metrics stay protected by the --min-speedup
#: floor (an indexed trace that degrades to a full scan crashes the
#: largest-size speedup far below 10x regardless of machine).
MIN_GATE_SECONDS = 0.1


def _open_json(path: pathlib.Path) -> HistoryDatabase:
    return HistoryDatabase.from_dict(synth_schema(),
                                     read_history_json(str(path)))


def _open_sqlite(path: pathlib.Path) -> HistoryDatabase:
    return HistoryDatabase(synth_schema(),
                           store=SqliteHistoryStore(path))


def _close(db: HistoryDatabase) -> None:
    if isinstance(db.store, SqliteHistoryStore):
        db.store.close()


def _cold(opener, path, query, reps: int) -> tuple[float, list[float]]:
    """Min-of-reps cold time for open+query; returns (best, all)."""
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        db = opener(path)
        query(db)
        times.append(time.perf_counter() - start)
        _close(db)
    return min(times), times


def measure_size(size: int, shape: str, seed: int, workdir: pathlib.Path,
                 raw: dict) -> dict:
    """All metrics for one history size; appends raw timings to raw."""
    results: dict[str, dict[str, float]] = {}
    raw_size = raw.setdefault(str(size), {})

    start = time.perf_counter()
    mem = build_history(size, shape, seed=seed)
    t_insert_json = time.perf_counter() - start
    json_path = workdir / f"h{size}.json"
    mem.db.save(str(json_path))

    sqlite_path = workdir / f"h{size}.sqlite"
    start = time.perf_counter()
    sq = build_history(size, shape, seed=seed,
                       store=SqliteHistoryStore(sqlite_path))
    t_insert_sqlite = time.perf_counter() - start
    sq.db.store.close()
    results["insert_per_sec"] = {
        "json": size / t_insert_json,
        "sqlite": size / t_insert_sqlite,
    }
    raw_size["insert_s"] = {"json": [t_insert_json],
                            "sqlite": [t_insert_sqlite]}

    handles: SynthHistory = mem
    head = handles.heads[len(handles.heads) // 2]
    source = handles.sources[len(handles.sources) // 2]
    sample = handles.heads[:STALE_SAMPLE]
    del mem, sq  # drop in-memory copies before timing cold opens

    queries = {
        "backward_trace_s":
            lambda db: backward_trace(db, head).instances(),
        "forward_trace_s":
            lambda db: forward_trace(db, source).instances(),
        "stale_scan_s":
            lambda db: [stale_inputs(db, h) for h in sample],
    }
    backends = {
        "json": (_open_json, json_path, 1 if size >= 100_000 else 3),
        "sqlite": (_open_sqlite, sqlite_path, 5),
    }
    for metric, query in queries.items():
        results[metric] = {}
        raw_size[metric] = {}
        for backend, (opener, path, reps) in backends.items():
            best, times = _cold(opener, path, query, reps)
            results[metric][backend] = best
            raw_size[metric][backend] = times
    return results


def speedups(results: dict) -> dict[str, float]:
    """Machine-normalized ratios: how much faster the indexed backend
    answers each query (json seconds / sqlite seconds), plus relative
    insert throughput (sqlite rate / json rate)."""
    out = {}
    for metric in QUERY_METRICS:
        out[metric.removesuffix("_s")] = (
            results[metric]["json"] / results[metric]["sqlite"])
    out["insert_ratio"] = (results["insert_per_sec"]["sqlite"]
                           / results["insert_per_sec"]["json"])
    return out


def load_trajectory(path: pathlib.Path) -> dict:
    if path.exists():
        return json.loads(path.read_text(encoding="utf-8"))
    return {"version": 1, "entries": []}


def check_floor(entry: dict, min_speedup: float) -> list[str]:
    """The architectural criterion: indexed backward traces at the
    largest size must beat whole-file parsing by min_speedup."""
    largest = str(max(int(s) for s in entry["speedups"]))
    got = entry["speedups"][largest]["backward_trace"]
    if got < min_speedup:
        return [f"backward-trace speedup at {largest} instances is "
                f"{got:.1f}x, below the required {min_speedup:.0f}x"]
    return []


def _gateable(last_results: dict, size: str, name: str) -> bool:
    """True when the baseline measured this metric slowly enough on
    both backends for its ratio to be signal rather than jitter."""
    measured = last_results.get(size, {})
    if name == "insert_ratio":
        rates = measured.get("insert_per_sec")
        if rates is None:
            return False
        seconds = [int(size) / rate for rate in rates.values()]
    else:
        times = measured.get(f"{name}_s")
        if times is None:
            return False
        seconds = list(times.values())
    return min(seconds) >= MIN_GATE_SECONDS


def check_regression(entry: dict, last: dict,
                     tolerance: float) -> list[str]:
    problems = []
    for size, ratios in entry["speedups"].items():
        baseline = last.get("speedups", {}).get(size)
        if baseline is None:
            continue
        for name, current in ratios.items():
            previous = baseline.get(name)
            if previous is None:
                continue
            if not _gateable(last.get("results", {}), size, name):
                continue
            if current < previous * (1.0 - tolerance):
                problems.append(
                    f"{name}@{size}: ratio fell {previous:.2f} -> "
                    f"{current:.2f} "
                    f"({(current - previous) / previous:+.1%}, "
                    f"tolerance -{tolerance:.0%})")
    return problems


def render(entry: dict) -> str:
    lines = [f"trajectory entry {entry['label']!r} "
             f"(shape={entry['shape']}, seed={entry['seed']}):"]
    for size in entry["sizes"]:
        r = entry["results"][str(size)]
        s = entry["speedups"][str(size)]
        lines.append(
            f"  {size:>7} instances: "
            f"insert {r['insert_per_sec']['json']:,.0f}/s json, "
            f"{r['insert_per_sec']['sqlite']:,.0f}/s sqlite")
        for metric in QUERY_METRICS:
            name = metric.removesuffix("_s")
            lines.append(
                f"           {name:<14} "
                f"json {r[metric]['json'] * 1000:>9.1f}ms   "
                f"sqlite {r[metric]['sqlite'] * 1000:>8.1f}ms   "
                f"{s[name]:>7.1f}x")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--record", action="store_true",
                        help="append this run to the trajectory file "
                             "instead of gating against it")
    parser.add_argument("--label", default=None,
                        help="entry label for --record "
                             "(default: entry-<n>)")
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=list(DEFAULT_SIZES))
    parser.add_argument("--shape", default="forkjoin")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--history", type=pathlib.Path,
                        default=DEFAULT_HISTORY)
    parser.add_argument("--raw-out", type=pathlib.Path,
                        default=DEFAULT_RAW,
                        help="raw per-rep timings (the CI artifact)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative drop in any speedup "
                             "ratio before the gate fails "
                             "(default 0.20)")
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="required cold backward-trace advantage "
                             "of the indexed backend at the largest "
                             "size (default 10x)")
    args = parser.parse_args(argv)

    trajectory = load_trajectory(args.history)
    raw: dict = {}
    results = {}
    with tempfile.TemporaryDirectory() as tmp:
        workdir = pathlib.Path(tmp)
        for size in args.sizes:
            print(f"measuring {size} instances ({args.shape})...",
                  flush=True)
            results[str(size)] = measure_size(
                size, args.shape, args.seed, workdir, raw)

    entry = {
        "label": args.label or f"entry-{len(trajectory['entries'])}",
        "shape": args.shape,
        "seed": args.seed,
        "sizes": sorted(args.sizes),
        "results": results,
        "speedups": {size: speedups(r) for size, r in results.items()},
    }
    print(render(entry))

    args.raw_out.parent.mkdir(parents=True, exist_ok=True)
    args.raw_out.write_text(
        json.dumps({"entry": entry, "raw_timings_s": raw}, indent=1,
                   sort_keys=True) + "\n", encoding="utf-8")
    print(f"raw timings written to {args.raw_out}")

    problems = check_floor(entry, args.min_speedup)
    if args.record:
        trajectory["entries"].append(entry)
        args.history.write_text(
            json.dumps(trajectory, indent=1, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"appended entry {entry['label']!r} to {args.history} "
              f"({len(trajectory['entries'])} entries)")
    elif trajectory["entries"]:
        problems += check_regression(entry, trajectory["entries"][-1],
                                     args.tolerance)
    else:
        print(f"note: {args.history} has no entries yet; nothing to "
              "gate against")

    if problems:
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        return 1
    print("bench trajectory gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
