"""CLAIM-E: design consistency maintenance through the history.

Section 3.3: queries into the design history *"can quickly determine
whether ... retracing need occur"*, and retracing itself is automatic.
The bench builds a design pipeline, edits the upstream layout, and
measures (a) the cost of detecting what went stale, and (b) the cost of
the automatic retrace versus naively re-running the entire pipeline.

Shape: detection is a pure query (no tool runs); the retrace re-runs
only the invocations downstream of the change.
"""

import time

from repro.history import consistency_report, stale_inputs
from repro.schema import standard as S
from repro.tools import default_models, edit_session, exhaustive

from conftest import fresh_env

LAYOUT_SCRIPT = [
    {"op": "rename", "name": "lay-v1"},
    {"op": "place", "name": "u1", "cell": "inv", "x": 2, "y": 0},
    {"op": "pin", "net": "a", "x": 0, "y": 1, "direction": "in"},
    {"op": "pin", "net": "y", "x": 6, "y": 1, "direction": "out"},
    {"op": "route", "net": "a", "points": [[0, 1], [2, 1]]},
    {"op": "route", "net": "y", "points": [[3, 1], [6, 1]]},
]

EDIT_SCRIPT = [
    {"op": "rename", "name": "lay-v2"},
    {"op": "place", "name": "u2", "cell": "buf", "x": 10, "y": 0},
]


def build_world():
    env = fresh_env()
    env.models = env.install_data(  # type: ignore[attr-defined]
        S.DEVICE_MODELS, default_models(), name="tech")
    env.stim = env.install_data(  # type: ignore[attr-defined]
        S.STIMULI, exhaustive(("a",)), name="av")
    session = edit_session(env, S.LAYOUT_EDITOR, LAYOUT_SCRIPT,
                           name="lay-s1")
    flow, layout_goal = env.goal_flow(S.EDITED_LAYOUT)
    flow.expand(layout_goal)
    flow.bind(flow.sole_node_of_type(S.LAYOUT_EDITOR),
              session.instance_id)
    env.run(flow)
    layout_v1 = layout_goal.produced[0]

    pipeline = env.new_flow("pipeline")
    perf = pipeline.place(S.PERFORMANCE)
    pipeline.expand(perf)
    circuit = pipeline.sole_node_of_type(S.CIRCUIT)
    pipeline.expand(circuit)
    netlist = pipeline.sole_node_of_type(S.NETLIST)
    pipeline.specialize(netlist, S.EXTRACTED_NETLIST)
    pipeline.expand(netlist)
    pipeline.bind(pipeline.sole_node_of_type(S.LAYOUT), layout_v1)
    pipeline.bind(pipeline.sole_node_of_type(S.DEVICE_MODELS),
                  env.models.instance_id)
    pipeline.bind(pipeline.sole_node_of_type(S.STIMULI),
                  env.stim.instance_id)
    pipeline.bind(pipeline.sole_node_of_type(S.EXTRACTOR),
                  env.tools[S.EXTRACTOR].instance_id)
    pipeline.bind(pipeline.sole_node_of_type(S.SIMULATOR),
                  env.tools[S.SIMULATOR].instance_id)
    report = env.run(pipeline)
    perf_id = perf.produced[0]

    # the upstream edit that invalidates everything
    session2 = edit_session(env, S.LAYOUT_EDITOR, EDIT_SCRIPT,
                            name="lay-s2")
    edit_flow, edit_goal = env.goal_flow(S.EDITED_LAYOUT)
    edit_flow.expand(edit_goal, include_optional=["previous"])
    previous = edit_flow.graph.data_suppliers(
        edit_goal.node_id)["previous"]
    edit_flow.bind(edit_flow.node(previous), layout_v1)
    edit_flow.bind(edit_flow.sole_node_of_type(S.LAYOUT_EDITOR),
                   session2.instance_id)
    env.run(edit_flow)
    return env, perf_id, len(report.results)


def test_bench_claim_consistency(benchmark, write_artifact):
    env, perf_id, pipeline_invocations = build_world()

    started = time.perf_counter()
    reasons = stale_inputs(env.db, perf_id)
    detect_us = (time.perf_counter() - started) * 1e6
    assert reasons  # the performance is stale after the layout edit

    started = time.perf_counter()
    report = consistency_report(env.db, S.PERFORMANCE)
    report_us = (time.perf_counter() - started) * 1e6
    assert perf_id in report

    started = time.perf_counter()
    retrace_report = env.retrace(perf_id)
    retrace_ms = (time.perf_counter() - started) * 1e3
    # retrace re-ran extraction, composition and simulation, but NOT the
    # layout edit (the new version is reused, not re-edited)
    assert len(retrace_report.results) == pipeline_invocations
    retrace_types = {r.tool_type for r in retrace_report.results}
    assert S.LAYOUT_EDITOR not in retrace_types
    fresh_perf = env.db.browse(S.PERFORMANCE)[-1]
    assert not stale_inputs(env.db, fresh_perf.instance_id)

    text = [
        "CLAIM-E: consistency maintenance",
        "",
        f"stale inputs detected: "
        f"{[str(r) for r in reasons]}",
        f"detection (query only):       {detect_us:9.1f} us",
        f"full consistency report:      {report_us:9.1f} us",
        f"automatic retrace:            {retrace_ms:9.2f} ms "
        f"({len(retrace_report.results)} invocations; layout edit NOT "
        "re-run)",
        f"retraced performance {fresh_perf.instance_id} is up to date",
    ]
    write_artifact("claim_e_consistency", "\n".join(text))

    env2, perf_id2, _ = build_world()
    benchmark(stale_inputs, env2.db, perf_id2)
