"""FIG-9: the Hercules user interface — task window and browser.

Replays the figure's interaction as a scripted session: start a task
from the entity-catalog, build the flow with pop-up Expand operations,
filter the instance browser by keyword/date/user, select instances, run.
Benchmarks the replay of the whole scripted session.
"""

from repro.history.database import BrowseFilter
from repro.schema import standard as S
from repro.tools import default_models, exhaustive, tech_map
from repro.tools.logic import LogicSpec
from repro.ui import HerculesSession

from conftest import fresh_env


def stocked_session():
    env = fresh_env("jbb")
    for name, equation in (("Low pass filter", "y = ~(a & b)"),
                           ("CMOS Full adder", "y = a & b"),
                           ("Operational Amplifier", "y = a | b")):
        env.install_data(
            S.EDITED_NETLIST,
            tech_map(LogicSpec.from_equations(name.replace(" ", ""),
                                              equation)),
            name=name)
    env.models = env.install_data(  # type: ignore[attr-defined]
        S.DEVICE_MODELS, default_models(), name="tech")
    env.stim = env.install_data(  # type: ignore[attr-defined]
        S.STIMULI, exhaustive(("a", "b")), name="ab")
    return env


SCRIPT = """
new simulate
place Performance
popup n0
expand n0
expand n2
browse n5 full adder
select-latest n5
bind n4 {models}
bind n3 {stim}
select-latest n1
show
run
"""


def test_bench_fig09_ui(benchmark, write_artifact):
    def replay():
        env = stocked_session()
        session = HerculesSession(env)
        transcript = session.run_script(SCRIPT.format(
            models=env.models.instance_id, stim=env.stim.instance_id))
        return env, transcript

    env, transcript = benchmark.pedantic(replay, rounds=3, iterations=1)
    assert "created" in transcript
    assert len(env.db.browse(S.PERFORMANCE)) == 1

    # the browser filters of Fig. 9b, directly
    browser_rows = env.db.browse(
        S.NETLIST, filters=BrowseFilter(keywords=["full", "adder"],
                                        user="jbb"))
    assert len(browser_rows) == 1

    write_artifact("fig09_ui",
                   "FIG-9: scripted Hercules session (task window + "
                   "browser)\n\n" + transcript)
