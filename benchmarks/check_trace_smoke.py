"""CI gate: a traced Fig. 5 run must export a valid, stable trace.

Runs the Fig. 5 complex flow once with span tracing enabled and fails
(exit 1) when:

* the recorded spans fail structural validation (duplicate ids,
  dangling parents, multiple roots, bad intervals);
* the Chrome trace-event export does not pass the minimal schema
  check (:func:`repro.obs.validate_chrome_trace`), i.e. would not
  load in Perfetto;
* the critical path drifts structurally from the checked-in baseline
  in ``benchmarks/artifacts/trace_baseline.json`` — the chain of tool
  types is compared exactly (a different longest chain means the
  executed task graph or the analysis changed), span counts per kind
  within a tolerance.

Timing numbers (wall, busy, parallelism) are printed but never gated:
counts and chain structure, not clocks, are the contract, so machine
speed never flakes this check.

Regenerate the baseline after an intentional structural change with::

    PYTHONPATH=src python benchmarks/check_trace_smoke.py \
        --write-baseline
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

BASELINE = (pathlib.Path(__file__).parent / "artifacts"
            / "trace_baseline.json")
COUNT_TOLERANCE = 0.25
COUNT_KEYS = ("spans_total", "run_spans", "task_spans", "tool_spans",
              "cache_spans", "compose_spans", "chrome_events")


def run_once():
    """One traced Fig. 5 execution; returns structural trace stats."""
    from conftest import fresh_env
    from test_bench_fig05_complex_flow import (build_fig5_flow,
                                               build_layout_instance)
    from repro.obs import (CACHE_SPAN, COMPOSE_SPAN, RUN_SPAN, TASK_SPAN,
                           TOOL_SPAN, RingBufferSink, critical_path,
                           export_chrome, validate_chrome_trace,
                           validate_spans)
    from repro.schema import standard as S
    from repro.tools import default_models, exhaustive, tech_map
    from repro.tools.logic import LogicSpec

    env = fresh_env()
    env.models = env.install_data(S.DEVICE_MODELS, default_models(),
                                  name="tech")
    env.stimuli_inv = env.install_data(S.STIMULI, exhaustive(("a",)),
                                       name="a-vec")
    reference = env.install_data(
        S.EDITED_NETLIST,
        tech_map(LogicSpec.from_equations("ref", "y = ~a")),
        name="ref-inv")
    layout_id = build_layout_instance(env)

    sink = RingBufferSink(512)
    env.tracer.subscribe(sink)
    flow = build_fig5_flow(env, layout_id, reference.instance_id)
    env.run(flow)
    env.tracer.unsubscribe(sink)

    spans = list(sink.events())
    problems = validate_spans(spans)
    chrome = export_chrome(spans)
    chrome_problems = validate_chrome_trace(chrome)
    report = critical_path(spans)
    kinds: dict[str, int] = {}
    for span in spans:
        kinds[span.kind] = kinds.get(span.kind, 0) + 1

    return {
        "spans_total": len(spans),
        "run_spans": kinds.get(RUN_SPAN, 0),
        "task_spans": kinds.get(TASK_SPAN, 0),
        "tool_spans": kinds.get(TOOL_SPAN, 0),
        "cache_spans": kinds.get(CACHE_SPAN, 0),
        "compose_spans": kinds.get(COMPOSE_SPAN, 0),
        "roots": sum(1 for s in spans if s.parent_id is None),
        "span_problems": problems,
        "chrome_events": len(chrome["traceEvents"]),
        "chrome_problems": chrome_problems,
        "critical_chain": [s.value("tool_type", "?")
                           for s in report.path],
        "critical_chain_length": len(report.path),
        "wall_elapsed": report.wall_time,
        "busy_elapsed": report.busy_time,
        "parallelism": report.parallelism,
    }


def check(stats: dict, baseline: dict | None) -> list[str]:
    failures = []
    for problem in stats["span_problems"]:
        failures.append(f"span validation: {problem}")
    for problem in stats["chrome_problems"]:
        failures.append(f"chrome export: {problem}")
    if stats["roots"] != 1:
        failures.append(
            f"expected exactly one root span, found {stats['roots']}")
    if stats["task_spans"] == 0:
        failures.append("traced run recorded no task spans")
    if baseline is not None:
        if stats["critical_chain"] != baseline["critical_chain"]:
            failures.append(
                "critical path drifted: baseline chain "
                f"{baseline['critical_chain']}, measured "
                f"{stats['critical_chain']}")
        for key in COUNT_KEYS:
            want, got = baseline[key], stats[key]
            if want and abs(got - want) / want > COUNT_TOLERANCE:
                failures.append(
                    f"{key} drifted: baseline {want}, measured {got} "
                    f"(>{COUNT_TOLERANCE:.0%} drift)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--write-baseline", action="store_true",
                        help="record current numbers as the baseline")
    args = parser.parse_args(argv)
    stats = run_once()
    print(json.dumps(stats, indent=1, sort_keys=True))
    if args.write_baseline:
        BASELINE.parent.mkdir(exist_ok=True)
        recorded = {key: stats[key] for key in
                    (*COUNT_KEYS, "roots", "critical_chain",
                     "critical_chain_length")}
        BASELINE.write_text(json.dumps(recorded, indent=1,
                                       sort_keys=True) + "\n",
                            encoding="utf-8")
        print(f"baseline written to {BASELINE}")
        return 0
    baseline = None
    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text(encoding="utf-8"))
    else:
        print(f"warning: no baseline at {BASELINE}; structural-drift "
              "checks skipped", file=sys.stderr)
    failures = check(stats, baseline)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("trace smoke check passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
