"""FIG-6: parallel execution of disjoint branches on a machine pool.

Measures wall-clock time for a flow with B independent branches executed
on 1, 2 and B simulated machines.  Tool latency is simulated with a
sleep, as in 1993 tool runtime (external processes) dominated framework
overhead.  The shape to reproduce: near-linear speedup up to the branch
count.
"""

import time

from repro.execution import MachinePool, encapsulation
from repro.schema import standard as S

from conftest import fresh_env

BRANCHES = 4
LATENCY = 0.04


def slow_env():
    env = fresh_env()

    def slow_tool(ctx, inputs):
        time.sleep(LATENCY)
        return {t: {"made": t} for t in ctx.output_types}

    env.slow_extractor = env.install_tool(  # type: ignore[attr-defined]
        S.EXTRACTOR, None, name="slow")
    env.registry.register_for_instance(
        env.slow_extractor.instance_id,
        encapsulation("slow", slow_tool))
    return env


def build_branches(env):
    flow = env.new_flow("fig6")
    for index in range(BRANCHES):
        layout = env.install_data(S.EDITED_LAYOUT, {"i": index})
        netlist = flow.place(S.EXTRACTED_NETLIST)
        flow.expand(netlist)
        unbound_layouts = [n for n in flow.graph.leaves()
                           if n.entity_type == S.LAYOUT
                           and not n.is_bound]
        flow.bind(unbound_layouts[0], layout.instance_id)
        unbound_tools = [n for n in flow.nodes()
                         if n.entity_type == S.EXTRACTOR
                         and not n.is_bound]
        flow.bind(unbound_tools[0], env.slow_extractor.instance_id)
    return flow


def run_with_machines(env, machines: int) -> float:
    flow = build_branches(env)
    executor = env.parallel_executor(pool=MachinePool.local(machines))
    started = time.perf_counter()
    executor.execute(flow)
    return time.perf_counter() - started


def test_bench_fig06_parallel(benchmark, write_artifact):
    env = slow_env()

    timings = {}
    for machines in (1, 2, BRANCHES):
        timings[machines] = run_with_machines(env, machines)

    # the benchmarked kernel: full-width pool
    benchmark.pedantic(lambda: run_with_machines(env, BRANCHES),
                       rounds=3, iterations=1)

    serial = timings[1]
    rows = ["FIG-6: disjoint branches executed in parallel",
            f"branches: {BRANCHES}, simulated tool latency: "
            f"{LATENCY * 1000:.0f} ms",
            "",
            f"{'machines':>9} {'wall ms':>9} {'speedup':>8}"]
    for machines, elapsed in sorted(timings.items()):
        rows.append(f"{machines:>9} {elapsed * 1000:9.1f} "
                    f"{serial / elapsed:8.2f}")
    write_artifact("fig06_parallel", "\n".join(rows))

    # shape assertions: more machines, more speedup; near-linear at B
    assert timings[2] < timings[1]
    assert timings[BRANCHES] < timings[2]
    assert serial / timings[BRANCHES] > BRANCHES * 0.6
