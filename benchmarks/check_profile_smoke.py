"""CI gate: the continuous-profiling layer works end to end.

Drives the real CLI over a saved Fig. 6 parallel flow (sqlite
history backend) and checks the whole PR 9 surface:

1. **Profiled runs on both parallel executors** — ``repro run
   --profile`` under ``--executor scheduled`` and ``--executor
   procpool --workers 4`` must exit 0 and append one ``profile.v1``
   record each to ``profiles.jsonl``, stamped with the run and trace
   ids the ledger recorded.

2. **Containment** — each record's per-tool self time must fit inside
   the summed traced tool-span durations of its own run: sampling may
   only ever *attribute* time the trace already accounts for.

3. **Flamegraph coverage** — ``repro profile flamegraph`` must emit
   non-empty collapsed-stack output in which every tool type the
   ledger saw appears as a root frame (the synthetic
   ``(faster-than-interval)`` frame guarantees this even for tool
   bodies that finish between sweeps).

4. **Query-plan audit** — ``repro profile queries`` must exit 0,
   list at least one indexed statement, and report no full-table-scan
   regressions on statements expected to use an index.

5. **Slow-query capture** — an injected slow statement against the
   project's sqlite history must land in ``slow_queries.jsonl`` with
   the right statement fingerprint.

6. **Health gates** — on the freshly built two-run ledger, the
   ``tool-self-time-drift`` and ``query-latency-drift`` checks must
   both be present and the report must pass.

The profiled ledger and profile log are copied into
``benchmarks/artifacts/`` for upload on CI failure.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from check_chaos_smoke import build_project  # noqa: E402

REPO = pathlib.Path(__file__).resolve().parent.parent
ARTIFACTS = REPO / "benchmarks" / "artifacts"

WORKERS = 4
INTERVAL_MS = 0.5
#: Slack for clock granularity when comparing profile self time
#: against summed traced span durations.
EPSILON = 1e-4


def run_cli(directory: pathlib.Path, *extra: str) -> int:
    from repro.cli import main as repro_main

    return repro_main(["run", str(directory), "fig6", *extra])


def profiled_run(directory: pathlib.Path, failures: list[str],
                 *extra: str) -> None:
    code = run_cli(directory, "--backend", "sqlite", "--cache",
                   "readwrite", "--trace", "--profile",
                   "--profile-interval-ms", str(INTERVAL_MS), *extra)
    label = " ".join(extra) or "default"
    print(f"profiled run ({label}): exit {code}")
    if code != 0:
        failures.append(f"profiled run ({label}) must exit 0, "
                        f"got {code}")


def tool_span_budget(directory: pathlib.Path,
                     trace_id: str) -> dict[str, float]:
    """Summed traced tool-span seconds per tool type for one run."""
    from repro.obs import TOOL_SPAN, read_spans

    budget: dict[str, float] = {}
    for span in read_spans(directory / "trace.jsonl", strict=False):
        if span.trace_id == trace_id and span.kind == TOOL_SPAN:
            tool_type = span.value("tool_type",
                                   span.name.split(":", 1)[-1])
            budget[tool_type] = budget.get(tool_type, 0.0) + \
                span.duration
    return budget


def check_containment(directory: pathlib.Path, record,
                      profile: dict, failures: list[str]) -> None:
    budget = tool_span_budget(directory, record.trace_id)
    for tool_type, stats in profile.get("tools", {}).items():
        cap = budget.get(tool_type)
        if cap is None:
            failures.append(
                f"{record.executor}: profiled tool {tool_type!r} has "
                f"no traced tool spans")
            continue
        self_s = float(stats.get("self_s", 0.0))
        print(f"  {record.executor}/{tool_type}: self "
              f"{self_s * 1e3:.2f}ms <= spans {cap * 1e3:.2f}ms")
        if self_s > cap + EPSILON:
            failures.append(
                f"{record.executor}: {tool_type} self time "
                f"{self_s * 1e3:.2f}ms exceeds its traced tool spans "
                f"({cap * 1e3:.2f}ms)")


def check_flamegraph(directory: pathlib.Path, tool_types: set[str],
                     out: pathlib.Path, failures: list[str]) -> None:
    from repro.cli import main as repro_main

    code = repro_main(["profile", "flamegraph", str(directory),
                       "-o", str(out)])
    if code != 0:
        failures.append(f"'repro profile flamegraph' exited {code}")
        return
    collapsed = out.read_text(encoding="utf-8").strip()
    if not collapsed:
        failures.append("flamegraph export is empty")
        return
    lines = collapsed.splitlines()
    print(f"flamegraph: {len(lines)} collapsed-stack line(s)")
    for line in lines:
        frames, _, count = line.rpartition(" ")
        if not frames or not count.isdigit() or int(count) <= 0:
            failures.append(
                f"invalid collapsed-stack line: {line!r}")
            return
    roots = {line.split(";", 1)[0] for line in lines}
    missing = tool_types - roots
    if missing:
        failures.append(
            f"flamegraph is missing tool type(s) {sorted(missing)}; "
            f"roots are {sorted(roots)}")


def check_queries_cli(directory: pathlib.Path,
                      failures: list[str]) -> None:
    from repro.cli import main as repro_main
    from repro.history.sqlite_store import SqliteHistoryStore
    from repro.persistence import HISTORY_SQLITE_FILE

    code = repro_main(["profile", "queries", str(directory)])
    print(f"'repro profile queries': exit {code}")
    if code != 0:
        failures.append(
            f"'repro profile queries' must exit 0, got {code}")
    store = SqliteHistoryStore(directory / HISTORY_SQLITE_FILE)
    try:
        audits = store.query_plan_audit()
    finally:
        store.close()
    indexed = [a for a in audits if a["uses_index"]]
    regressed = [a["name"] for a in audits
                 if a["expect_index"] and a["full_scan"]]
    print(f"  query plans: {len(indexed)}/{len(audits)} indexed")
    if not indexed:
        failures.append("no audited statement uses an index")
    if regressed:
        failures.append(
            f"indexed statements regressed to full scans: {regressed}")


def check_slow_query_capture(directory: pathlib.Path,
                             failures: list[str]) -> None:
    from repro.history.sqlite_store import SqliteHistoryStore
    from repro.obs import QueryRecorder, statement_fingerprint
    from repro.persistence import HISTORY_SQLITE_FILE, SLOW_QUERY_FILE

    log = directory / SLOW_QUERY_FILE
    statement = "SELECT repro_sleep(0.02)"
    store = SqliteHistoryStore(directory / HISTORY_SQLITE_FILE)
    try:
        store.set_query_recorder(QueryRecorder(
            slow_threshold=0.005, slow_log=log, backend="sqlite"))
        store._conn.create_function(
            "repro_sleep", 1, lambda seconds: time.sleep(seconds) or 0)
        store._fetchall(statement)
    finally:
        store.close()
    entries = [json.loads(line) for line in
               log.read_text(encoding="utf-8").splitlines()] \
        if log.exists() else []
    captured = [e for e in entries
                if e["fingerprint"] == statement_fingerprint(statement)]
    print(f"slow-query log: {len(entries)} entr(ies), "
          f"{len(captured)} from the injected statement")
    if not captured:
        failures.append(
            "injected slow statement never reached the slow-query log")


def check_health(records, failures: list[str]) -> None:
    from repro.obs import HealthThresholds, evaluate_health

    report = evaluate_health(
        records, thresholds=HealthThresholds(min_samples=1))
    verdicts = {check.name: check.verdict for check in report.checks}
    print(f"health: tool-self-time-drift="
          f"{verdicts.get('tool-self-time-drift')} "
          f"query-latency-drift={verdicts.get('query-latency-drift')} "
          f"exit={report.exit_code}")
    for name in ("tool-self-time-drift", "query-latency-drift"):
        if name not in verdicts:
            failures.append(f"health report must include {name}")
    if report.exit_code != 0:
        failures.append(
            f"smoke-ledger health must pass, got exit "
            f"{report.exit_code}: {verdicts}")


def main() -> int:
    from repro.obs import RunLedger, read_profiles
    from repro.persistence import PROFILE_FILE

    failures: list[str] = []
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory() as scratch:
        directory = pathlib.Path(scratch) / "project"
        build_project(directory)

        # 1. one profiled run per parallel executor (procpool forced
        # so its tools recompute instead of coalescing on the memo)
        profiled_run(directory, failures,
                     "--executor", "scheduled")
        profiled_run(directory, failures,
                     "--executor", "procpool",
                     "--workers", str(WORKERS), "--force")

        records = RunLedger(directory / "ledger.jsonl").records()
        profiles = read_profiles(directory / PROFILE_FILE)
        if len(profiles) != 2:
            failures.append(
                f"expected 2 profile records, got {len(profiles)}")
        tool_types: set[str] = set()
        for record, profile in zip(records[-2:], profiles[-2:]):
            if profile.get("run_id") != record.run_id:
                failures.append(
                    f"profile run id {profile.get('run_id')!r} does "
                    f"not match ledger {record.run_id!r}")
            if profile.get("trace_id") != record.trace_id:
                failures.append(
                    f"profile trace id does not match the ledger's "
                    f"for run {record.run_id}")
            if not record.profile:
                failures.append(
                    f"ledger record {record.run_id} carries no "
                    f"profile summary")
            if not profile.get("query", {}).get("count"):
                failures.append(
                    f"profile for {record.executor} recorded no "
                    f"history-query telemetry")
            tool_types |= set(record.tools)
            # 2. containment against each run's own traced spans
            check_containment(directory, record, profile, failures)

        # 3-5. export, audit, and slow-query surfaces
        check_flamegraph(directory, tool_types,
                         ARTIFACTS / "profile_smoke_flame.txt",
                         failures)
        check_queries_cli(directory, failures)
        check_slow_query_capture(directory, failures)

        # 6. the two profiling health checks on the fresh ledger
        check_health(records, failures)

        shutil.copy(directory / "ledger.jsonl",
                    ARTIFACTS / "profile_smoke_ledger.jsonl")
        shutil.copy(directory / PROFILE_FILE,
                    ARTIFACTS / "profile_smoke_profiles.jsonl")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("profile smoke check passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
