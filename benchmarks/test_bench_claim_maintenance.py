"""CLAIM-C: methodology maintenance — schema-only vs. flow library.

Section 3.3: dynamically defined flows *"make methodology maintenance
easier by avoiding the requirement for the maintenance of a set of flows
(only the task schema need be maintained), and by simplifying the
incorporation of new tools"*; section 1 criticizes flows *"hardwired to
specific tools"*.

Two maintenance events are measured against a JESSI-style static flow
library of growing size:

1. **tool swap** — a new simulator binary arrives.  Dynamic: 0 artifacts
   (tools bind per run); static: every flow hardwiring the old instance.
2. **new construction method** — a new layout generator.  Dynamic: 1
   artifact (the schema gains a subtype + method); static: one new flow
   per affected methodology sequence.
"""

from repro.baselines import Activity, StaticFlow, StaticFlowManager
from repro.schema import standard as S
from repro.schema.standard import odyssey_schema

from conftest import fresh_env

LIBRARY_SIZES = (5, 20, 80)


def build_static_library(env, flows: int) -> StaticFlowManager:
    manager = StaticFlowManager(env.db, env.registry)
    simulator = env.tools[S.SIMULATOR].instance_id
    extractor = env.tools[S.EXTRACTOR].instance_id
    for index in range(flows):
        manager.define_flow(StaticFlow(
            f"flow-{index}", activities=(
                Activity("extract", S.EXTRACTED_NETLIST, extractor,
                         inputs=(("layout", "lay"),)),
                Activity("compose", S.CIRCUIT, "",
                         inputs=(("netlist", "@extract"),
                                 ("models", "mod"))),
                Activity("simulate", S.PERFORMANCE, simulator,
                         inputs=(("circuit", "@compose"),
                                 ("stimuli", "stim"))),
            )))
    return manager


def dynamic_tool_swap_cost(env) -> int:
    """Artifacts touched when a new simulator arrives, dynamic approach."""
    env.db.install(S.SIMULATOR, {}, name="spice-v2")
    # no flow, no schema edit: existing flows bind instances at run time
    return 0


def dynamic_new_method_cost() -> int:
    """Artifacts touched to add a 'gate-array generator': the schema."""
    from repro.schema.dependency import data_dep, functional
    from repro.schema.entity import data, tool

    schema = odyssey_schema()
    schema.add_entity(tool("GateArrayGenerator"))
    schema.add_entity(data("GateArrayLayout", parent=S.LAYOUT))
    schema.add_dependency(functional("GateArrayLayout",
                                     "GateArrayGenerator"))
    schema.add_dependency(data_dep("GateArrayLayout", S.LOGIC_SPEC,
                                   role="logic"))
    schema.validate()
    return 1  # exactly one artifact: the schema


def test_bench_claim_maintenance(benchmark, write_artifact):
    rows = ["CLAIM-C: artifacts touched per maintenance event",
            "",
            "event 1: a new simulator binary replaces the old one",
            f"{'flow library':>13} {'static edits':>13} "
            f"{'dynamic edits':>14}"]
    for flows in LIBRARY_SIZES:
        env = fresh_env()
        manager = build_static_library(env, flows)
        new_simulator = env.db.install(S.SIMULATOR, {}, name="spice-v2")
        static_edits = manager.replace_tool(
            env.tools[S.SIMULATOR].instance_id,
            new_simulator.instance_id)
        dynamic_edits = dynamic_tool_swap_cost(env)
        rows.append(f"{flows:>13} {static_edits:>13} "
                    f"{dynamic_edits:>14}")
        assert static_edits == flows     # grows with the library
        assert dynamic_edits == 0        # constant

    rows += ["",
             "event 2: adding a new construction method "
             "(gate-array generator)",
             "  static approach: one new flow per methodology sequence "
             "that should offer it",
             f"  dynamic approach: {dynamic_new_method_cost()} artifact "
             "(the task schema); every existing and future flow can "
             "use it immediately"]

    env = fresh_env()
    manager = build_static_library(env, LIBRARY_SIZES[0])
    replacement = env.db.install(S.SIMULATOR, {}, name="spice-v3")

    benchmark(manager.replace_tool, env.tools[S.SIMULATOR].instance_id,
              replacement.instance_id)
    write_artifact("claim_c_maintenance", "\n".join(rows))
