"""CI gate: the scenario corpus must be deterministic end to end.

Drives the real ``repro corpus`` CLI:

1. ``corpus generate`` at the pinned seed twice, into two fresh
   directories — the manifests must be byte-identical, and identical
   to the checked-in exemplar
   (``benchmarks/artifacts/corpus_exemplar/corpus.json``);
2. ``corpus run`` with the sequential executor on the json backend and
   with the procpool executor on the sqlite backend — every scenario's
   history digest must match the manifest's offline simulation (the
   CLI exits 1 itself on divergence);
3. ``corpus export`` of an executed scenario in both formats — the
   triples export must be byte-identical to the exemplar, and the
   governance export's deterministic fingerprint (tasks, artifact
   digests, depends_on edges, node/edge counts — run ids and
   timestamps excluded) must match the exemplar's.

Regenerate the exemplar after an intentional contract change with::

    PYTHONPATH=src python benchmarks/check_corpus_smoke.py --write
"""

from __future__ import annotations

import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).parent))

SEED = 2026
EXEMPLAR = (pathlib.Path(__file__).parent / "artifacts"
            / "corpus_exemplar")
#: The scenario whose exports the exemplar pins.
EXPORT_SCENARIO = "s02-diamond"


def generate(directory: pathlib.Path) -> int:
    from repro.cli import main as repro_main

    return repro_main(["corpus", "generate", str(directory),
                       "--seed", str(SEED)])


def run_corpus(directory: pathlib.Path, executor: str,
               backend: str) -> int:
    from repro.cli import main as repro_main

    return repro_main(["corpus", "run", str(directory),
                       "--executor", executor, "--backend", backend])


def export(scenario_dir: pathlib.Path, fmt: str,
           target: pathlib.Path) -> int:
    from repro.cli import main as repro_main

    return repro_main(["corpus", "export", str(scenario_dir),
                       "--format", fmt, "-o", str(target)])


def write_exemplar() -> int:
    """Regenerate the checked-in artifact (run after contract changes).

    Only the contract files are kept — the manifest and the two export
    files; the executed scenario environments stay in scratch (their
    ledgers and timestamps are run-specific).
    """
    from repro.scenarios import governance_fingerprint, read_jsonl

    with tempfile.TemporaryDirectory() as scratch:
        work = pathlib.Path(scratch) / "corpus"
        if generate(work) != 0:
            return 1
        if run_corpus(work, "sequential", "json") != 0:
            return 1
        EXEMPLAR.mkdir(parents=True, exist_ok=True)
        scenario_dir = work / EXPORT_SCENARIO
        if export(scenario_dir, "governance",
                  EXEMPLAR / "governance.jsonl") != 0:
            return 1
        if export(scenario_dir, "triples",
                  EXEMPLAR / "triples.jsonl") != 0:
            return 1
        (EXEMPLAR / "corpus.json").write_bytes(
            (work / "corpus.json").read_bytes())
    fingerprint = governance_fingerprint(
        read_jsonl(EXEMPLAR / "governance.jsonl"))
    (EXEMPLAR / "governance.fingerprint").write_text(fingerprint + "\n")
    print(f"exemplar written to {EXEMPLAR} "
          f"(governance fingerprint {fingerprint[:16]})")
    return 0


def main() -> int:
    if "--write" in sys.argv[1:]:
        return write_exemplar()
    from repro.scenarios import governance_fingerprint, read_jsonl

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as scratch:
        root = pathlib.Path(scratch)

        # 1. byte-identical regeneration, matching the exemplar
        first, second = root / "first", root / "second"
        for directory in (first, second):
            if generate(directory) != 0:
                failures.append(f"corpus generate failed "
                                f"in {directory}")
        manifest = (first / "corpus.json").read_bytes()
        if manifest != (second / "corpus.json").read_bytes():
            failures.append(
                "same-seed corpus generate is not byte-identical")
        else:
            print("same-seed regeneration: byte-identical")
        exemplar_manifest = EXEMPLAR / "corpus.json"
        if manifest != exemplar_manifest.read_bytes():
            failures.append(
                f"generated manifest differs from {exemplar_manifest} "
                "— if the corpus contract changed intentionally, "
                "regenerate with --write")
        else:
            print("manifest matches the checked-in exemplar")

        # 2. two executors x two backends must match the simulation
        for executor, backend in (("sequential", "json"),
                                  ("procpool", "sqlite")):
            code = run_corpus(first, executor, backend)
            print(f"corpus run --executor {executor} "
                  f"--backend {backend}: exit {code}")
            if code != 0:
                failures.append(
                    f"{executor}/{backend} corpus run diverged from "
                    "the manifest")

        # 3. exports of the executed scenario match the exemplar
        scenario_dir = first / EXPORT_SCENARIO
        triples = root / "triples.jsonl"
        if export(scenario_dir, "triples", triples) != 0:
            failures.append("triples export failed validation")
        elif triples.read_bytes() != \
                (EXEMPLAR / "triples.jsonl").read_bytes():
            failures.append(
                "triples export is not byte-identical to the "
                "exemplar")
        else:
            print("triples export byte-identical to the exemplar")
        governance = root / "governance.jsonl"
        if export(scenario_dir, "governance", governance) != 0:
            failures.append("governance export failed validation")
        else:
            fingerprint = governance_fingerprint(read_jsonl(governance))
            expected = (EXEMPLAR / "governance.fingerprint") \
                .read_text().strip()
            if fingerprint != expected:
                failures.append(
                    f"governance fingerprint {fingerprint[:16]} "
                    f"differs from exemplar {expected[:16]}")
            else:
                print("governance fingerprint matches the exemplar")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("corpus smoke check passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
