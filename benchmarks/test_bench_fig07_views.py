"""FIG-7: the three views of an inverter cell.

Regenerates the figure's content — logic view, transistor view, physical
layout view of one inverter — as actual design data produced through the
substrate, classified by the view registry.  Benchmarks the full
three-view derivation.
"""

from repro.schema import standard as S
from repro.tools import (extract, place, standard_library, tech_map,
                         truth_table)
from repro.tools.logic import LogicSpec
from repro.views import standard_views

from conftest import fresh_env

LIBRARY = standard_library()


def derive_three_views():
    logic_view = LogicSpec.from_equations("inverter", "out = ~inp")
    transistor_view = tech_map(logic_view, "inv-transistors")
    physical_view = place(transistor_view,
                          {"seed": 1, "moves": 50}, LIBRARY)
    return logic_view, transistor_view, physical_view


def test_bench_fig07_views(benchmark, write_artifact):
    logic_view, transistor_view, physical_view = benchmark(
        derive_three_views)

    env = fresh_env()
    registry = standard_views(env.schema)
    logic = env.install_data(S.EDITED_LOGIC_SPEC, logic_view,
                             name="inv-logic")
    netlist = env.install_data(S.EDITED_NETLIST,
                               transistor_view.flatten(LIBRARY),
                               name="inv-net")
    layout = env.install_data(S.PLACED_LAYOUT, physical_view,
                              name="inv-lay")

    assert registry.view_of(logic) == "logic"
    assert registry.view_of(netlist) == "transistor"
    assert registry.view_of(layout) == "physical"

    flat = transistor_view.flatten(LIBRARY)
    extracted, stats = extract(physical_view, LIBRARY)
    assert truth_table(extracted) == truth_table(flat)

    text = [
        "FIG-7: three views of an inverter cell",
        "",
        "logic view:",
        f"  out = ~inp   (truth table {logic_view.truth_table()})",
        "",
        "transistor view:",
    ]
    for t in flat.transistors():
        text.append(f"  {t.name}: {t.kind} g={t.gate} s={t.source} "
                    f"d={t.drain} w={t.width:g}")
    text += ["", "physical layout view:"]
    for placement in physical_view.placements():
        text.append(f"  cell {placement.name} ({placement.cell}) at "
                    f"({placement.x}, {placement.y})")
    for pin in physical_view.pins():
        text.append(f"  pin {pin.net} [{pin.direction}] at "
                    f"({pin.x}, {pin.y})")
    from repro.tools import render_layout

    text += ["", render_layout(physical_view, LIBRARY)]
    text += ["",
             f"view registry classification: "
             f"{logic.instance_id} -> logic, "
             f"{netlist.instance_id} -> transistor, "
             f"{layout.instance_id} -> physical"]
    write_artifact("fig07_views", "\n".join(text))
