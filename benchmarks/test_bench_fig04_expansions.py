"""FIG-4: two possible expansions of the Fig. 3 flow.

The designer may expand the netlist either toward the circuit editor
(Fig. 4a) or — after specializing it to an Extracted Netlist — toward the
extractor and a layout (Fig. 4b).  Benchmarks the expand operation
itself (the per-click cost of building flows on demand).
"""

from repro.core import DynamicFlow, ascii_graph
from repro.schema import standard as S
from repro.schema.standard import odyssey_schema

SCHEMA = odyssey_schema()


def base_flow() -> DynamicFlow:
    flow = DynamicFlow(SCHEMA, "fig4-base")
    goal = flow.place(S.PLACED_LAYOUT)
    flow.expand(goal)
    return flow


def expansion_a() -> DynamicFlow:
    flow = base_flow()
    netlist = flow.sole_node_of_type(S.NETLIST)
    flow.specialize(netlist, S.EDITED_NETLIST)
    flow.expand(netlist)
    return flow


def expansion_b() -> DynamicFlow:
    flow = base_flow()
    netlist = flow.sole_node_of_type(S.NETLIST)
    flow.specialize(netlist, S.EXTRACTED_NETLIST)
    flow.expand(netlist)
    return flow


def test_bench_fig04_expansions(benchmark, write_artifact):
    flows = benchmark(lambda: (expansion_a(), expansion_b()))
    flow_a, flow_b = flows

    types_a = {n.entity_type for n in flow_a.nodes()}
    types_b = {n.entity_type for n in flow_b.nodes()}
    assert S.CIRCUIT_EDITOR in types_a and S.EXTRACTOR not in types_a
    assert S.EXTRACTOR in types_b and S.LAYOUT in types_b
    assert S.CIRCUIT_EDITOR not in types_b

    text = [
        "FIG-4: two possible expansions of the Fig. 3 flow",
        "",
        "(a) netlist specialized to EditedNetlist, expanded:",
        ascii_graph(flow_a.graph),
        "",
        "(b) netlist specialized to ExtractedNetlist, expanded:",
        ascii_graph(flow_b.graph),
    ]
    write_artifact("fig04_expansions", "\n".join(text))


def test_bench_fig04_unexpand_restores(benchmark, write_artifact):
    """Expansion is reversible: unexpand returns to the base flow."""

    def roundtrip():
        flow = expansion_b()
        netlist = flow.sole_node_of_type(S.NETLIST)
        flow.unexpand(netlist)
        flow.generalize(netlist)
        return flow

    flow = benchmark(roundtrip)
    assert {n.entity_type for n in flow.nodes()} == \
        {n.entity_type for n in base_flow().nodes()}
    write_artifact("fig04_unexpand",
                   "after unexpand + generalize:\n"
                   + ascii_graph(flow.graph))
