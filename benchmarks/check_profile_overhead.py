"""CI gate: ``--profile`` must cost less than 7% of fig06 wall time.

The sampling profiler is meant to be cheap enough to leave on for any
investigative run: a background sweep thread, per-invocation clock
reads, and (on sqlite projects) per-statement timers.  This gate
measures the end-to-end ``repro run`` wall time of the Fig. 6 parallel
flow with and without ``--profile`` — best-of-N on fresh projects so
history growth and filesystem warmup cancel out — and fails when the
profiled best exceeds the unprofiled best by more than
``OVERHEAD_BUDGET``.

``tracemalloc`` memory tracking is deliberately *excluded*: it costs
~4x on allocation-heavy tools (the reason ``--profile-memory`` is a
separate opt-in flag) and would never fit this budget.

The measured overhead is appended to ``benchmarks/artifacts/`` raw
output; the checked-in trajectory lives in ``BENCH_profile.json`` at
the repo root (one entry per PR that touched the profiling hot path).
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from check_chaos_smoke import build_project  # noqa: E402

REPO = pathlib.Path(__file__).resolve().parent.parent
BENCH = REPO / "BENCH_profile.json"
ARTIFACTS = REPO / "benchmarks" / "artifacts"

#: Hard ceiling on (profiled / unprofiled - 1) for the best-of-N runs.
OVERHEAD_BUDGET = 0.07

#: Interleaved (base, profiled) measurement pairs; best of each side.
REPEATS = 5

#: Match the CLI default so the gate measures what users get.
PROFILE_INTERVAL_MS = 5.0


def timed_run(root: pathlib.Path, name: str, *extra: str) -> float:
    """Wall seconds of one ``repro run`` over a fresh fig06 project."""
    from repro.cli import main as repro_main

    directory = root / name
    build_project(directory)
    started = time.perf_counter()
    code = repro_main(["run", str(directory), "fig6", *extra])
    elapsed = time.perf_counter() - started
    if code != 0:
        raise SystemExit(f"FAIL: fig06 run {name!r} exited {code}")
    return elapsed


def measure() -> dict:
    base_walls: list[float] = []
    profiled_walls: list[float] = []
    with tempfile.TemporaryDirectory() as scratch:
        root = pathlib.Path(scratch)
        # one untimed warmup pays the import/bytecode cost up front
        timed_run(root, "warmup")
        for index in range(REPEATS):
            base_walls.append(timed_run(root, f"base{index}"))
            profiled_walls.append(timed_run(
                root, f"profiled{index}", "--profile",
                "--profile-interval-ms", str(PROFILE_INTERVAL_MS)))
    best_base = min(base_walls)
    best_profiled = min(profiled_walls)
    return {
        "base_walls": [round(w, 6) for w in base_walls],
        "profiled_walls": [round(w, 6) for w in profiled_walls],
        "best_base": round(best_base, 6),
        "best_profiled": round(best_profiled, 6),
        "overhead": round(best_profiled / best_base - 1.0, 4),
        "repeats": REPEATS,
        "interval_ms": PROFILE_INTERVAL_MS,
    }


def main() -> int:
    failures: list[str] = []
    results = measure()
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    (ARTIFACTS / "profile_overhead_raw.json").write_text(
        json.dumps(results, indent=1, sort_keys=True) + "\n",
        encoding="utf-8")
    overhead = results["overhead"]
    print(f"fig06 --profile overhead: {overhead * 100:.2f}% "
          f"(best base {results['best_base'] * 1e3:.1f}ms, best "
          f"profiled {results['best_profiled'] * 1e3:.1f}ms, "
          f"budget {OVERHEAD_BUDGET * 100:.0f}%)")
    if overhead > OVERHEAD_BUDGET:
        failures.append(
            f"--profile overhead {overhead * 100:.2f}% exceeds the "
            f"{OVERHEAD_BUDGET * 100:.0f}% budget")

    if not BENCH.exists():
        failures.append(
            "BENCH_profile.json trajectory file is missing")
    else:
        entries = json.loads(
            BENCH.read_text(encoding="utf-8"))["entries"]
        if not entries:
            failures.append("BENCH_profile.json has no entries")
        else:
            recorded = entries[-1]["results"]["fig06"]["overhead"]
            print(f"  checked-in trajectory: "
                  f"{recorded * 100:.2f}% ({entries[-1]['label']})")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("profile overhead check passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
