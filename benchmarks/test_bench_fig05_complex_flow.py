"""FIG-5: a complex flow — entity reuse and multiple outputs per subtask.

Regenerates the paper's Fig. 5 structure over the Fig. 1 schema: one
layout feeding an extraction that produces BOTH the extracted netlist and
the extraction statistics in a single tool run; the netlist reused by a
verification and (through a circuit) a performance and plot.  Benchmarks
the end-to-end execution and asserts the coalescing actually saved a
tool run.
"""

from repro.core import ascii_graph
from repro.schema import standard as S
from repro.tools import edit_session

from conftest import fresh_env


def build_layout_instance(env):
    session = edit_session(env, S.LAYOUT_EDITOR, [
        {"op": "rename", "name": "cell-lay"},
        {"op": "place", "name": "u1", "cell": "inv", "x": 2, "y": 0},
        {"op": "pin", "net": "a", "x": 0, "y": 1, "direction": "in"},
        {"op": "pin", "net": "y", "x": 6, "y": 1, "direction": "out"},
        {"op": "route", "net": "a", "points": [[0, 1], [2, 1]]},
        {"op": "route", "net": "y", "points": [[3, 1], [6, 1]]},
    ], name="lay-session")
    flow, goal = env.goal_flow(S.EDITED_LAYOUT)
    flow.expand(goal)
    flow.bind(flow.sole_node_of_type(S.LAYOUT_EDITOR),
              session.instance_id)
    env.run(flow)
    return goal.produced[0]


def build_fig5_flow(env, layout_id, reference_id):
    """The Fig. 5 shape: shared inputs, multi-output extraction."""
    flow = env.new_flow("fig5")
    layout = flow.place(S.EDITED_LAYOUT)
    layout.bind(layout_id)
    netlist = flow.graph.add_node(S.EXTRACTED_NETLIST)
    stats = flow.graph.add_node(S.EXTRACTION_STATISTICS)
    extractor = flow.graph.add_node(S.EXTRACTOR)
    extractor.bind(env.tools[S.EXTRACTOR].instance_id)
    for output in (netlist, stats):
        flow.connect(output, extractor)
        flow.connect(output, layout, role="layout")
    # the netlist is REUSED: once by the verification, once by a circuit
    verification = flow.graph.add_node(S.VERIFICATION)
    verifier = flow.graph.add_node(S.VERIFIER)
    verifier.bind(env.tools[S.VERIFIER].instance_id)
    reference = flow.graph.add_node(S.NETLIST)
    reference.bind(reference_id)
    flow.connect(verification, verifier)
    flow.connect(verification, reference, role="reference")
    flow.connect(verification, netlist, role="candidate")
    circuit = flow.graph.add_node(S.CIRCUIT)
    models = flow.graph.add_node(S.DEVICE_MODELS)
    models.bind(env.models.instance_id)
    flow.connect(circuit, models, role="models")
    flow.connect(circuit, netlist, role="netlist")
    performance = flow.graph.add_node(S.PERFORMANCE)
    simulator = flow.graph.add_node(S.SIMULATOR)
    simulator.bind(env.tools[S.SIMULATOR].instance_id)
    stimuli = flow.graph.add_node(S.STIMULI)
    stimuli.bind(env.stimuli_inv.instance_id)
    flow.connect(performance, simulator)
    flow.connect(performance, circuit, role="circuit")
    flow.connect(performance, stimuli, role="stimuli")
    plot_node = flow.graph.add_node(S.PERFORMANCE_PLOT)
    plotter = flow.graph.add_node(S.PLOTTER)
    plotter.bind(env.tools[S.PLOTTER].instance_id)
    flow.connect(plot_node, plotter)
    flow.connect(plot_node, performance, role="performance")
    return flow


def test_bench_fig05_complex_flow(benchmark, write_artifact):
    from repro.tools import default_models, exhaustive, tech_map
    from repro.tools.logic import LogicSpec

    env = fresh_env()
    env.models = env.install_data(S.DEVICE_MODELS, default_models(),
                                  name="tech")
    env.stimuli_inv = env.install_data(S.STIMULI, exhaustive(("a",)),
                                       name="a-vec")
    reference = env.install_data(
        S.EDITED_NETLIST,
        tech_map(LogicSpec.from_equations("ref", "y = ~a")),
        name="ref-inv")
    layout_id = build_layout_instance(env)

    def run():
        flow = build_fig5_flow(env, layout_id, reference.instance_id)
        report = env.run(flow, force=True)
        return flow, report

    flow, report = benchmark.pedantic(run, rounds=3, iterations=1)

    extract_runs = [r for r in report.results
                    if r.tool_type == S.EXTRACTOR]
    assert len(extract_runs) == 1           # multi-output coalescing
    assert len(extract_runs[0].created) == 2
    verification = env.db.browse(S.VERIFICATION)[-1]
    assert env.db.data(verification).matched

    text = [
        "FIG-5: complex flow with entity reuse and multi-output subtask",
        "",
        ascii_graph(flow.graph),
        "",
        f"invocations executed: {len(report.results)}",
        f"extractor runs: {len(extract_runs)} "
        f"(produced {len(extract_runs[0].created)} outputs)",
        f"verification result: "
        f"{'MATCH' if env.db.data(verification).matched else 'MISMATCH'}",
    ]
    write_artifact("fig05_complex_flow", "\n".join(text))
