"""Unit tests for the view registry (Fig. 7 machinery)."""

import pytest

from repro.schema import standard as S
from repro.views import ViewError, ViewRegistry, standard_views


class TestViewRegistry:
    def test_bind_and_lookup(self, schema):
        registry = ViewRegistry(schema)
        binding = registry.bind("physical", S.LAYOUT)
        assert binding.entity_type == S.LAYOUT
        assert registry.entity_type("physical") == S.LAYOUT
        assert registry.views() == ("physical",)

    def test_duplicate_view_rejected(self, schema):
        registry = ViewRegistry(schema)
        registry.bind("physical", S.LAYOUT)
        with pytest.raises(ViewError):
            registry.bind("physical", S.NETLIST)

    def test_unknown_view_rejected(self, schema):
        registry = ViewRegistry(schema)
        with pytest.raises(ViewError):
            registry.entity_type("astral")

    def test_unknown_entity_type_rejected(self, schema):
        registry = ViewRegistry(schema)
        with pytest.raises(Exception):
            registry.bind("weird", "Ghost")

    def test_view_of_uses_most_specific_binding(self, stocked_env):
        env = stocked_env
        registry = ViewRegistry(env.schema)
        registry.bind("physical", S.LAYOUT)
        registry.bind("routed", S.ROUTED_LAYOUT)
        layout = env.install_data(S.EDITED_LAYOUT, {"x": 1})
        assert registry.view_of(layout) == "physical"

    def test_view_of_none_for_unbound_types(self, stocked_env):
        env = stocked_env
        registry = ViewRegistry(env.schema)
        registry.bind("physical", S.LAYOUT)
        assert registry.view_of(env.stimuli) is None

    def test_instances_of_view_with_keywords(self, stocked_env):
        env = stocked_env
        registry = standard_views(env.schema)
        rows = registry.instances_of_view(env.db, "transistor",
                                          keywords=("mux",))
        assert [r.instance_id for r in rows] == \
            [env.netlist.instance_id]
        assert registry.instances_of_view(env.db, "transistor",
                                          keywords=("zzz",)) == ()

    def test_standard_views_without_logic(self, schema_fig1):
        registry = standard_views(schema_fig1)
        assert set(registry.views()) == {"physical", "transistor"}
