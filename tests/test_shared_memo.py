"""Cross-process shared derivation memo: locking, absorption, sharing.

The memo is an append-only JSONL log guarded by a file lock; concurrent
writers (worker lanes, parallel CLI runs) must never corrupt it, every
reader must eventually observe every writer's entries, and the
registry-signature guard must reject entries recorded under different
tool code.  The cache-level tests pin how :class:`DerivationCache`
absorbs memo entries — only usable ones (instances present in this
history) ever surface as hits.
"""

from __future__ import annotations

import json
import multiprocessing
import time

from repro import DesignEnvironment
from repro.execution import (FaultPlan, FaultSpec, ResiliencePolicy,
                             SharedDerivationMemo, encapsulation)
from repro.execution.shared_memo import MEMO_SCHEMA_VERSION
from repro.schema.builder import SchemaBuilder

SIG = "sig-a"


def memo_at(path, signature=SIG):
    return SharedDerivationMemo(path, lambda: signature)


class TestMemoLog:
    def test_append_then_poll_roundtrip(self, tmp_path):
        path = tmp_path / "memo.jsonl"
        writer = memo_at(path)
        reader = memo_at(path)
        writer.append("k1", (("Out", "i1"),), duration=0.5)
        assert reader.poll() == [("k1", (("Out", "i1"),), 0.5)]
        # the offset advanced: nothing new, nothing re-read
        assert reader.poll() == []
        writer.append("k2", (("Out", "i2"),))
        assert [k for k, _, _ in reader.poll()] == ["k2"]

    def test_missing_file_is_empty(self, tmp_path):
        assert memo_at(tmp_path / "never-written.jsonl").poll() == []

    def test_rewind_rereads_everything(self, tmp_path):
        path = tmp_path / "memo.jsonl"
        memo = memo_at(path)
        memo.append("k1", (("Out", "i1"),))
        assert len(memo.poll()) == 1
        memo.rewind()
        assert len(memo.poll()) == 1

    def test_wrong_signature_skipped(self, tmp_path):
        path = tmp_path / "memo.jsonl"
        memo_at(path, "other-code").append("k1", (("Out", "i1"),))
        memo_at(path).append("k2", (("Out", "i2"),))
        assert [k for k, _, _ in memo_at(path).poll()] == ["k2"]

    def test_wrong_schema_version_skipped(self, tmp_path):
        path = tmp_path / "memo.jsonl"
        with path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps({
                "key": "k1", "outputs": [["Out", "i1"]], "sig": SIG,
                "v": MEMO_SCHEMA_VERSION + 1}) + "\n")
        memo_at(path).append("k2", (("Out", "i2"),))
        assert [k for k, _, _ in memo_at(path).poll()] == ["k2"]

    def test_torn_tail_left_for_next_poll(self, tmp_path):
        path = tmp_path / "memo.jsonl"
        memo = memo_at(path)
        memo.append("k1", (("Out", "i1"),))
        reader = memo_at(path)
        # a writer died mid-line: no trailing newline
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "k2", "outp')
        assert [k for k, _, _ in reader.poll()] == ["k1"]
        # the torn line completes (as a valid record) later
        with path.open("a", encoding="utf-8") as handle:
            handle.write('uts": [["Out", "i2"]], "sig": "%s", '
                         '"v": %d, "duration": 0.0}\n'
                         % (SIG, MEMO_SCHEMA_VERSION))
        assert [k for k, _, _ in reader.poll()] == ["k2"]

    def test_garbage_lines_are_consumed_not_fatal(self, tmp_path):
        path = tmp_path / "memo.jsonl"
        path.write_text("not json\n\x00\xff garbage\n", encoding="utf-8",
                        errors="ignore")
        memo = memo_at(path)
        assert memo.poll() == []
        memo.append("k1", (("Out", "i1"),))
        assert [k for k, _, _ in memo.poll()] == ["k1"]


def _hammer(path, worker, count):
    memo = SharedDerivationMemo(path, lambda: SIG)
    for index in range(count):
        memo.append(f"w{worker}-k{index}",
                    (("Out", f"w{worker}-i{index}"),),
                    duration=0.001)


def _handshake(path, mine, theirs, status):
    memo = SharedDerivationMemo(path, lambda: SIG)
    memo.append(mine, (("Out", mine),))
    seen: set[str] = set()
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        seen.update(key for key, _, _ in memo.poll())
        if theirs in seen:
            status.put((mine, True))
            return
        time.sleep(0.01)
    status.put((mine, False))


class TestCrossProcess:
    def test_concurrent_writers_never_corrupt_the_log(self, tmp_path):
        path = tmp_path / "memo.jsonl"
        context = multiprocessing.get_context("fork")
        writers, per_writer = 4, 25
        processes = [context.Process(target=_hammer,
                                     args=(path, worker, per_writer))
                     for worker in range(writers)]
        for process in processes:
            process.start()
        for process in processes:
            process.join(60)
            assert process.exitcode == 0
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == writers * per_writer
        for line in lines:  # every line is a complete, valid record
            record = json.loads(line)
            assert record["sig"] == SIG
            assert record["v"] == MEMO_SCHEMA_VERSION
        polled = memo_at(path).poll()
        assert len(polled) == writers * per_writer
        assert len({key for key, _, _ in polled}) == writers * per_writer

    def test_two_processes_observe_each_other(self, tmp_path):
        path = tmp_path / "memo.jsonl"
        context = multiprocessing.get_context("fork")
        status = context.Queue()
        a = context.Process(target=_handshake,
                            args=(path, "key-a", "key-b", status))
        b = context.Process(target=_handshake,
                            args=(path, "key-b", "key-a", status))
        a.start()
        b.start()
        results = dict(status.get(timeout=60) for _ in range(2))
        a.join(60)
        b.join(60)
        assert results == {"key-a": True, "key-b": True}


def fan_env(tmp_path=None):
    builder = SchemaBuilder("fan")
    builder.data("Spec")
    builder.tool("Tool")
    builder.data("Out")
    builder.produced_by("Out", "Tool", inputs=[("src", "Spec")])
    env = DesignEnvironment(builder.build(), user="tester")
    env.install_tool(
        "Tool",
        encapsulation("fan-tool",
                      lambda ctx, ins: {"ok": ins["src"]["n"]}),
        name="t0")
    for index in range(4):
        env.install_data("Spec", {"n": index}, name=f"s{index}")
    return env


def fan_flow(env):
    tool = env.db.latest("Tool")
    specs = sorted((i for i in env.db.instances()
                    if i.entity_type == "Spec"),
                   key=lambda i: i.name)
    flow = env.new_flow("fan")
    for index, spec in enumerate(specs):
        spec_node = flow.place("Spec", label=f"s{index}")
        flow.bind(spec_node, spec.instance_id)
        out = flow.place("Out", label=f"o{index}")
        tool_node = flow.place("Tool", label=f"t{index}")
        flow.bind(tool_node, tool.instance_id)
        flow.connect(out, tool_node)
        flow.connect(out, spec_node, role="src")
    return flow


class TestCacheIntegration:
    def test_memo_populated_by_store(self, tmp_path):
        env = fan_env()
        env.enable_shared_memo(tmp_path / "memo.jsonl")
        env.run(fan_flow(env), cache="readwrite")
        lines = (tmp_path / "memo.jsonl").read_text().splitlines()
        assert len(lines) == 4

    def test_second_run_hits_via_memo_only(self, tmp_path):
        """Memo entries alone (no warm in-memory cache) produce hits."""
        env = fan_env()
        memo_path = tmp_path / "memo.jsonl"
        env.enable_shared_memo(memo_path)
        env.run(fan_flow(env), cache="readwrite")
        # a second cache over the same history, cold except for the memo
        from repro.execution import DerivationCache
        cold = DerivationCache(env.db, env.registry)
        cold.attach_shared_memo(memo_path)
        executor = env.executor()
        executor.cache = cold
        executor.cache_policy = "reuse"
        report = executor.execute(fan_flow(env))
        assert not report.results
        assert report.cache_hits == 4

    def test_foreign_instances_never_surface_as_hits(self, tmp_path):
        """Entries from a run whose records this history never received
        are unusable here — skipped, not treated as stale."""
        memo_path = tmp_path / "memo.jsonl"
        producer = fan_env()
        producer.enable_shared_memo(memo_path)
        producer.run(fan_flow(producer), cache="readwrite")
        # a different environment (fresh history, same tool code) sees
        # the entries but owns none of the recorded instances
        consumer = fan_env()
        consumer.enable_shared_memo(memo_path)
        report = consumer.run(fan_flow(consumer), cache="readwrite")
        assert len(report.results) == 4
        assert report.cache_hits == 0

    def test_signature_guard_rejects_changed_tool_code(self, tmp_path):
        memo_path = tmp_path / "memo.jsonl"
        env = fan_env()
        env.enable_shared_memo(memo_path)
        env.run(fan_flow(env), cache="readwrite")
        changed = DesignEnvironment(env.schema, user="tester")
        changed.install_tool(
            "Tool",
            encapsulation("fan-tool",
                          lambda ctx, ins: {"ok": -ins["src"]["n"]}),
            name="t0")
        memo = changed.cache.registry.signature  # sanity: differs
        assert memo() != env.registry.signature()
        foreign = SharedDerivationMemo(
            memo_path, lambda: changed.registry.signature())
        assert foreign.poll() == []


class TestDeterminism:
    def test_same_seed_chaos_matches_thread_scheduler(self):
        """Same flow + same-seed fault plan: thread-scheduled and
        process-pool execution leave identical history content."""
        def run(executor_of):
            env = fan_env()
            policy = ResiliencePolicy(retries=2, backoff_base=0.0,
                                      jitter=0.0)
            faults = FaultPlan([FaultSpec("Tool", 2),
                                FaultSpec("Tool", 4)], seed=9)
            report = executor_of(env, policy, faults).execute(
                fan_flow(env))
            digest = sorted((inst.entity_type, inst.data_ref)
                            for inst in env.db.instances())
            return digest, report.retries, faults.fired

        threaded = run(lambda env, policy, faults: env.scheduled_executor(
            machines=2, resilience=policy, faults=faults))
        pooled = run(lambda env, policy, faults: env.process_executor(
            workers=2, resilience=policy, faults=faults))
        assert threaded[0] == pooled[0]
        assert threaded[1] == pooled[1] == 2
        assert threaded[2] == pooled[2]
