"""Tests for whole-environment persistence and the CLI."""

import pytest

from repro.cli import main
from repro.errors import HistoryError
from repro.persistence import load_environment, save_environment
from repro.schema import standard as S
from repro.tools import register_standard_encapsulations
from tests.conftest import build_performance_flow


class TestEnvironmentPersistence:
    def test_roundtrip_preserves_everything(self, stocked_env, tmp_path):
        env = stocked_env
        flow, goal = build_performance_flow(
            env,
            netlist_id=env.netlist.instance_id,
            models_id=env.models.instance_id,
            stimuli_id=env.stimuli.instance_id,
            simulator_id=env.tools[S.SIMULATOR].instance_id)
        env.run(flow)
        for node in flow.nodes():
            node.unbind()
            node.produced = ()
        env.save_flow("simulate", flow, "standard simulation")
        directory = tmp_path / "proj"
        save_environment(env, directory)

        restored = load_environment(directory)
        assert restored.user == env.user
        assert len(restored.db) == len(env.db)
        assert restored.schema.name == env.schema.name
        assert "simulate" in restored.flow_catalog
        assert restored.flow_catalog.description("simulate") == \
            "standard simulation"
        # physical data survives, typed
        perf = restored.db.browse(S.PERFORMANCE)[-1]
        assert restored.db.data(perf).worst_delay_ns > 0

    def test_reloaded_environment_can_execute(self, stocked_env,
                                              tmp_path):
        env = stocked_env
        directory = tmp_path / "proj"
        save_environment(env, directory)
        restored = load_environment(directory)
        register_standard_encapsulations(restored)
        flow, goal = build_performance_flow(
            restored,
            netlist_id=restored.db.latest(S.NETLIST).instance_id,
            models_id=restored.db.latest(S.DEVICE_MODELS).instance_id,
            stimuli_id=restored.db.latest(S.STIMULI).instance_id,
            simulator_id=restored.db.latest(
                S.SIMULATOR, include_subtypes=False).instance_id)
        report = restored.run(flow)
        assert report.created
        # ids continue after the loaded ones, never colliding
        assert all(i not in env.db for i in report.created)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(HistoryError):
            load_environment(tmp_path / "nothing")

    def test_bad_format_rejected(self, tmp_path):
        directory = tmp_path / "bad"
        directory.mkdir()
        (directory / "environment.json").write_text('{"format": 99}')
        with pytest.raises(HistoryError):
            load_environment(directory)


class TestCli:
    def run(self, *argv: str) -> int:
        return main(list(argv))

    def test_init_info_browse(self, tmp_path, capsys):
        directory = str(tmp_path / "proj")
        assert self.run("init", directory, "--user", "cli") == 0
        assert self.run("info", directory) == 0
        output = capsys.readouterr().out
        assert "odyssey" in output
        assert self.run("browse", directory, "Simulator") == 0
        output = capsys.readouterr().out
        assert "Simulator#0001" in output

    def test_session_persists_across_invocations(self, tmp_path,
                                                 capsys):
        directory = str(tmp_path / "proj")
        self.run("init", directory)
        self.run("session", directory, "-c", "place Stimuli")
        capsys.readouterr()
        # a later invocation sees nothing new in the db (no instances
        # were installed), but the environment loads cleanly
        assert self.run("info", directory) == 0

    def test_session_script_file(self, tmp_path, capsys):
        directory = str(tmp_path / "proj")
        self.run("init", directory)
        script = tmp_path / "script.txt"
        script.write_text("place Performance\npopup n0\n")
        assert self.run("session", directory, "--script",
                        str(script)) == 0
        output = capsys.readouterr().out
        assert "placed Performance[n0]" in output
        assert "Expand" in output

    def test_stale_exit_codes(self, tmp_path, capsys):
        directory = str(tmp_path / "proj")
        self.run("init", directory)
        assert self.run("stale", directory) == 0
        assert "up to date" in capsys.readouterr().out

    def test_history_and_uses(self, tmp_path, capsys, stocked_env):
        env = stocked_env
        flow, goal = build_performance_flow(
            env,
            netlist_id=env.netlist.instance_id,
            models_id=env.models.instance_id,
            stimuli_id=env.stimuli.instance_id,
            simulator_id=env.tools[S.SIMULATOR].instance_id)
        env.run(flow)
        directory = str(tmp_path / "proj")
        save_environment(env, directory)
        assert self.run("history", directory, goal.produced[0]) == 0
        output = capsys.readouterr().out
        assert env.netlist.instance_id in output
        assert self.run("uses", directory, env.netlist.instance_id,
                        "Performance") == 0
        output = capsys.readouterr().out
        assert goal.produced[0] in output

    def test_schema_dot(self, tmp_path, capsys):
        directory = str(tmp_path / "proj")
        self.run("init", directory, "--schema", "fig1")
        assert self.run("schema", directory) == 0
        assert "digraph" in capsys.readouterr().out

    def test_error_exit_code(self, tmp_path, capsys):
        directory = str(tmp_path / "proj")
        self.run("init", directory)
        assert self.run("history", directory, "Ghost#9999") == 2
        assert "error:" in capsys.readouterr().err

    def test_stats_command(self, tmp_path, capsys):
        directory = str(tmp_path / "proj")
        self.run("init", directory)
        assert self.run("stats", directory) == 0
        output = capsys.readouterr().out
        assert "history statistics:" in output
        assert "installed" in output

    def test_retrace_command(self, tmp_path, capsys, stocked_env):
        from repro.tools import edit_session

        env = stocked_env
        flow, goal = build_performance_flow(
            env,
            netlist_id=env.netlist.instance_id,
            models_id=env.models.instance_id,
            stimuli_id=env.stimuli.instance_id,
            simulator_id=env.tools[S.SIMULATOR].instance_id)
        env.run(flow)
        session = edit_session(env, S.CIRCUIT_EDITOR, [
            {"op": "rename", "name": "v2"}], name="s")
        edit_flow, edit_goal = env.goal_flow(S.EDITED_NETLIST)
        edit_flow.expand(edit_goal, include_optional=["previous"])
        previous = edit_flow.graph.data_suppliers(
            edit_goal.node_id)["previous"]
        edit_flow.bind(edit_flow.node(previous),
                       env.netlist.instance_id)
        edit_flow.bind(edit_flow.sole_node_of_type(S.CIRCUIT_EDITOR),
                       session.instance_id)
        env.run(edit_flow)
        directory = str(tmp_path / "proj")
        save_environment(env, directory)
        perf_id = goal.produced[0]
        assert self.run("stale", directory) == 1
        out = capsys.readouterr().out
        assert perf_id in out
        assert self.run("retrace", directory, perf_id) == 0
        out = capsys.readouterr().out
        assert "retraced" in out
        # the retrace was persisted: the reloaded environment holds a
        # fresh performance derived from the new netlist version
        from repro.history import is_up_to_date

        reloaded = load_environment(directory)
        fresh = reloaded.db.browse(S.PERFORMANCE)[-1]
        assert fresh.instance_id != perf_id
        assert is_up_to_date(reloaded.db, fresh.instance_id)
