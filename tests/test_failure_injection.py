"""Failure injection: the framework under misbehaving tools and data.

The history database is the ground truth of the design process, so the
key property under failure is *atomicity*: a failed invocation records
nothing, completed upstream invocations keep their results, and a repaired
re-run continues from the cache instead of redoing work.
"""

import pytest

from repro.errors import (EncapsulationError, ExecutionError, HistoryError)
from repro.execution import DesignEnvironment, encapsulation
from repro.schema import standard as S


@pytest.fixture
def env(schema, clock) -> DesignEnvironment:
    return DesignEnvironment(schema, user="chaos", clock=clock)


def extraction_flow(env, extractor_id):
    layout = env.install_data(S.EDITED_LAYOUT, {"l": 1})
    flow = env.new_flow("f")
    netlist = flow.place(S.EXTRACTED_NETLIST)
    flow.expand(netlist)
    flow.bind(flow.sole_node_of_type(S.LAYOUT), layout.instance_id)
    flow.bind(flow.sole_node_of_type(S.EXTRACTOR), extractor_id)
    return flow, netlist


class TestToolCrashes:
    def test_failed_invocation_records_nothing(self, env):
        def broken(ctx, inputs):
            raise RuntimeError("segfault, probably")

        tool = env.install_tool(S.EXTRACTOR,
                                encapsulation("broken", broken))
        flow, netlist = extraction_flow(env, tool.instance_id)
        before = len(env.db)
        with pytest.raises(RuntimeError):
            env.run(flow)
        assert len(env.db) == before  # nothing half-recorded
        assert netlist.produced == ()

    def test_upstream_results_survive_downstream_crash(self, env):
        calls = {"count": 0}

        def extract_ok(ctx, inputs):
            calls["count"] += 1
            return {t: {"made": t} for t in ctx.output_types}

        def simulate_broken(ctx, inputs):
            raise RuntimeError("license server down")

        env.install_tool(S.EXTRACTOR, encapsulation("x", extract_ok),
                         name="x")
        env.install_tool(S.SIMULATOR,
                         encapsulation("s", simulate_broken), name="s")
        layout = env.install_data(S.EDITED_LAYOUT, {"l": 1})
        models = env.install_data(S.DEVICE_MODELS, {"m": 1})
        stim = env.install_data(S.STIMULI, [[0]])
        flow, goal = env.goal_flow(S.PERFORMANCE)
        flow.expand(goal)
        circuit = flow.sole_node_of_type(S.CIRCUIT)
        flow.expand(circuit)
        netlist = flow.sole_node_of_type(S.NETLIST)
        flow.specialize(netlist, S.EXTRACTED_NETLIST)
        flow.expand(netlist)
        flow.bind(flow.sole_node_of_type(S.LAYOUT), layout.instance_id)
        flow.bind(flow.sole_node_of_type(S.DEVICE_MODELS),
                  models.instance_id)
        flow.bind(flow.sole_node_of_type(S.STIMULI), stim.instance_id)
        flow.bind(flow.sole_node_of_type(S.EXTRACTOR),
                  env.db.latest(S.EXTRACTOR).instance_id)
        flow.bind(flow.sole_node_of_type(S.SIMULATOR),
                  env.db.latest(S.SIMULATOR).instance_id)
        with pytest.raises(RuntimeError, match="license"):
            env.run(flow)
        # extraction and composition succeeded and are in the history
        assert netlist.produced
        assert len(env.db.browse(S.EXTRACTED_NETLIST)) == 1
        assert len(env.db.browse(S.PERFORMANCE)) == 0

        # repair the simulator and re-run: cached results are reused
        env.registry.register_for_instance(
            env.db.latest(S.SIMULATOR).instance_id,
            encapsulation("fixed", lambda ctx, ins: {"ok": True}))
        extract_calls_before = calls["count"]
        report = env.run(flow)
        assert calls["count"] == extract_calls_before  # not re-run
        assert goal.produced
        assert len(report.results) == 1  # only the repaired simulation

    def test_partial_fanout_crash(self, env):
        """A crash mid-fan-out keeps the combos that completed."""
        state = {"runs": 0}

        def flaky(ctx, inputs):
            state["runs"] += 1
            if state["runs"] == 2:
                raise RuntimeError("disk full")
            return {t: {"n": state["runs"]} for t in ctx.output_types}

        tool = env.install_tool(S.EXTRACTOR,
                                encapsulation("flaky", flaky))
        layouts = [env.install_data(S.EDITED_LAYOUT, {"l": i})
                   for i in range(3)]
        flow = env.new_flow("fan")
        netlist = flow.place(S.EXTRACTED_NETLIST)
        flow.expand(netlist)
        flow.bind(flow.sole_node_of_type(S.LAYOUT),
                  *[layout.instance_id for layout in layouts])
        flow.bind(flow.sole_node_of_type(S.EXTRACTOR),
                  tool.instance_id)
        with pytest.raises(RuntimeError, match="disk full"):
            env.run(flow)
        # the first combo completed and is in the history
        assert len(env.db.browse(S.EXTRACTED_NETLIST)) == 1


class TestBadEncapsulations:
    def test_missing_output_type_rejected(self, env):
        def half(ctx, inputs):
            return {S.EXTRACTED_NETLIST: {"only": "one"}}  # stats missing

        tool = env.install_tool(S.EXTRACTOR, encapsulation("half", half))
        layout = env.install_data(S.EDITED_LAYOUT, {})
        flow = env.new_flow("f")
        netlist = flow.place(S.EXTRACTED_NETLIST)
        stats = flow.graph.add_node(S.EXTRACTION_STATISTICS)
        flow.expand(netlist)
        flow.connect(stats, flow.sole_node_of_type(S.EXTRACTOR))
        flow.connect(stats, flow.sole_node_of_type(S.LAYOUT),
                     role="layout")
        flow.bind(flow.sole_node_of_type(S.LAYOUT), layout.instance_id)
        flow.bind(flow.sole_node_of_type(S.EXTRACTOR),
                  tool.instance_id)
        with pytest.raises(ExecutionError, match="must return a dict"):
            env.run(flow)

    def test_unregistered_tool_type(self, env):
        layout = env.install_data(S.EDITED_LAYOUT, {})
        tool = env.db.install(S.EXTRACTOR, {}, name="bare")
        flow, netlist = extraction_flow(env, tool.instance_id)
        with pytest.raises(EncapsulationError, match="no encapsulation"):
            env.run(flow)

    def test_unserializable_result_rejected(self, env):
        class Mystery:
            pass

        def weird(ctx, inputs):
            return {t: Mystery() for t in ctx.output_types}

        tool = env.install_tool(S.EXTRACTOR,
                                encapsulation("weird", weird))
        flow, netlist = extraction_flow(env, tool.instance_id)
        before = len(env.db)
        with pytest.raises(HistoryError, match="no codec"):
            env.run(flow)
        assert len(env.db) == before
        assert netlist.produced == ()


class TestParallelFailures:
    def test_other_branches_complete(self, env):
        import threading

        gate = threading.Event()

        def good(ctx, inputs):
            gate.wait(timeout=2)
            return {t: {"ok": True} for t in ctx.output_types}

        def bad(ctx, inputs):
            gate.set()
            raise RuntimeError("branch down")

        good_tool = env.install_tool(S.EXTRACTOR,
                                     encapsulation("good", good),
                                     name="good")
        bad_tool = env.db.install(S.EXTRACTOR, {}, name="bad")
        env.registry.register_for_instance(bad_tool.instance_id,
                                           encapsulation("bad", bad))
        flow = env.new_flow("two")
        for tool in (good_tool, bad_tool):
            layout = env.install_data(S.EDITED_LAYOUT,
                                      {"for": tool.instance_id})
            netlist = flow.place(S.EXTRACTED_NETLIST)
            unexpanded = [n for n in flow.nodes()
                          if n.entity_type == S.EXTRACTED_NETLIST
                          and not flow.graph.is_expanded(n.node_id)]
            flow.expand(unexpanded[0])
            unbound_layouts = [n for n in flow.nodes()
                               if n.entity_type == S.LAYOUT
                               and not n.is_bound]
            flow.bind(unbound_layouts[0], layout.instance_id)
            unbound_tools = [n for n in flow.nodes()
                             if n.entity_type == S.EXTRACTOR
                             and not n.is_bound]
            flow.bind(unbound_tools[0], tool.instance_id)
        executor = env.parallel_executor(machines=2)
        with pytest.raises(RuntimeError, match="branch down"):
            executor.execute(flow)
        # the good branch finished and recorded its result
        assert len(env.db.browse(S.EXTRACTED_NETLIST)) == 1
