"""Tests for the DesignEnvironment façade and standard tool wiring."""

import pytest

from repro.errors import ConsistencyError, SchemaError
from repro.execution import DesignEnvironment, encapsulation
from repro.schema import standard as S
from repro.schema.standard import fig1_schema
from repro.tools import (install_standard_tools,
                         register_standard_encapsulations)
from tests.conftest import build_performance_flow


class TestEnvironmentBasics:
    def test_validates_schema_on_creation(self, clock):
        from repro.schema.dependency import data_dep
        from repro.schema.entity import data
        from repro.schema.schema import TaskSchema

        broken = TaskSchema("broken")
        broken.add_entity(data("A"))
        broken.add_entity(data("B"))
        broken.add_dependency(data_dep("A", "B"))
        broken.add_dependency(data_dep("B", "A"))
        with pytest.raises(Exception):
            DesignEnvironment(broken, clock=clock)

    def test_install_tool_with_encapsulation(self, schema, clock):
        env = DesignEnvironment(schema, clock=clock)
        instance = env.install_tool(
            S.PLOTTER, encapsulation("p", lambda ctx, ins: "x"),
            name="plot9000", comment="fresh install")
        assert instance.entity_type == S.PLOTTER
        assert env.registry.has_encapsulation(S.PLOTTER)
        assert env.db.get(instance.instance_id).comment == \
            "fresh install"

    def test_install_data_with_annotations(self, schema, clock):
        env = DesignEnvironment(schema, clock=clock)
        instance = env.install_data(S.STIMULI, [[1]], name="v",
                                    annotations={"origin": "vendor"})
        assert instance.annotation_map()["origin"] == "vendor"

    def test_catalogs_views(self, schema, clock):
        env = DesignEnvironment(schema, clock=clock)
        assert len(env.tool_catalog) == len(schema.tools())
        assert len(env.entity_catalog) == len(schema)
        assert S.NETLIST in env.data_type_catalog.names()
        assert repr(env).startswith("DesignEnvironment(")

    def test_save_and_plan_flow(self, schema, clock):
        env = DesignEnvironment(schema, clock=clock)
        flow, goal = env.goal_flow(S.PERFORMANCE)
        flow.expand(goal)
        env.save_flow("sim", flow, "simulate something")
        fresh = env.plan_flow("sim")
        assert len(fresh.nodes()) == len(flow.nodes())
        assert fresh is not flow
        with pytest.raises(SchemaError):
            env.save_flow("sim", flow)  # duplicate name

    def test_data_flow_accepts_id_or_instance(self, stocked_env):
        env = stocked_env
        by_instance, node_a = env.data_flow(env.netlist)
        by_id, node_b = env.data_flow(env.netlist.instance_id)
        assert node_a.bindings == node_b.bindings

    def test_retrace_on_current_instance_raises(self, stocked_env):
        with pytest.raises(ConsistencyError):
            stocked_env.retrace(stocked_env.netlist)


class TestStandardToolWiring:
    def test_fig1_subset_installs(self, clock):
        env = DesignEnvironment(fig1_schema(), clock=clock)
        tools = install_standard_tools(env)
        assert S.SIMULATOR in tools
        assert S.SIM_COMPILER not in tools       # not in fig1
        assert S.OPTIMIZER not in tools
        assert env.registry.has_encapsulation(S.VERIFIER)

    def test_register_encapsulations_is_idempotent(self, schema, clock):
        env = DesignEnvironment(schema, clock=clock)
        register_standard_encapsulations(env)
        first = env.registry.resolve(S.SIMULATOR)
        register_standard_encapsulations(env)
        assert env.registry.resolve(S.SIMULATOR) is first

    def test_custom_registration_survives(self, schema, clock):
        env = DesignEnvironment(schema, clock=clock)
        mine = encapsulation("mine", lambda ctx, ins: None)
        env.registry.register(S.SIMULATOR, mine)
        register_standard_encapsulations(env)
        assert env.registry.resolve(S.SIMULATOR) is mine

    def test_installed_tools_have_library_data(self, env):
        extractor = env.tools[S.EXTRACTOR]
        data = env.db.data(extractor)
        from repro.tools import CellLibrary

        assert isinstance(data["library"], CellLibrary)

    def test_run_convenience_equals_executor(self, stocked_env):
        env = stocked_env
        flow, goal = build_performance_flow(
            env,
            netlist_id=env.netlist.instance_id,
            models_id=env.models.instance_id,
            stimuli_id=env.stimuli.instance_id,
            simulator_id=env.tools[S.SIMULATOR].instance_id)
        report = env.run(flow)
        assert goal.produced
        assert report.created_of_node(goal.node_id) == goal.produced


class TestDecomposition:
    def test_decompose_derived_circuit(self, stocked_env):
        env = stocked_env
        flow, goal = build_performance_flow(
            env,
            netlist_id=env.netlist.instance_id,
            models_id=env.models.instance_id,
            stimuli_id=env.stimuli.instance_id,
            simulator_id=env.tools[S.SIMULATOR].instance_id)
        env.run(flow)
        circuit = env.db.browse(S.CIRCUIT)[-1]
        parts = env.decompose(circuit)
        assert parts["netlist"].instance_id == env.netlist.instance_id
        assert parts["models"].instance_id == env.models.instance_id

    def test_decompose_installed_composite(self, stocked_env):
        env = stocked_env
        from repro.tools import default_models

        composite = env.install_data(
            S.CIRCUIT,
            {"models": default_models(),
             "netlist": env.db.data(env.netlist)},
            name="imported")
        parts = env.decompose(composite.instance_id)
        assert parts["models"].entity_type == S.DEVICE_MODELS
        assert parts["netlist"].entity_type == S.NETLIST
        assert parts["netlist"].annotation_map()[
            "decomposed-from"] == composite.instance_id
        # the part data is the component data
        assert env.db.data(parts["netlist"]) == env.db.data(env.netlist)

    def test_non_composed_rejected(self, stocked_env):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            stocked_env.decompose(stocked_env.netlist)
