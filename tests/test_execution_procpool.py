"""Process-pool executor: equivalence, resilience, queue-wait semantics.

The procpool tier must be observably interchangeable with the
in-process executors — same history digests, same resilience contract —
while actually running tools in forked worker processes.  These tests
pin that equivalence plus the process-specific behaviours: watchdog
kills of hung workers, respawn after worker death, and the
coordinator-clock queue-wait accounting.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import ExecutionError, ToolError
from repro.execution import (DesignEnvironment, FaultPlan, FaultSpec,
                             ResiliencePolicy, encapsulation)
from repro.schema.builder import SchemaBuilder

SLEEP = 0.03


def fan_schema():
    builder = SchemaBuilder("fan")
    builder.data("Spec")
    builder.tool("Tool")
    builder.data("Out")
    builder.produced_by("Out", "Tool", inputs=[("src", "Spec")])
    return builder.build()


def fan_env(sleep: float = 0.0, tool_fn=None) -> DesignEnvironment:
    env = DesignEnvironment(fan_schema(), user="tester")

    def default_fn(ctx, inputs):
        if sleep:
            time.sleep(sleep)
        return {"ok": inputs["src"]["n"]}

    env.install_tool("Tool", encapsulation("fan-tool",
                                           tool_fn or default_fn),
                     name="t0")
    for index in range(4):
        env.install_data("Spec", {"n": index}, name=f"s{index}")
    return env


def fan_flow(env: DesignEnvironment):
    """Four independent Spec -> Tool -> Out branches in one flow."""
    tool = env.db.latest("Tool")
    specs = sorted((i for i in env.db.instances()
                    if i.entity_type == "Spec"),
                   key=lambda i: i.name)
    flow = env.new_flow("fan")
    for index, spec in enumerate(specs):
        spec_node = flow.place("Spec", label=f"s{index}")
        flow.bind(spec_node, spec.instance_id)
        out = flow.place("Out", label=f"o{index}")
        tool_node = flow.place("Tool", label=f"t{index}")
        flow.bind(tool_node, tool.instance_id)
        flow.connect(out, tool_node)
        flow.connect(out, spec_node, role="src")
    return flow


def digest(env: DesignEnvironment):
    return sorted((inst.entity_type, inst.data_ref)
                  for inst in env.db.instances())


class TestEquivalence:
    def test_same_history_as_sequential(self):
        a = fan_env()
        a.run(fan_flow(a))
        b = fan_env()
        report = b.process_executor(workers=2).execute(fan_flow(b))
        assert len(report.results) == 4
        assert digest(a) == digest(b)

    def test_results_report_worker_machines(self):
        env = fan_env()
        report = env.process_executor(workers=2).execute(fan_flow(env))
        machines = {r.machine for r in report.results}
        assert machines <= {"worker0", "worker1"}

    def test_worker_count_must_be_positive(self):
        env = fan_env()
        with pytest.raises(ExecutionError):
            env.process_executor(workers=0)

    def test_composition_matches_sequential(self, stocked_env):
        from tests.conftest import build_performance_flow

        def performance(env):
            return build_performance_flow(
                env,
                netlist_id=env.netlist.instance_id,
                models_id=env.models.instance_id,
                stimuli_id=env.stimuli.instance_id,
                simulator_id=env.db.latest("Simulator").instance_id)

        flow, goal = performance(stocked_env)
        report = stocked_env.process_executor(workers=2).execute(flow)
        assert goal.produced
        assert [r.tool_type for r in report.results] == [None,
                                                         "Simulator"]

    def test_cache_reuse_across_runs(self):
        env = fan_env()
        first = env.process_executor(
            workers=2, cache="readwrite").execute(fan_flow(env))
        assert len(first.results) == 4
        second = env.process_executor(
            workers=2, cache="readwrite").execute(fan_flow(env))
        assert not second.results
        assert second.cache_hits == 4

    def test_skips_already_produced_nodes(self):
        env = fan_env()
        flow = fan_flow(env)
        env.process_executor(workers=2).execute(flow)
        again = env.process_executor(workers=2).execute(flow)
        assert not again.results
        assert len(again.skipped) == 4


class TestResilience:
    def test_transient_crash_is_retried(self):
        env = fan_env()
        policy = ResiliencePolicy(retries=2, backoff_base=0.0,
                                  jitter=0.0)
        faults = FaultPlan([FaultSpec("Tool", 2)], seed=1)
        report = env.process_executor(
            workers=2, resilience=policy,
            faults=faults).execute(fan_flow(env))
        assert len(report.results) == 4
        assert report.retries == 1
        assert faults.fired == (("Tool", 2, "crash"),)

    def test_hang_trips_watchdog_and_recovers(self):
        env = fan_env(sleep=0.005)
        policy = ResiliencePolicy(retries=2, timeout=0.5,
                                  backoff_base=0.0, jitter=0.0)
        faults = FaultPlan([FaultSpec("Tool", 1, kind="hang",
                                      delay=30.0)], seed=1)
        started = time.perf_counter()
        report = env.process_executor(
            workers=2, resilience=policy,
            faults=faults).execute(fan_flow(env))
        elapsed = time.perf_counter() - started
        # the hung worker was killed at the 0.5s budget, not after 30s
        assert elapsed < 10.0
        assert len(report.results) == 4
        assert report.timeouts == 1
        assert report.retries == 1

    def test_worker_death_is_transient_and_respawned(self, tmp_path):
        flag = tmp_path / "died-once"

        def suicidal(ctx, inputs):
            if not flag.exists():
                flag.write_text("x")
                os._exit(17)  # hard worker death, no cleanup
            return {"ok": inputs["src"]["n"]}

        env = fan_env(tool_fn=suicidal)
        policy = ResiliencePolicy(retries=2, backoff_base=0.0,
                                  jitter=0.0)
        report = env.process_executor(
            workers=1, resilience=policy).execute(fan_flow(env))
        assert len(report.results) == 4
        assert report.retries >= 1

    def test_permanent_crash_aborts_without_degrade(self):
        env = fan_env()
        policy = ResiliencePolicy(retries=2, backoff_base=0.0,
                                  jitter=0.0)
        faults = FaultPlan([FaultSpec("Tool", 1, transient=False)],
                           seed=1)
        with pytest.raises(ToolError) as caught:
            env.process_executor(
                workers=2, resilience=policy,
                faults=faults).execute(fan_flow(env))
        # classification survives the process boundary
        assert caught.value.repro_classification == "permanent"
        assert caught.value.repro_attempts == 1

    def test_quarantine_opens_across_workers(self):
        env = fan_env()
        policy = ResiliencePolicy(degrade=True, quarantine_after=2)
        faults = FaultPlan([FaultSpec("Tool", i, transient=False)
                            for i in (1, 2, 3, 4)], seed=1)
        report = env.process_executor(
            workers=1, resilience=policy,
            faults=faults).execute(fan_flow(env))
        assert not report.results
        assert report.quarantined == ["Tool"]
        classifications = [f.classification for f in report.failures]
        assert "quarantined" in classifications

    def test_unpicklable_result_is_a_tool_failure(self):
        def opaque(ctx, inputs):
            return {"fn": lambda: None}  # cannot cross the pipe

        env = fan_env(tool_fn=opaque)
        with pytest.raises(ExecutionError):
            env.process_executor(workers=1).execute(fan_flow(env))


class TestQueueWait:
    """Queue-wait accounting: regression-pins BOTH semantics.

    The thread scheduler measures the wait at claim time *inside* its
    condition lock, so time spent contending for the claim lock itself
    is attributed to the winning task's wait.  The procpool coordinator
    measures on its own clock *after* releasing the lock — the wait
    ends when dispatch actually starts.  Both must agree on the
    invariants that matter: a single-lane run of independent equal
    tasks accumulates roughly 0+1+2+3 task-lengths of wait, and tool
    durations never include any of it.
    """

    def _assert_wait_profile(self, report):
        assert len(report.results) == 4
        total_wait = report.queue_wait_time
        # 4 equal tasks on one lane: waits ~ 0+1+2+3 sleeps = 6 sleeps
        assert total_wait > 3 * SLEEP
        # durations are pure tool time, the wait is accounted apart
        for result in report.results:
            assert result.duration < 3 * SLEEP
        assert report.serial_time < 4 * 3 * SLEEP

    def test_procpool_single_worker_accumulates_wait(self):
        env = fan_env(sleep=SLEEP)
        report = env.process_executor(workers=1).execute(fan_flow(env))
        self._assert_wait_profile(report)

    def test_scheduled_single_machine_accumulates_wait(self):
        env = fan_env(sleep=SLEEP)
        report = env.scheduled_executor(machines=1).execute(
            fan_flow(env))
        self._assert_wait_profile(report)

    def test_procpool_parallel_run_waits_less_than_serial(self):
        serial_env = fan_env(sleep=SLEEP)
        serial = serial_env.process_executor(workers=1).execute(
            fan_flow(serial_env))
        wide_env = fan_env(sleep=SLEEP)
        wide = wide_env.process_executor(workers=4).execute(
            fan_flow(wide_env))
        assert wide.queue_wait_time < serial.queue_wait_time
