"""Tests for the ``repro events`` CLI and the CI pipeline config."""

import json
import pathlib

import pytest

from repro.cli import main
from repro.obs import JSONLSink, read_events
from repro.persistence import save_environment
from repro.schema import standard as S
from tests.conftest import build_performance_flow


@pytest.fixture
def event_log(stocked_env, tmp_path) -> pathlib.Path:
    """A saved environment directory plus a recorded event log."""
    log = tmp_path / "run.jsonl"
    sink = JSONLSink(log)
    stocked_env.bus.subscribe(sink)
    flow, goal = build_performance_flow(
        stocked_env,
        netlist_id=stocked_env.netlist.instance_id,
        models_id=stocked_env.models.instance_id,
        stimuli_id=stocked_env.stimuli.instance_id,
        simulator_id=stocked_env.tools[S.SIMULATOR].instance_id)
    stocked_env.run(flow)
    sink.close()
    save_environment(stocked_env, tmp_path / "proj")
    return log


class TestEventsCommand:
    def run(self, *argv: str) -> int:
        return main(list(argv))

    def test_renders_all_events(self, event_log, capsys):
        assert self.run("events", str(event_log)) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == len(read_events(event_log))
        assert "flow_started" in out[0]
        assert "flow_finished" in out[-1]

    def test_type_filter(self, event_log, capsys):
        assert self.run("events", str(event_log),
                        "--type", "tool_finished") == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1
        assert "tool=Simulator" in out[0]

    def test_unknown_type_rejected(self, event_log, capsys):
        assert self.run("events", str(event_log),
                        "--type", "nonsense") == 2
        assert "unknown event type" in capsys.readouterr().err

    def test_tool_filter_and_tail(self, event_log, capsys):
        assert self.run("events", str(event_log), "--tool", "Simulator",
                        "--tail", "1") == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1

    def test_json_output_round_trips(self, event_log, capsys):
        assert self.run("events", str(event_log), "--json") == 0
        lines = capsys.readouterr().out.strip().splitlines()
        specs = [json.loads(line) for line in lines]
        assert [s["seq"] for s in specs] == sorted(
            s["seq"] for s in specs)
        assert all(s["schema_version"] == "obs.v1" for s in specs)

    def test_replay_summarizes_metrics(self, event_log, capsys):
        assert self.run("events", str(event_log), "--replay") == 0
        out = capsys.readouterr().out
        assert "execution metrics:" in out
        assert "Simulator" in out
        assert "1 started, 1 finished, 0 failed" in out

    def test_negative_tail_rejected(self, event_log, capsys):
        assert self.run("events", str(event_log), "--tail", "-1") == 2
        assert "--tail must be >= 0" in capsys.readouterr().err

    def test_zero_tail_shows_nothing(self, event_log, capsys):
        assert self.run("events", str(event_log), "--tail", "0") == 0
        assert capsys.readouterr().out == ""

    def test_missing_log_is_error(self, tmp_path, capsys):
        assert self.run("events", str(tmp_path / "none.jsonl")) == 2
        assert "error" in capsys.readouterr().err

    def test_stats_with_events(self, event_log, tmp_path, capsys):
        assert self.run("stats", str(tmp_path / "proj"),
                        "--events", str(event_log)) == 0
        out = capsys.readouterr().out
        assert "history statistics:" in out
        assert "execution metrics:" in out

    def test_session_records_events(self, tmp_path, capsys):
        directory = str(tmp_path / "cliproj")
        log = tmp_path / "session.jsonl"
        assert self.run("init", directory) == 0
        assert self.run("session", directory, "--events", str(log),
                        "-c", "new t", "-c", "place Netlist") == 0
        # nothing executed: flow construction alone emits no events,
        # and the lazy sink leaves no file behind
        assert not log.exists()


class TestCiPipelineConfig:
    """The workflow file must exist, parse, and run the tier-1 command."""

    WORKFLOW = pathlib.Path(__file__).parent.parent / ".github" \
        / "workflows" / "ci.yml"

    def test_workflow_parses_and_covers_tier1(self):
        yaml = pytest.importorskip("yaml")
        doc = yaml.safe_load(self.WORKFLOW.read_text(encoding="utf-8"))
        triggers = doc.get("on", doc.get(True))
        assert {"push", "pull_request"} <= set(triggers)
        jobs = doc["jobs"]
        assert {"lint", "test", "bench-smoke"} <= set(jobs)
        matrix = jobs["test"]["strategy"]["matrix"]["python-version"]
        assert matrix == ["3.10", "3.11", "3.12"]
        runs = [step.get("run", "") for step in jobs["test"]["steps"]]
        assert any("PYTHONPATH=src python -m pytest -x -q" in r
                   for r in runs)
        bench_steps = jobs["bench-smoke"]["steps"]
        assert any("benchmarks -q" in s.get("run", "")
                   for s in bench_steps)
        assert any("upload-artifact" in s.get("uses", "")
                   for s in bench_steps)

    def test_ruff_configured(self):
        tomllib = pytest.importorskip("tomllib")
        pyproject = pathlib.Path(__file__).parent.parent \
            / "pyproject.toml"
        with open(pyproject, "rb") as handle:
            config = tomllib.load(handle)
        ruff = config["tool"]["ruff"]
        assert ruff["line-length"] == 79
        assert ruff["target-version"] == "py310"
        assert "isort" in ruff["lint"]
        assert "ruff" in " ".join(
            config["project"]["optional-dependencies"]["dev"])
