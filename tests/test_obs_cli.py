"""Tests for the ``repro events`` CLI and the CI pipeline config."""

import json
import pathlib

import pytest

from repro.cli import main
from repro.obs import (JSONLSink, RunLedger, RunRecord, ToolRunStats,
                       read_events, timer_stats_of)
from repro.persistence import LEDGER_FILE, save_environment
from repro.schema import standard as S
from tests.conftest import build_performance_flow


@pytest.fixture
def event_log(stocked_env, tmp_path) -> pathlib.Path:
    """A saved environment directory plus a recorded event log."""
    log = tmp_path / "run.jsonl"
    sink = JSONLSink(log)
    stocked_env.bus.subscribe(sink)
    flow, goal = build_performance_flow(
        stocked_env,
        netlist_id=stocked_env.netlist.instance_id,
        models_id=stocked_env.models.instance_id,
        stimuli_id=stocked_env.stimuli.instance_id,
        simulator_id=stocked_env.tools[S.SIMULATOR].instance_id)
    stocked_env.run(flow)
    sink.close()
    save_environment(stocked_env, tmp_path / "proj")
    return log


class TestEventsCommand:
    def run(self, *argv: str) -> int:
        return main(list(argv))

    def test_renders_all_events(self, event_log, capsys):
        assert self.run("events", str(event_log)) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == len(read_events(event_log))
        assert "flow_started" in out[0]
        assert "flow_finished" in out[-1]

    def test_type_filter(self, event_log, capsys):
        assert self.run("events", str(event_log),
                        "--type", "tool_finished") == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1
        assert "tool=Simulator" in out[0]

    def test_unknown_type_rejected(self, event_log, capsys):
        assert self.run("events", str(event_log),
                        "--type", "nonsense") == 2
        assert "unknown event type" in capsys.readouterr().err

    def test_tool_filter_and_tail(self, event_log, capsys):
        assert self.run("events", str(event_log), "--tool", "Simulator",
                        "--tail", "1") == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1

    def test_json_output_round_trips(self, event_log, capsys):
        assert self.run("events", str(event_log), "--json") == 0
        lines = capsys.readouterr().out.strip().splitlines()
        specs = [json.loads(line) for line in lines]
        assert [s["seq"] for s in specs] == sorted(
            s["seq"] for s in specs)
        assert all(s["schema_version"] == "obs.v1" for s in specs)

    def test_replay_summarizes_metrics(self, event_log, capsys):
        assert self.run("events", str(event_log), "--replay") == 0
        out = capsys.readouterr().out
        assert "execution metrics:" in out
        assert "Simulator" in out
        assert "1 started, 1 finished, 0 failed" in out

    def test_negative_tail_rejected(self, event_log, capsys):
        assert self.run("events", str(event_log), "--tail", "-1") == 2
        assert "--tail must be >= 0" in capsys.readouterr().err

    def test_zero_tail_shows_nothing(self, event_log, capsys):
        assert self.run("events", str(event_log), "--tail", "0") == 0
        assert capsys.readouterr().out == ""

    def test_missing_log_is_error(self, tmp_path, capsys):
        assert self.run("events", str(tmp_path / "none.jsonl")) == 2
        assert "error" in capsys.readouterr().err

    def test_stats_with_events(self, event_log, tmp_path, capsys):
        assert self.run("stats", str(tmp_path / "proj"),
                        "--events", str(event_log)) == 0
        out = capsys.readouterr().out
        assert "history statistics:" in out
        assert "execution metrics:" in out

    def test_session_records_events(self, tmp_path, capsys):
        directory = str(tmp_path / "cliproj")
        log = tmp_path / "session.jsonl"
        assert self.run("init", directory) == 0
        assert self.run("session", directory, "--events", str(log),
                        "-c", "new t", "-c", "place Netlist") == 0
        # nothing executed: flow construction alone emits no events,
        # and the lazy sink leaves no file behind
        assert not log.exists()


def write_ledger(path: pathlib.Path, means, flow="f6") -> RunLedger:
    """A hand-built ledger: one run per mean Simulator duration."""
    ledger = RunLedger(path)
    for index, mean in enumerate(means):
        ledger.append(RunRecord(
            run_id=f"run{index:04d}", timestamp=float(index),
            flow=flow, executor="sequential", cache_policy="off",
            wall_time=mean, serial_time=mean, runs=1, created=1,
            tools={S.SIMULATOR: ToolRunStats(
                1, 1, timer_stats_of([mean]))}))
    return ledger


class TestHealthCommand:
    def run(self, *argv: str) -> int:
        return main(list(argv))

    def test_empty_ledger_reports_no_runs(self, tmp_path, capsys):
        assert self.run("health", str(tmp_path)) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_stable_ledger_passes(self, tmp_path, capsys):
        log = tmp_path / "ledger.jsonl"
        write_ledger(log, [0.1, 0.1, 0.1])
        assert self.run("health", str(log)) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "tool-duration-drift" in out

    def test_drift_flips_exit_code(self, tmp_path, capsys):
        log = tmp_path / "ledger.jsonl"
        write_ledger(log, [0.1, 0.1, 0.1, 0.5])
        assert self.run("health", str(log)) == 1
        assert "[FAIL] tool-duration-drift" in capsys.readouterr().out

    def test_json_report(self, tmp_path, capsys):
        log = tmp_path / "ledger.jsonl"
        write_ledger(log, [0.1, 0.1, 0.5])
        assert self.run("health", str(log), "--json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "fail"
        assert payload["baseline_runs"] == 2
        names = [c["name"] for c in payload["checks"]]
        assert "tool-duration-drift" in names

    def test_threshold_knobs_and_baselines(self, tmp_path, capsys):
        log = tmp_path / "ledger.jsonl"
        write_ledger(log, [0.1, 0.1, 0.5])
        # demanding a deeper baseline suppresses the gate
        assert self.run("health", str(log), "--min-samples", "5",
                        "--baselines") == 0
        assert "baselines:" in capsys.readouterr().out


class TestLedgerCommand:
    def run(self, *argv: str) -> int:
        return main(list(argv))

    def test_show_tail_and_json(self, tmp_path, capsys):
        log = tmp_path / "ledger.jsonl"
        write_ledger(log, [0.1, 0.2, 0.3])
        assert self.run("ledger", "show", str(log)) == 0
        assert len(capsys.readouterr().out.splitlines()) == 3
        assert self.run("ledger", "show", str(log), "--tail", "1",
                        "--json") == 0
        (line,) = capsys.readouterr().out.splitlines()
        assert json.loads(line)["run_id"] == "run0002"

    def test_show_filters_by_flow(self, tmp_path, capsys):
        log = tmp_path / "ledger.jsonl"
        write_ledger(log, [0.1])
        assert self.run("ledger", "show", str(log),
                        "--flow", "other") == 0
        assert capsys.readouterr().out == ""

    def test_compare_accepts_prefixes(self, tmp_path, capsys):
        log = tmp_path / "ledger.jsonl"
        write_ledger(log, [0.1, 0.4])
        assert self.run("ledger", "compare", str(log),
                        "run0000", "run0001") == 0
        out = capsys.readouterr().out
        assert "wall_time: 100.00ms -> 400.00ms (+300.0%)" in out
        assert f"tool {S.SIMULATOR} mean" in out

    def test_compare_ambiguous_prefix_is_error(self, tmp_path, capsys):
        log = tmp_path / "ledger.jsonl"
        write_ledger(log, [0.1, 0.2])
        assert self.run("ledger", "compare", str(log),
                        "run", "run0001") == 2
        assert "ambiguous" in capsys.readouterr().err

    def test_export_prometheus(self, tmp_path, capsys):
        log = tmp_path / "ledger.jsonl"
        write_ledger(log, [0.1, 0.2])
        assert self.run("ledger", "export", str(log)) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_runs_total counter" in out
        assert "repro_runs_total 2" in out
        assert 'flow="f6"' in out

    def test_export_json_to_file(self, tmp_path, capsys):
        log = tmp_path / "ledger.jsonl"
        write_ledger(log, [0.1, 0.2])
        target = tmp_path / "out.jsonl"
        assert self.run("ledger", "export", str(log), "--format",
                        "json", "-o", str(target)) == 0
        lines = target.read_text(encoding="utf-8").splitlines()
        assert [json.loads(li)["run_id"] for li in lines] == \
            ["run0000", "run0001"]


class TestLedgerEndToEnd:
    """The CLI writes, joins and reports the ledger of a real project."""

    def run(self, *argv: str) -> int:
        return main(list(argv))

    @pytest.fixture
    def proj(self, stocked_env, tmp_path) -> pathlib.Path:
        flow, goal = build_performance_flow(
            stocked_env,
            netlist_id=stocked_env.netlist.instance_id,
            models_id=stocked_env.models.instance_id,
            stimuli_id=stocked_env.stimuli.instance_id,
            simulator_id=stocked_env.tools[S.SIMULATOR].instance_id)
        stocked_env.save_flow("simulate", flow)
        directory = tmp_path / "ledgerproj"
        save_environment(stocked_env, directory)
        return directory

    def test_runs_append_and_stats_report(self, proj, capsys):
        for _ in range(2):
            assert self.run("run", str(proj), "simulate",
                            "--force") == 0
        records = RunLedger(proj / LEDGER_FILE).records()
        assert len(records) == 2
        assert records[0].flow == "simulate"
        capsys.readouterr()
        assert self.run("stats", str(proj), "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ledger"]["runs"] == 2
        assert payload["ledger"]["last"]["executor"] == "sequential"
        assert payload["history"]["instances"] > 0
        assert self.run("stats", str(proj)) == 0
        assert "run ledger: 2 recorded runs" in \
            capsys.readouterr().out

    def test_history_joins_run_record(self, proj, capsys):
        assert self.run("run", str(proj), "simulate", "--trace") == 0
        capsys.readouterr()
        assert self.run("history", str(proj), "Performance#0001") == 0
        out = capsys.readouterr().out
        assert "produced by run" in out
        assert "flow=simulate" in out

    def test_health_of_real_reruns_is_ok(self, proj, capsys):
        for _ in range(3):
            assert self.run("run", str(proj), "simulate",
                            "--force") == 0
        capsys.readouterr()
        assert self.run("health", str(proj)) == 0
        assert "OK" in capsys.readouterr().out


class TestCiPipelineConfig:
    """The workflow file must exist, parse, and run the tier-1 command."""

    WORKFLOW = pathlib.Path(__file__).parent.parent / ".github" \
        / "workflows" / "ci.yml"

    def test_workflow_parses_and_covers_tier1(self):
        yaml = pytest.importorskip("yaml")
        doc = yaml.safe_load(self.WORKFLOW.read_text(encoding="utf-8"))
        triggers = doc.get("on", doc.get(True))
        assert {"push", "pull_request"} <= set(triggers)
        jobs = doc["jobs"]
        assert {"lint", "test", "bench-smoke", "health-smoke"} <= \
            set(jobs)
        health_steps = jobs["health-smoke"]["steps"]
        assert any("check_health_smoke.py" in s.get("run", "")
                   for s in health_steps)
        matrix = jobs["test"]["strategy"]["matrix"]["python-version"]
        assert matrix == ["3.10", "3.11", "3.12"]
        runs = [step.get("run", "") for step in jobs["test"]["steps"]]
        assert any("PYTHONPATH=src python -m pytest -x -q" in r
                   for r in runs)
        bench_steps = jobs["bench-smoke"]["steps"]
        assert any("benchmarks -q" in s.get("run", "")
                   for s in bench_steps)
        assert any("upload-artifact" in s.get("uses", "")
                   for s in bench_steps)

    def test_ruff_configured(self):
        tomllib = pytest.importorskip("tomllib")
        pyproject = pathlib.Path(__file__).parent.parent \
            / "pyproject.toml"
        with open(pyproject, "rb") as handle:
            config = tomllib.load(handle)
        ruff = config["tool"]["ruff"]
        assert ruff["line-length"] == 79
        assert ruff["target-version"] == "py310"
        assert "isort" in ruff["lint"]
        assert "ruff" in " ".join(
            config["project"]["optional-dependencies"]["dev"])
