"""Tests for SPICE interchange, layout rendering, history statistics."""

import pytest

from repro.errors import ToolError
from repro.history import history_statistics, derivation_depth, trace_size
from repro.schema import standard as S
from repro.tools import (Netlist, from_spice, render_layout,
                         stdcell_layout, tech_map,
                         to_spice, truth_table)
from repro.tools.layout import Layout
from repro.tools.logic import LogicSpec
from tests.conftest import build_performance_flow


class TestSpice:
    def test_hierarchical_roundtrip(self, library, mux_spec):
        gates = tech_map(mux_spec)
        deck = to_spice(gates, library)
        assert ".subckt" in deck and ".ends" in deck
        restored = from_spice(deck, library)
        assert restored == gates

    def test_flat_roundtrip_preserves_widths_and_strength(self, library):
        from repro.tools import GROUND, NMOS, PMOS, POWER, WEAK

        n = Netlist("pn", inputs=("g",), outputs=("line",))
        n.add("load", PMOS, gate=GROUND, source=POWER, drain="line",
              width=1.5, length=2.0, strength=WEAK)
        n.add("pd", NMOS, gate="g", source=GROUND, drain="line",
              width=3.0)
        restored = from_spice(to_spice(n, library), library)
        assert restored == n
        assert restored.transistor("load").strength == WEAK
        assert restored.transistor("pd").width == 3.0

    def test_roundtrip_preserves_function(self, library, mux_spec):
        gates = tech_map(mux_spec).flatten(library)
        restored = from_spice(to_spice(gates, library), library)
        assert truth_table(restored) == truth_table(gates)

    def test_directions_roundtrip(self, library):
        n = Netlist("io", inputs=("a", "b"), outputs=("y", "z"))
        n.add("m", "nmos", gate="a", source="GND", drain="y")
        restored = from_spice(to_spice(n, library), library)
        assert restored.inputs == ("a", "b")
        assert restored.outputs == ("y", "z")

    def test_plain_subckt_without_direction_comments(self, library):
        deck = """
        .subckt thing a b y
        Mm1 y a GND GND nmos W=2 L=1
        .ends
        """
        restored = from_spice(deck, library)
        assert restored.inputs == ("a", "b", "y")  # all default to in
        assert restored.transistor("m1").width == 2.0

    @pytest.mark.parametrize("deck,message", [
        ("Mbad y a GND nmos\n.ends", "before .subckt"),
        (".subckt t a\nMbad y a\n.ends", "malformed transistor"),
        (".subckt t a\nXu1 a ghostcell\n.ends", "unknown cell"),
        (".subckt t a\nXu1 a inv\n.ends", "nets for"),
        (".subckt t a\nR1 a GND 100\n.ends", "unsupported"),
        ("* nothing here", "no .subckt"),
    ])
    def test_parse_errors(self, library, deck, message):
        with pytest.raises(ToolError, match=message):
            from_spice(deck, library)


class TestLayoutRender:
    def test_render_contains_cells_wires_pins(self, library):
        layout = stdcell_layout(
            LogicSpec.from_equations("f", "y = a & b"), library)
        art = render_layout(layout, library)
        assert "legend:" in art
        assert "+" in art          # wires
        assert "I" in art and "O" in art  # pins
        assert "n=nand2" in art

    def test_empty_layout(self, library):
        art = render_layout(Layout("void"), library)
        assert "(empty)" in art or "0 cells" in art

    def test_clipping(self, library):
        layout = Layout("wide")
        layout.place("far", "inv", 500, 0)
        layout.place("near", "inv", 0, 0)
        art = render_layout(layout, library, max_width=40)
        assert max(len(line) for line in art.splitlines()) <= 60

    def test_deterministic(self, library):
        layout = stdcell_layout(
            LogicSpec.from_equations("f", "y = a | b"), library)
        assert render_layout(layout, library) == \
            render_layout(layout, library)


class TestHistoryStatistics:
    def test_counts_and_depths(self, stocked_env):
        env = stocked_env
        flow, goal = build_performance_flow(
            env,
            netlist_id=env.netlist.instance_id,
            models_id=env.models.instance_id,
            stimuli_id=env.stimuli.instance_id,
            simulator_id=env.tools[S.SIMULATOR].instance_id)
        env.run(flow)
        stats = history_statistics(env.db)
        assert stats.instances == len(env.db)
        assert stats.derived == 2      # circuit + performance
        assert stats.installed == stats.instances - 2
        assert stats.instances_by_user["tester"] == stats.instances
        assert stats.tool_runs == {"cosmos": 1}
        assert stats.max_depth == 2   # performance <- circuit <- sources
        perf_id = goal.produced[0]
        assert derivation_depth(env.db, perf_id) == 2
        assert derivation_depth(
            env.db, env.netlist.instance_id) == 0
        assert trace_size(env.db, perf_id) == 6

    def test_dedup_counted(self, stocked_env):
        env = stocked_env
        env.install_data(S.STIMULI, [[9]], name="dup-a")
        env.install_data(S.STIMULI, [[9]], name="dup-b")
        stats = history_statistics(env.db)
        assert stats.shared_blob_instances >= 2
        assert stats.dedup_ratio > 1.0

    def test_render(self, stocked_env):
        text = history_statistics(stocked_env.db).render()
        assert "history statistics:" in text
        assert "by user:" in text
