"""Tests for logic specs, editors, device models, plotter, optimizer."""

import pytest

from repro.errors import ToolError
from repro.tools import (DeviceModels, Netlist, default_models,
                         edit_device_models, edit_layout, edit_logic,
                         edit_netlist, optimize, plot, simulate, tech_map,
                         truth_table)
from repro.tools.logic import LogicSpec, evaluate, parse_expr, variables
from repro.tools.plotter import PerformancePlot, waveform_line
from repro.tools.stimuli import exhaustive


class TestLogicExpressions:
    @pytest.mark.parametrize("text,assignment,value", [
        ("a & b", {"a": 1, "b": 1}, 1),
        ("a & b", {"a": 1, "b": 0}, 0),
        ("a | b", {"a": 0, "b": 1}, 1),
        ("~a", {"a": 1}, 0),
        ("~(a & b) | c", {"a": 1, "b": 1, "c": 1}, 1),
        ("a & b & c", {"a": 1, "b": 1, "c": 1}, 1),
        ("1", {}, 1),
        ("0 | a", {"a": 0}, 0),
    ])
    def test_parse_and_evaluate(self, text, assignment, value):
        assert evaluate(parse_expr(text), assignment) == value

    def test_precedence_and_over_or(self):
        expr = parse_expr("a | b & c")
        assert evaluate(expr, {"a": 0, "b": 1, "c": 0}) == 0
        assert evaluate(expr, {"a": 1, "b": 0, "c": 0}) == 1

    def test_variables(self):
        assert variables(parse_expr("a & (b | ~c)")) == {"a", "b", "c"}

    def test_parse_errors(self):
        for bad in ("a &", "(a", "a b", "a + b"):
            with pytest.raises(ToolError):
                parse_expr(bad)

    def test_unbound_variable(self):
        with pytest.raises(ToolError):
            evaluate(parse_expr("a"), {})


class TestLogicSpec:
    def test_from_equations_infers_inputs(self):
        spec = LogicSpec.from_equations("f", "y = a & b", "z = ~c")
        assert spec.inputs == ("a", "b", "c")
        assert spec.outputs == ("y", "z")

    def test_duplicate_output_rejected(self):
        with pytest.raises(ToolError):
            LogicSpec.from_equations("f", "y = a", "y = ~a")

    def test_undeclared_input_rejected(self):
        with pytest.raises(ToolError):
            LogicSpec("f", ("a",), (("y", parse_expr("a & b")),))

    def test_truth_table_and_minterms(self):
        spec = LogicSpec.from_equations("f", "y = a & b")
        assert spec.minterms("y") == ((1, 1),)
        assert len(spec.truth_table()) == 4

    def test_dict_roundtrip(self):
        spec = LogicSpec.from_equations("f", "y = ~(a | b)")
        restored = LogicSpec.from_dict(spec.to_dict())
        assert restored.truth_table() == spec.truth_table()

    def test_equation_missing_equals(self):
        with pytest.raises(ToolError):
            LogicSpec.from_equations("f", "y ~a")


class TestEditors:
    def test_layout_editor_from_scratch(self):
        layout = edit_layout([
            {"op": "rename", "name": "mine"},
            {"op": "place", "name": "u1", "cell": "inv", "x": 0, "y": 0},
            {"op": "route", "net": "a", "points": [[0, 1], [4, 1]]},
            {"op": "pin", "net": "a", "x": 0, "y": 1},
        ])
        assert layout.name == "mine"
        assert layout.cell_count == 1

    def test_layout_editor_edits_previous(self):
        first = edit_layout([
            {"op": "place", "name": "u1", "cell": "inv", "x": 0, "y": 0}])
        second = edit_layout([{"op": "move", "name": "u1", "x": 5,
                               "y": 5}], first)
        assert first.placement("u1").origin() == (0, 0)
        assert second.placement("u1").origin() == (5, 5)

    def test_layout_editor_unknown_op(self):
        with pytest.raises(ToolError):
            edit_layout([{"op": "teleport"}])

    def test_netlist_editor_new(self):
        netlist = edit_netlist([
            {"op": "new", "name": "n", "inputs": ["a"], "outputs": ["y"]},
            {"op": "add_transistor", "name": "m1", "kind": "nmos",
             "gate": "a", "source": "GND", "drain": "y"},
        ])
        assert netlist.device_count == 1

    def test_netlist_editor_requires_new_or_previous(self):
        with pytest.raises(ToolError):
            edit_netlist([{"op": "set_width", "name": "m", "width": 2}])

    def test_netlist_editor_edits(self):
        base = edit_netlist([
            {"op": "new", "name": "n", "inputs": ["a"], "outputs": ["y"]},
            {"op": "add_transistor", "name": "m1", "kind": "nmos",
             "gate": "a", "source": "GND", "drain": "y", "width": 1.0},
        ])
        edited = edit_netlist([
            {"op": "set_width", "name": "m1", "width": 4.0},
            {"op": "rename", "name": "n2"},
        ], base)
        assert edited.transistor("m1").width == 4.0
        assert base.transistor("m1").width == 1.0
        assert edited.name == "n2"

    def test_logic_editor(self):
        spec = edit_logic([
            {"op": "new", "name": "f"},
            {"op": "set", "equation": "y = a & b"},
        ])
        assert spec.outputs == ("y",)
        changed = edit_logic([{"op": "set", "equation": "y = a | b"}],
                             spec)
        assert changed.evaluate({"a": 0, "b": 1})["y"] == 1
        dropped = edit_logic([{"op": "drop", "output": "y"}], changed)
        assert dropped.outputs == ()

    def test_device_model_editor(self):
        models = edit_device_models([
            {"op": "set", "field": "stage_delay_ns", "value": 2.0},
            {"op": "rename", "name": "slow"},
        ])
        assert models.stage_delay_ns == 2.0
        assert models.name == "slow"
        with pytest.raises(ToolError):
            edit_device_models([{"op": "set", "field": "ghost",
                                 "value": 1}])


class TestDeviceModels:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceModels(vdd=-1)
        with pytest.raises(ValueError):
            DeviceModels(vth=9.0)
        with pytest.raises(ValueError):
            DeviceModels(weak_ratio=2.0)

    def test_scaled_corner(self):
        fast = default_models().scaled(speed=2.0)
        assert fast.stage_delay_ns == default_models().stage_delay_ns / 2

    def test_models_change_delay_metric(self, nand_spec, library):
        gates = tech_map(nand_spec)
        slow = default_models()
        fast = slow.scaled(speed=3.0)
        slow_report = simulate(gates, exhaustive(("a", "b")), slow,
                               library=library)
        fast_report = simulate(gates, exhaustive(("a", "b")), fast,
                               library=library)
        assert fast_report.worst_delay_ns < slow_report.worst_delay_ns

    def test_dict_roundtrip(self):
        models = default_models()
        assert DeviceModels.from_dict(models.to_dict()) == models


class TestPlotter:
    def test_plot_contains_waveforms_and_metrics(self, nand_spec,
                                                 library):
        gates = tech_map(nand_spec)
        report = simulate(gates, exhaustive(("a", "b")),
                          default_models(), library=library)
        rendered = plot(report)
        assert "worst delay" in rendered.text
        assert "y" in rendered.text
        assert rendered.circuit == report.circuit

    def test_waveform_line_glyphs(self):
        assert waveform_line(("0", "1", "X"), width=1) == "_#?"

    def test_plot_roundtrip(self):
        p = PerformancePlot("c", "s", "text")
        assert PerformancePlot.from_dict(p.to_dict()) == p


class TestOptimizer:
    def run(self, strategy, spec_overrides=None):
        spec = LogicSpec.from_equations("f", "y = ~(a & b)")
        gates = tech_map(spec)
        from repro.tools import standard_library

        library = standard_library()
        flat = gates.flatten(library)
        options = {"iterations": 12, "seed": 3}
        options.update(spec_overrides or {})
        return flat, *optimize(
            flat, default_models(),
            lambda n, s, m: simulate(n, s, m), options,
            strategy=strategy)

    @pytest.mark.parametrize("strategy", ["random", "coordinate",
                                          "annealing"])
    def test_strategies_preserve_function(self, strategy):
        original, tuned, cost, evaluations = self.run(strategy)
        assert truth_table(tuned) == truth_table(original)
        assert evaluations >= 1
        assert cost < 1e6  # no functional-failure penalty

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ToolError):
            self.run("gradient-descent")

    def test_width_bounds_respected(self):
        _, tuned, _, _ = self.run("random",
                                  {"width_bounds": [0.5, 2.0],
                                   "iterations": 10})
        for t in tuned.transistors():
            assert 0.5 <= t.width <= 2.0

    def test_optimizer_improves_or_equals_initial_cost(self):
        from repro.tools.optimizer import objective

        original, tuned, best_cost, _ = self.run("coordinate")
        base_spec = {"delay_weight": 1.0, "area_weight": 0.15,
                     "drive_coeff": 3.0}
        initial = objective(
            simulate(original, exhaustive(original.inputs),
                     default_models()),
            original, base_spec)
        assert best_cost <= initial + 1e-9

    def test_empty_netlist_rejected(self):
        empty = Netlist("empty", inputs=("a",), outputs=())
        with pytest.raises(ToolError):
            optimize(empty, default_models(),
                     lambda n, s, m: None, {})


class TestSimplify:
    @pytest.mark.parametrize("text,expected", [
        ("~~a", ["var", "a"]),
        ("~~~a", ["not", ["var", "a"]]),
        ("a & 1", ["var", "a"]),
        ("a & 0", ["const", 0]),
        ("a | 0", ["var", "a"]),
        ("a | 1", ["const", 1]),
        ("a & a", ["var", "a"]),
        ("a | ~a", ["const", 1]),
        ("a & ~a", ["const", 0]),
        ("~1", ["const", 0]),
    ])
    def test_rules(self, text, expected):
        from repro.tools.logic import parse_expr, simplify

        assert simplify(parse_expr(text)) == expected

    def test_flattening(self):
        from repro.tools.logic import parse_expr, simplify

        expr = simplify(parse_expr("a & (b & (c & d))"))
        assert expr[0] == "and" and len(expr) == 5

    def test_never_more_operators(self):
        from repro.tools.logic import (operator_count, parse_expr,
                                       simplify)

        for text in ("a & b | c", "~(a | ~b) & (a | ~b)",
                     "(a & 1) | (b & 0) | ~~c"):
            expr = parse_expr(text)
            assert operator_count(simplify(expr)) <= operator_count(expr)

    def test_tech_map_benefits(self, library):
        """Redundant logic maps to fewer gates after simplification."""
        from repro.tools import tech_map
        from repro.tools.logic import LogicSpec

        redundant = LogicSpec.from_equations(
            "r", "y = (a & b) | (a & b) | (~~a & b & 1)")
        minimal = LogicSpec.from_equations("m", "y = a & b")
        assert tech_map(redundant).instance_count == \
            tech_map(minimal).instance_count
        assert truth_table(tech_map(redundant), library) == \
            truth_table(tech_map(minimal), library)
