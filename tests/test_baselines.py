"""Tests for the section-2 baselines: static flows, traces, version trees."""

import pytest

from repro.baselines import (Activity, StaticFlow, StaticFlowManager,
                             TraceManager, VersionTreeManager,
                             version_tree_from_trace)
from repro.errors import BaselineError
from repro.history.instance import DerivationRecord
from repro.history.trace import forward_trace
from repro.schema import standard as S


@pytest.fixture
def static_world(stocked_env):
    env = stocked_env
    manager = StaticFlowManager(env.db, env.registry)
    extract_flow = StaticFlow(
        "extract-and-simulate",
        activities=(
            Activity("extract", S.EXTRACTED_NETLIST,
                     env.tools[S.EXTRACTOR].instance_id,
                     inputs=(("layout", "the-layout"),)),
            Activity("compose", S.CIRCUIT, "",
                     inputs=(("netlist", "@extract"),
                             ("models", "the-models"))),
            Activity("simulate", S.PERFORMANCE,
                     env.tools[S.SIMULATOR].instance_id,
                     inputs=(("circuit", "@compose"),
                             ("stimuli", "the-stimuli"))),
        ))
    return env, manager, extract_flow


class TestStaticFlowDefinition:
    def test_duplicate_labels_rejected(self, stocked_env):
        with pytest.raises(BaselineError):
            StaticFlow("f", activities=(
                Activity("a", S.CIRCUIT, ""),
                Activity("a", S.CIRCUIT, "")))

    def test_forward_reference_rejected(self, stocked_env):
        with pytest.raises(BaselineError):
            StaticFlow("f", activities=(
                Activity("first", S.CIRCUIT, "",
                         inputs=(("netlist", "@second"),)),
                Activity("second", S.EXTRACTED_NETLIST, "x")))

    def test_hardwired_tool_must_exist(self, static_world):
        env, manager, _ = static_world
        ghost = StaticFlow("g", activities=(
            Activity("step", S.EXTRACTED_NETLIST, "Extractor#9999",
                     inputs=(("layout", "l"),)),))
        with pytest.raises(Exception):
            manager.define_flow(ghost)

    def test_external_slots(self, static_world):
        _, _, flow = static_world
        assert set(flow.external_slots()) == {"the-layout", "the-models",
                                              "the-stimuli"}


class TestStaticFlowExecution:
    def install_layout(self, env):
        from repro.tools import edit_layout

        layout = edit_layout([
            {"op": "rename", "name": "L"},
            {"op": "place", "name": "u1", "cell": "inv", "x": 2,
             "y": 0},
            {"op": "pin", "net": "a", "x": 0, "y": 1,
             "direction": "in"},
            {"op": "pin", "net": "y", "x": 6, "y": 1,
             "direction": "out"},
            {"op": "route", "net": "a", "points": [[0, 1], [2, 1]]},
            {"op": "route", "net": "y", "points": [[3, 1], [6, 1]]},
        ])
        return env.install_data(S.EDITED_LAYOUT, layout, name="L")

    def test_executes_via_shared_machinery(self, static_world):
        env, manager, flow = static_world
        manager.define_flow(flow)
        layout = self.install_layout(env)
        from repro.tools import exhaustive

        stim = env.install_data(S.STIMULI, exhaustive(("a",)), name="sa")
        report = manager.execute(
            "extract-and-simulate",
            {"the-layout": layout.instance_id,
             "the-models": env.models.instance_id,
             "the-stimuli": stim.instance_id})
        assert len(report.results) == 3
        performance = env.db.browse(S.PERFORMANCE)[-1]
        assert env.db.data(performance).waveform("y") == ("1", "0")

    def test_straight_jacket_no_skipping(self, static_world):
        env, manager, flow = static_world
        manager.define_flow(flow)
        with pytest.raises(BaselineError, match="straight-jacket"):
            manager.execute("extract-and-simulate", {},
                            skip_steps=["extract"])

    def test_missing_external_inputs_rejected(self, static_world):
        env, manager, flow = static_world
        manager.define_flow(flow)
        with pytest.raises(BaselineError, match="missing external"):
            manager.execute("extract-and-simulate", {})


class TestStaticFlowMaintenance:
    def test_tool_replacement_touches_every_flow(self, static_world):
        """CLAIM-C observable: hardwiring creates maintenance work."""
        env, manager, flow = static_world
        manager.define_flow(flow)
        # five more flows referencing the same simulator
        for index in range(5):
            manager.define_flow(StaticFlow(
                f"sim-{index}", activities=(
                    Activity("simulate", S.PERFORMANCE,
                             env.tools[S.SIMULATOR].instance_id,
                             inputs=(("circuit", "c"),
                                     ("stimuli", "s"))),)))
        new_simulator = env.db.install(S.SIMULATOR, {}, name="spice2")
        edited = manager.replace_tool(
            env.tools[S.SIMULATOR].instance_id,
            new_simulator.instance_id)
        assert edited == 6
        assert manager.maintenance.flows_edited == 6
        assert manager.flows_referencing(
            new_simulator.instance_id) == tuple(sorted(
                ["extract-and-simulate"] + [f"sim-{i}" for i in
                                            range(5)]))


class TestTraceManager:
    def test_record_accepts_anything(self):
        """No methodology enforcement — even nonsense sequences."""
        manager = TraceManager()
        trace = manager.start_trace("casotto")
        manager.record(trace, "plotter", ["netlist-1"], ["layout-1"])
        manager.record(trace, "???", [], [])
        assert len(trace) == 2

    def test_prototype_substitution(self):
        manager = TraceManager()
        trace = manager.start_trace()
        manager.record(trace, "extract", ["lay-1"], ["net-1"])
        manager.record(trace, "simulate", ["net-1"], ["perf-1"])
        proto = manager.prototype(trace, substitute={"lay-1": "lay-2"})
        assert proto[0].inputs == ("lay-2",)
        assert proto[0].outputs == ()  # replays produce new outputs

    def test_cursor_repositioning(self):
        """Branch from an earlier point (the PLA scenario, section 2)."""
        manager = TraceManager()
        trace = manager.start_trace()
        manager.record(trace, "logic-edit", [], ["logic-1"])
        manager.record(trace, "stdcell-gen", ["logic-1"], ["lay-std"])
        trace.reposition(0)
        proto = manager.prototype(trace)
        assert len(proto) == 1  # only up to the cursor
        with pytest.raises(IndexError):
            trace.reposition(7)

    def test_file_bound_lookup_scans_everything(self):
        manager = TraceManager()
        for index in range(10):
            trace = manager.start_trace()
            manager.record(trace, "tool", [f"in-{index}"],
                           [f"out-{index}"])
        manager.events_scanned = 0
        found = manager.traces_touching("in-3")
        assert len(found) == 1
        assert manager.events_scanned == manager.total_events()

    def test_derivations_of(self):
        manager = TraceManager()
        trace = manager.start_trace()
        manager.record(trace, "extract", ["lay"], ["net"])
        events = manager.derivations_of("net")
        assert len(events) == 1 and events[0].tool == "extract"


class TestVersionTree:
    def test_check_in_chain_and_branches(self):
        manager = VersionTreeManager("Netlist")
        c1 = manager.check_in("c1")
        c2 = manager.check_in("c2", parent=c1.version_id)
        c3 = manager.check_in("c3", parent=c1.version_id)
        c4 = manager.check_in("c4", parent=c2.version_id)
        assert manager.branch_count() == 1
        assert [v.label for v in manager.path_to_root(c4.version_id)] \
            == ["c4", "c2", "c1"]
        assert {v.label for v in manager.children(c1.version_id)} == \
            {"c2", "c3"}

    def test_unknown_parent_rejected(self):
        manager = VersionTreeManager("Netlist")
        with pytest.raises(BaselineError):
            manager.check_in("x", parent="ghost")

    def test_render(self):
        manager = VersionTreeManager("Netlist")
        root = manager.check_in("c1")
        manager.check_in("c2", parent=root.version_id)
        text = manager.render()
        assert "c1" in text and "c2" in text

    def test_projection_from_flow_trace(self, schema, clock):
        """Fig. 11: the classical tree is recoverable from the trace."""
        from repro.history.database import HistoryDatabase

        db = HistoryDatabase(schema, clock=clock)
        editor = db.install(S.CIRCUIT_EDITOR, {}, name="e1")
        c1 = db.install(S.EDITED_NETLIST, {"v": 1}, name="c1")
        c2 = db.record(S.EDITED_NETLIST, {"v": 2},
                       DerivationRecord.make(
                           editor.instance_id,
                           {"previous": c1.instance_id}), name="c2")
        db.record(S.EDITED_NETLIST, {"v": 3},
                  DerivationRecord.make(
                      editor.instance_id,
                      {"previous": c1.instance_id}), name="c3")
        trace = forward_trace(db, c1.instance_id)
        nodes = trace.version_tree(S.NETLIST)
        tree = version_tree_from_trace(S.NETLIST, nodes)
        assert len(tree.versions()) == 3
        assert tree.branch_count() == 1
        # classical tree lost the tool; the trace still has it
        assert editor.instance_id in trace
