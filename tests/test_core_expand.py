"""Tests for expand/unexpand/specialize — the heart of section 3.2."""

import pytest

import sys

import repro.core.expand

ops = sys.modules["repro.core.expand"]
from repro.core.taskgraph import TaskGraph
from repro.errors import ExpansionError, SpecializationError
from repro.schema import standard as S


@pytest.fixture
def graph(schema) -> TaskGraph:
    return TaskGraph(schema, "test")


class TestSpecialize:
    def test_specialize_abstract_netlist(self, graph):
        node = graph.add_node(S.NETLIST)
        ops.specialize(graph, node.node_id, S.EXTRACTED_NETLIST)
        assert node.entity_type == S.EXTRACTED_NETLIST
        assert node.is_specialized
        assert node.original_type == S.NETLIST

    def test_generalize_restores(self, graph):
        node = graph.add_node(S.NETLIST)
        ops.specialize(graph, node.node_id, S.EDITED_NETLIST)
        ops.generalize(graph, node.node_id)
        assert node.entity_type == S.NETLIST
        assert not node.is_specialized

    def test_non_subtype_rejected(self, graph):
        node = graph.add_node(S.NETLIST)
        with pytest.raises(SpecializationError):
            ops.specialize(graph, node.node_id, S.EDITED_LAYOUT)

    def test_expanded_node_cannot_specialize(self, graph):
        node = graph.add_node(S.EXTRACTED_NETLIST)
        ops.expand(graph, node.node_id)
        with pytest.raises(SpecializationError):
            ops.specialize(graph, node.node_id, S.EXTRACTED_NETLIST)

    def test_specialization_choices(self, graph):
        node = graph.add_node(S.NETLIST)
        choices = set(ops.specialization_choices(graph, node.node_id))
        assert {S.EXTRACTED_NETLIST, S.EDITED_NETLIST,
                S.OPTIMIZED_NETLIST} == choices

    def test_specialization_respects_existing_edges(self, graph):
        """A node already used as 'reference' can still specialize."""
        verification = graph.add_node(S.VERIFICATION)
        netlist = graph.add_node(S.NETLIST)
        graph.connect(verification.node_id, netlist.node_id,
                      role="reference")
        ops.specialize(graph, netlist.node_id, S.EXTRACTED_NETLIST)
        graph.validate()


class TestExpand:
    def test_expand_creates_tool_and_inputs(self, graph):
        perf = graph.add_node(S.PERFORMANCE)
        created = ops.expand(graph, perf.node_id)
        types = [n.entity_type for n in created]
        assert types == [S.SIMULATOR, S.CIRCUIT, S.STIMULI]
        assert graph.is_expanded(perf.node_id)

    def test_optional_inputs_omitted_by_default(self, graph):
        edited = graph.add_node(S.EDITED_NETLIST)
        created = ops.expand(graph, edited.node_id)
        assert [n.entity_type for n in created] == [S.CIRCUIT_EDITOR]

    def test_optional_inputs_by_name(self, graph):
        edited = graph.add_node(S.EDITED_NETLIST)
        created = ops.expand(graph, edited.node_id,
                             include_optional=["previous"])
        assert [n.entity_type for n in created] == [S.CIRCUIT_EDITOR,
                                                    S.NETLIST]

    def test_optional_inputs_all(self, graph):
        perf = graph.add_node(S.PERFORMANCE)
        created = ops.expand(graph, perf.node_id, include_optional=True)
        assert S.SIM_ARGS in [n.entity_type for n in created]

    def test_unknown_optional_role_rejected(self, graph):
        perf = graph.add_node(S.PERFORMANCE)
        with pytest.raises(ExpansionError):
            ops.expand(graph, perf.node_id, include_optional=["ghost"])

    def test_double_expand_rejected(self, graph):
        perf = graph.add_node(S.PERFORMANCE)
        ops.expand(graph, perf.node_id)
        with pytest.raises(ExpansionError):
            ops.expand(graph, perf.node_id)

    def test_abstract_requires_specialization(self, graph):
        netlist = graph.add_node(S.NETLIST)
        with pytest.raises(SpecializationError, match="specialize"):
            ops.expand(graph, netlist.node_id)

    def test_source_cannot_expand(self, graph):
        stim = graph.add_node(S.STIMULI)
        with pytest.raises(ExpansionError, match="source"):
            ops.expand(graph, stim.node_id)

    def test_reuse_existing_node(self, graph):
        """Fig. 5: an entity reused in several subtasks."""
        layout = graph.add_node(S.EDITED_LAYOUT, explicit=True)
        netlist = graph.add_node(S.EXTRACTED_NETLIST)
        stats = graph.add_node(S.EXTRACTION_STATISTICS)
        ops.expand(graph, netlist.node_id,
                   reuse={"layout": layout.node_id})
        ops.expand(graph, stats.node_id,
                   reuse={"layout": layout.node_id,
                          "@tool": graph.functional_supplier(
                              netlist.node_id)})
        # both extractions share layout AND tool -> one invocation
        assert len(graph.invocations()) == 1

    def test_reuse_unknown_role_rejected(self, graph):
        perf = graph.add_node(S.PERFORMANCE)
        other = graph.add_node(S.STIMULI)
        with pytest.raises(ExpansionError):
            ops.expand(graph, perf.node_id,
                       reuse={"bogus": other.node_id})

    def test_expand_fully_reaches_sources(self, graph):
        perf = graph.add_node(S.PERFORMANCE)
        ops.expand_fully(graph, perf.node_id)
        leaf_types = {n.entity_type for n in graph.leaves()}
        # Netlist stays unexpanded (abstract), Stimuli is a source
        assert S.STIMULI in leaf_types
        assert S.NETLIST in leaf_types
        assert S.DEVICE_MODELS in leaf_types or any(
            graph.is_expanded(n.node_id)
            for n in graph.nodes_of_type(S.DEVICE_MODELS))


class TestExpandToward:
    def test_forward_from_data(self, graph):
        """Start data-based at a netlist, grow a Performance above it."""
        netlist = graph.add_node(S.EXTRACTED_NETLIST, explicit=True)
        circuit = ops.expand_toward(graph, netlist.node_id, S.CIRCUIT)
        assert circuit.entity_type == S.CIRCUIT
        assert graph.data_suppliers(circuit.node_id)["netlist"] == \
            netlist.node_id
        perf = ops.expand_toward(graph, circuit.node_id, S.PERFORMANCE)
        assert graph.data_suppliers(perf.node_id)["circuit"] == \
            circuit.node_id

    def test_forward_from_tool(self, graph):
        """Start tool-based at a Simulator, grow its output."""
        sim = graph.add_node(S.SIMULATOR, explicit=True)
        perf = ops.expand_toward(graph, sim.node_id, S.PERFORMANCE)
        assert graph.functional_supplier(perf.node_id) == sim.node_id

    def test_disallowed_production_rejected(self, graph):
        stim = graph.add_node(S.STIMULI)
        with pytest.raises(ExpansionError):
            ops.expand_toward(graph, stim.node_id, S.EDITED_LAYOUT)

    def test_forward_choices(self, graph):
        netlist = graph.add_node(S.NETLIST)
        choices = ops.forward_choices(graph, netlist.node_id)
        assert S.CIRCUIT in choices
        assert S.PLACED_LAYOUT in choices

    def test_failed_forward_leaves_graph_clean(self, graph):
        verification = graph.add_node(S.VERIFICATION)
        netlist = graph.add_node(S.EXTRACTED_NETLIST)
        graph.connect(verification.node_id, netlist.node_id,
                      role="reference")
        before = len(graph)
        with pytest.raises(Exception):
            ops.expand_toward(graph, netlist.node_id, S.VERIFICATION,
                              role="ghost")
        assert len(graph) == before


class TestUnexpand:
    def test_unexpand_removes_orphans(self, graph):
        perf = graph.add_node(S.PERFORMANCE, explicit=True)
        created = ops.expand(graph, perf.node_id)
        removed = ops.unexpand(graph, perf.node_id)
        assert set(removed) == {n.node_id for n in created}
        assert len(graph) == 1

    def test_unexpand_keeps_shared_nodes(self, graph):
        layout = graph.add_node(S.EDITED_LAYOUT, explicit=True)
        netlist = graph.add_node(S.EXTRACTED_NETLIST)
        stats = graph.add_node(S.EXTRACTION_STATISTICS)
        ops.expand(graph, netlist.node_id,
                   reuse={"layout": layout.node_id})
        tool = graph.functional_supplier(netlist.node_id)
        ops.expand(graph, stats.node_id,
                   reuse={"layout": layout.node_id, "@tool": tool})
        ops.unexpand(graph, stats.node_id)
        # layout is explicit, tool still used by netlist: both survive
        assert layout.node_id in graph
        assert tool in graph

    def test_unexpand_recursive(self, graph):
        perf = graph.add_node(S.PERFORMANCE, explicit=True)
        ops.expand(graph, perf.node_id)
        circuit = graph.nodes_of_type(S.CIRCUIT)[0]
        ops.expand(graph, circuit.node_id)
        ops.unexpand(graph, perf.node_id)
        assert len(graph) == 1  # everything below perf collapsed

    def test_unexpand_unexpanded_rejected(self, graph):
        node = graph.add_node(S.STIMULI)
        with pytest.raises(ExpansionError):
            ops.unexpand(graph, node.node_id)

    def test_expand_after_unexpand(self, graph):
        """Fig. 4: the designer may reconsider and re-expand."""
        netlist = graph.add_node(S.NETLIST, explicit=True)
        ops.specialize(graph, netlist.node_id, S.EDITED_NETLIST)
        ops.expand(graph, netlist.node_id)
        ops.unexpand(graph, netlist.node_id)
        ops.generalize(graph, netlist.node_id)
        ops.specialize(graph, netlist.node_id, S.EXTRACTED_NETLIST)
        created = ops.expand(graph, netlist.node_id)
        assert {n.entity_type for n in created} == {S.EXTRACTOR,
                                                    S.LAYOUT}
