"""Integration tests: the paper's scenarios end to end.

Each test replays one of the workflows the paper narrates, through the
full stack (schema -> flow -> executor -> tools -> history).
"""

import pytest

from repro.history import (backward_trace, dependents_of_type, lineage,
                           template_query)
from repro.schema import standard as S
from repro.tools import edit_session, exhaustive, truth_table
from repro.tools.logic import LogicSpec
from repro.views import (standard_views, synthesize_physical,
                         verify_correspondence)
from tests.conftest import build_performance_flow


@pytest.fixture
def world(stocked_env):
    env = stocked_env
    env.sim_id = env.tools[S.SIMULATOR].instance_id
    return env


class TestSimulatePerformance:
    def test_goal_based_simulation(self, world):
        flow, goal = build_performance_flow(
            world,
            netlist_id=world.netlist.instance_id,
            models_id=world.models.instance_id,
            stimuli_id=world.stimuli.instance_id,
            simulator_id=world.sim_id)
        report = world.run(flow)
        assert len(report.results) == 2  # compose + simulate
        performance = world.db.data(goal.produced[0])
        assert performance.worst_delay_ns > 0
        # the simulated function matches the logic spec
        # (a,b,s) counting order; y = a&~s | b&s
        assert performance.waveform("y") == (
            "0", "0", "0", "1", "1", "0", "1", "1")

    def test_plot_extension_of_executed_flow(self, world):
        flow, goal = build_performance_flow(
            world,
            netlist_id=world.netlist.instance_id,
            models_id=world.models.instance_id,
            stimuli_id=world.stimuli.instance_id,
            simulator_id=world.sim_id)
        world.run(flow)
        plot_node = flow.expand_toward(goal, S.PERFORMANCE_PLOT)
        plotter_node = flow.graph.add_node(S.PLOTTER)
        plotter_node.bind(world.tools[S.PLOTTER].instance_id)
        flow.connect(plot_node, plotter_node)
        world.run(flow)
        rendered = world.db.data(plot_node.produced[0])
        assert "worst delay" in rendered.text


class TestCosmosScenario:
    """Fig. 2: a simulator compiled for a netlist, run on two stimuli."""

    def test_compiled_simulator_tool(self, world):
        flow, goal = world.goal_flow(S.PERFORMANCE, "cosmos")
        flow.expand(goal)
        sim_node = flow.sole_node_of_type(S.SIMULATOR)
        flow.specialize(sim_node, S.COMPILED_SIMULATOR)
        flow.expand(sim_node)
        circuit = flow.sole_node_of_type(S.CIRCUIT)
        flow.expand(circuit)
        for netlist_node in flow.nodes_of_type(S.NETLIST):
            if not netlist_node.is_bound:
                flow.bind(netlist_node, world.netlist.instance_id)
        flow.bind(flow.sole_node_of_type(S.DEVICE_MODELS),
                  world.models.instance_id)
        flow.bind(flow.sole_node_of_type(S.SIM_COMPILER),
                  world.tools[S.SIM_COMPILER].instance_id)
        stim2 = world.install_data(
            S.STIMULI, exhaustive(("a", "b", "s"), name="again"),
            name="again")
        flow.bind(flow.sole_node_of_type(S.STIMULI),
                  world.stimuli.instance_id, stim2.instance_id)
        report = world.run(flow)
        # one compile, one compose, two simulations (stimuli fan-out)
        assert len(goal.produced) == 2
        compiled = flow.graph.node(sim_node.node_id).produced
        assert len(compiled) == 1
        created_types = {world.db.get(i).entity_type
                         for i in report.created}
        assert S.COMPILED_SIMULATOR in created_types
        # the performance's derivation names the compiled tool
        perf = world.db.get(goal.produced[0])
        assert perf.derivation.tool == compiled[0]
        # and the compiled tool itself has a derivation (it is data too)
        tool_instance = world.db.get(compiled[0])
        assert tool_instance.derivation.tool == \
            world.tools[S.SIM_COMPILER].instance_id


class TestFig5ComplexFlow:
    """Entity reuse + multiple outputs, executed for real."""

    def test_reuse_and_multi_output(self, world, mux_spec):
        layout_session = edit_session(world, S.LAYOUT_EDITOR, [
            {"op": "rename", "name": "mux-lay"},
            {"op": "place", "name": "u1", "cell": "inv", "x": 2,
             "y": 0},
            {"op": "pin", "net": "a", "x": 0, "y": 1,
             "direction": "in"},
            {"op": "pin", "net": "y", "x": 6, "y": 1,
             "direction": "out"},
            {"op": "route", "net": "a", "points": [[0, 1], [2, 1]]},
            {"op": "route", "net": "y", "points": [[3, 1], [6, 1]]},
        ], name="lay-session")
        flow, layout_goal = world.goal_flow(S.EDITED_LAYOUT, "fig5")
        flow.expand(layout_goal)
        flow.bind(flow.sole_node_of_type(S.LAYOUT_EDITOR),
                  layout_session.instance_id)
        # extraction: two outputs reusing the same layout + extractor
        netlist_node = flow.expand_toward(layout_goal,
                                          S.EXTRACTED_NETLIST)
        extractor_node = flow.graph.add_node(S.EXTRACTOR)
        extractor_node.bind(world.tools[S.EXTRACTOR].instance_id)
        flow.connect(netlist_node, extractor_node)
        stats_node = flow.graph.add_node(S.EXTRACTION_STATISTICS)
        flow.connect(stats_node, extractor_node)
        flow.connect(stats_node, layout_goal, role="layout")
        report = world.run(flow)
        extract_invocations = [
            r for r in report.results if r.tool_type == S.EXTRACTOR]
        assert len(extract_invocations) == 1
        assert len(extract_invocations[0].created) == 2
        stats = world.db.data(stats_node.produced[0])
        assert stats.cell_count == 1
        netlist = world.db.data(netlist_node.produced[0])
        assert truth_table(netlist) == {(0,): ("1",), (1,): ("0",)}


class TestStdcellToPla:
    """The Chiueh & Katz scenario: branch history to re-implement."""

    def test_reimplementation_branch(self, world):
        spec = LogicSpec.from_equations("decode", "y = a & ~b")
        logic = world.install_data(S.EDITED_LOGIC_SPEC, spec,
                                   name="decode-logic")
        # first implementation: standard cells
        flow, std_goal = world.goal_flow(S.STD_CELL_LAYOUT, "impl-std")
        flow.expand(std_goal)
        flow.bind(flow.sole_node_of_type(S.LOGIC_SPEC),
                  logic.instance_id)
        flow.bind(flow.sole_node_of_type(S.STD_CELL_GENERATOR),
                  world.tools[S.STD_CELL_GENERATOR].instance_id)
        world.run(flow)
        # branch: same logic, PLA implementation (data-based approach)
        pla_flow, logic_node = world.data_flow(logic, "impl-pla")
        pla_node = pla_flow.expand_toward(logic_node, S.PLA_LAYOUT)
        generator = pla_flow.graph.add_node(S.PLA_GENERATOR)
        generator.bind(world.tools[S.PLA_GENERATOR].instance_id)
        pla_flow.connect(pla_node, generator)
        world.run(pla_flow)
        # both implementations hang off the same logic instance
        layouts = dependents_of_type(world.db, logic.instance_id,
                                     S.LAYOUT)
        types = {i.entity_type for i in layouts}
        assert types == {S.STD_CELL_LAYOUT, S.PLA_LAYOUT}
        # and both implement the same function
        from repro.tools import extract, standard_library

        library = standard_library()
        tables = []
        for layout_instance in layouts:
            netlist, _ = extract(world.db.data(layout_instance), library)
            tables.append(truth_table(netlist))
        assert tables[0] == tables[1]


class TestViewManagement:
    """Fig. 7/8: views and view correspondence through flows."""

    def test_standard_views(self, world):
        registry = standard_views(world.schema)
        assert set(registry.views()) == {"logic", "transistor",
                                         "physical"}
        assert registry.view_of(world.netlist) == "transistor"

    def test_synthesis_and_verification_flows(self, world):
        spec_instance = world.install_data(
            S.PLACEMENT_SPEC, {"row_width": 3, "seed": 1, "moves": 150},
            name="pspec")
        placed = synthesize_physical(
            world, world.netlist, spec_instance,
            world.tools[S.PLACER])
        assert placed.entity_type == S.PLACED_LAYOUT
        verification = verify_correspondence(
            world, world.netlist, placed,
            world.tools[S.VERIFIER], world.tools[S.EXTRACTOR])
        assert world.db.data(verification).matched
        # the verification's history records both views
        trace = backward_trace(world.db, verification.instance_id)
        assert world.netlist.instance_id in trace
        assert placed.instance_id in trace

    def test_corrupted_layout_fails_verification(self, world):
        spec_instance = world.install_data(
            S.PLACEMENT_SPEC, {"seed": 2}, name="pspec2")
        placed = synthesize_physical(
            world, world.netlist, spec_instance, world.tools[S.PLACER])
        # corrupt: drop a cell, register as a new edited layout
        layout = world.db.data(placed).copy("broken")
        layout.remove(layout.placements()[0].name)
        broken = world.install_data(S.EDITED_LAYOUT, layout,
                                    name="broken")
        verification = verify_correspondence(
            world, world.netlist, broken,
            world.tools[S.VERIFIER], world.tools[S.EXTRACTOR])
        assert not world.db.data(verification).matched


class TestEditingAndVersioning:
    def test_edit_sessions_record_versions(self, world):
        session1 = edit_session(world, S.CIRCUIT_EDITOR, [
            {"op": "new", "name": "c", "inputs": ["a"],
             "outputs": ["y"]},
            {"op": "add_instance", "name": "u1", "cell": "inv",
             "connections": {"a": "a", "y": "y"}},
        ], name="s1")
        flow, goal = world.goal_flow(S.EDITED_NETLIST)
        flow.expand(goal)
        flow.bind(flow.sole_node_of_type(S.CIRCUIT_EDITOR),
                  session1.instance_id)
        v1 = world.run(flow).created[0]

        session2 = edit_session(world, S.CIRCUIT_EDITOR, [
            {"op": "add_instance", "name": "u2", "cell": "buf",
             "connections": {"a": "y", "y": "z"}},
        ], name="s2")
        flow2, goal2 = world.goal_flow(S.EDITED_NETLIST)
        flow2.expand(goal2, include_optional=["previous"])
        previous = flow2.graph.data_suppliers(goal2.node_id)["previous"]
        flow2.bind(flow2.node(previous), v1)
        flow2.bind(flow2.sole_node_of_type(S.CIRCUIT_EDITOR),
                   session2.instance_id)
        v2 = world.run(flow2).created[0]
        assert lineage(world.db, v2) == (v1, v2)
        # the flow trace knows which session made v2 (Fig. 11b)
        trace = backward_trace(world.db, v2)
        assert session2.instance_id in trace

    def test_template_query_after_simulation(self, world):
        flow, goal = build_performance_flow(
            world,
            netlist_id=world.netlist.instance_id,
            models_id=world.models.instance_id,
            stimuli_id=world.stimuli.instance_id,
            simulator_id=world.sim_id)
        world.run(flow)
        # "find the simulations that were performed for this netlist"
        matches = template_query(world.db, flow.graph, goal.node_id)
        assert [m.instance_id for m in matches] == list(goal.produced)
