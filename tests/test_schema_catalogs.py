"""Tests for catalogs and schema serialization details."""

import pytest

from repro import DynamicFlow
from repro.errors import SchemaError
from repro.schema import standard as S
from repro.schema.catalog import (DataTypeCatalog, EntityCatalog,
                                  FlowCatalog, ToolCatalog)
from repro.schema.serialize import (loads, schema_from_dict,
                                    schema_to_dict)


class TestEntityCatalogs:
    def test_entity_catalog_lists_everything(self, schema):
        catalog = EntityCatalog(schema)
        assert len(catalog) == len(schema)
        assert catalog.names() == tuple(sorted(schema.entity_names()))

    def test_tool_catalog_only_tools(self, schema):
        catalog = ToolCatalog(schema)
        assert all(schema.entity(n).is_tool for n in catalog.names())
        assert S.SIMULATOR in catalog.names()
        assert S.NETLIST not in catalog.names()

    def test_data_catalog_only_data(self, schema):
        catalog = DataTypeCatalog(schema)
        assert S.NETLIST in catalog.names()
        assert S.SIMULATOR not in catalog.names()

    def test_lookup(self, schema):
        catalog = EntityCatalog(schema)
        assert catalog.lookup(S.CIRCUIT).composed

    def test_iteration_sorted(self, schema):
        catalog = ToolCatalog(schema)
        names = [e.name for e in catalog]
        assert names == sorted(names)


class TestFlowCatalog:
    def test_register_and_select_returns_fresh_copy(self, schema):
        catalog: FlowCatalog[DynamicFlow] = FlowCatalog()
        flow = DynamicFlow(schema, "proto")
        flow.place(S.PERFORMANCE)
        catalog.register_flow("perf", flow, description="simulate")
        first = catalog.select("perf")
        second = catalog.select("perf")
        assert first is not second
        # expanding one copy must not affect the other
        first.expand(first.nodes()[0])
        assert len(first.nodes()) > len(second.nodes())

    def test_duplicate_name_rejected(self, schema):
        catalog: FlowCatalog[DynamicFlow] = FlowCatalog()
        catalog.register("a", lambda: DynamicFlow(schema))
        with pytest.raises(SchemaError):
            catalog.register("a", lambda: DynamicFlow(schema))

    def test_unknown_selection_rejected(self):
        catalog: FlowCatalog = FlowCatalog()
        with pytest.raises(SchemaError):
            catalog.select("ghost")

    def test_description_and_contains(self, schema):
        catalog: FlowCatalog[DynamicFlow] = FlowCatalog()
        catalog.register("a", lambda: DynamicFlow(schema), "does a")
        assert "a" in catalog
        assert catalog.description("a") == "does a"
        with pytest.raises(SchemaError):
            catalog.description("b")


class TestSerializationDetails:
    def test_bad_format_version(self):
        with pytest.raises(SchemaError):
            schema_from_dict({"format": 99})

    def test_roundtrip_preserves_metadata(self, schema):
        payload = schema_to_dict(schema)
        restored = schema_from_dict(payload)
        original = schema.entity(S.COMPILED_SIMULATOR)
        copy = restored.entity(S.COMPILED_SIMULATOR)
        assert copy.parent == original.parent
        assert copy.kind == original.kind
        assert copy.description == original.description

    def test_loads_can_skip_validation(self, schema):
        payload = schema_to_dict(schema)
        # corrupt: add a mandatory self-cycle
        payload["dependencies"].append(
            {"source": S.STIMULI, "target": S.STIMULI, "kind": "d",
             "optional": False, "role": "loop"})
        import json
        with pytest.raises(Exception):
            loads(json.dumps(payload))
        restored = loads(json.dumps(payload), validate=False)
        assert S.STIMULI in restored
