"""Tests for parallel disjoint-branch execution (Fig. 6)."""

import threading
import time

import pytest

from repro.errors import ExecutionError
from repro.execution import (DesignEnvironment, MachinePool,
                             ParallelFlowExecutor, encapsulation,
                             plan_branches)
from repro.schema import standard as S


@pytest.fixture
def slow_env(schema, clock) -> DesignEnvironment:
    """Environment whose extractor sleeps, to observe real concurrency."""
    env = DesignEnvironment(schema, user="tester", clock=clock)
    env.concurrent = 0          # type: ignore[attr-defined]
    env.peak_concurrent = 0     # type: ignore[attr-defined]
    gate = threading.Lock()

    def slow_extract(ctx, inputs):
        with gate:
            env.concurrent += 1
            env.peak_concurrent = max(env.peak_concurrent,
                                      env.concurrent)
        time.sleep(0.05)
        with gate:
            env.concurrent -= 1
        return {t: {"made": t} for t in ctx.output_types}

    env.install_tool(S.EXTRACTOR, encapsulation("slowx", slow_extract),
                     name="slowx")
    return env


def two_branch_flow(env):
    """Two disjoint extract branches (the Fig. 6 picture)."""
    flow = env.new_flow("fig6")
    for index in range(2):
        layout = env.install_data(S.EDITED_LAYOUT, {"i": index})
        netlist = flow.place(S.EXTRACTED_NETLIST)
        flow.expand(netlist)
        layout_nodes = [n for n in flow.graph.leaves()
                        if n.entity_type == S.LAYOUT and not n.is_bound]
        flow.bind(layout_nodes[0], layout.instance_id)
        tool_nodes = [n for n in flow.nodes()
                      if n.entity_type == S.EXTRACTOR and not n.is_bound]
        flow.bind(tool_nodes[0], env.db.latest(S.EXTRACTOR).instance_id)
    return flow


class TestMachinePool:
    def test_acquire_release(self):
        pool = MachinePool.local(2)
        first = pool.acquire()
        second = pool.acquire()
        assert {first.name, second.name} == {"machine0", "machine1"}
        pool.release(first)
        third = pool.acquire()
        assert third.name == first.name

    def test_empty_pool_rejected(self):
        with pytest.raises(ExecutionError):
            MachinePool([])

    def test_blocking_acquire(self):
        pool = MachinePool.local(1)
        machine = pool.acquire()
        got: list[str] = []

        def waiter():
            got.append(pool.acquire().name)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.02)
        assert got == []  # still blocked
        pool.release(machine)
        thread.join(timeout=1)
        assert got == [machine.name]


class TestBranchPlanning:
    def test_disjoint_branches_found(self, slow_env):
        flow = two_branch_flow(slow_env)
        plan = plan_branches(flow.graph)
        assert plan.width == 2

    def test_targets_filter_branches(self, slow_env):
        flow = two_branch_flow(slow_env)
        goal = flow.goals()[0]
        plan = plan_branches(flow.graph, targets=[goal.node_id])
        assert plan.width == 1


class TestParallelExecution:
    def test_branches_run_concurrently(self, slow_env):
        flow = two_branch_flow(slow_env)
        executor = slow_env.parallel_executor(machines=2)
        report = executor.execute(flow)
        assert len(report.results) == 2
        assert slow_env.peak_concurrent == 2  # true overlap observed

    def test_single_machine_serializes(self, slow_env):
        flow = two_branch_flow(slow_env)
        executor = slow_env.parallel_executor(machines=1)
        executor.execute(flow)
        assert slow_env.peak_concurrent == 1

    def test_machines_recorded_on_instances(self, slow_env):
        flow = two_branch_flow(slow_env)
        pool = MachinePool.local(2)
        executor = ParallelFlowExecutor(slow_env.db, slow_env.registry,
                                        user="tester", pool=pool)
        executor.execute(flow)
        machines_used = {
            i.annotation_map().get("machine")
            for i in slow_env.db.browse(S.EXTRACTED_NETLIST)}
        assert machines_used <= {"machine0", "machine1"}
        assert sum(m.executed_branches for m in pool.machines()) == 2

    def test_history_consistent_after_parallel_run(self, slow_env):
        flow = two_branch_flow(slow_env)
        slow_env.parallel_executor(machines=2).execute(flow)
        for instance in slow_env.db.browse(S.EXTRACTED_NETLIST):
            record = instance.derivation
            assert record is not None
            layout = slow_env.db.get(record.input_map()["layout"])
            assert layout.entity_type == S.EDITED_LAYOUT

    def test_parallel_speedup_wallclock(self, slow_env):
        """Two 50ms branches should take well under 2x50ms on 2 machines."""
        flow = two_branch_flow(slow_env)
        started = time.perf_counter()
        slow_env.parallel_executor(machines=2).execute(flow)
        elapsed = time.perf_counter() - started
        assert elapsed < 0.095

    def test_error_in_branch_propagates(self, slow_env):
        def broken(ctx, inputs):
            raise RuntimeError("tool crashed")

        instance = slow_env.db.install(S.EXTRACTOR, {}, name="broken")
        slow_env.registry.register_for_instance(
            instance.instance_id, encapsulation("broken", broken))
        flow = slow_env.new_flow("crash")
        netlist = flow.place(S.EXTRACTED_NETLIST)
        flow.expand(netlist)
        layout = slow_env.install_data(S.EDITED_LAYOUT, {})
        flow.bind(flow.sole_node_of_type(S.LAYOUT), layout.instance_id)
        flow.bind(flow.sole_node_of_type(S.EXTRACTOR),
                  instance.instance_id)
        with pytest.raises(RuntimeError, match="tool crashed"):
            slow_env.parallel_executor(machines=2).execute(flow)

    def test_empty_flow(self, slow_env):
        flow = slow_env.new_flow("empty")
        report = slow_env.parallel_executor().execute(flow)
        assert report.results == []
