"""Tests for the Fig. 3 representations: Lisp form, bipartite, renders."""

import pytest

from repro.core import (DynamicFlow, ascii_graph, flow_equation, layers,
                        schema_to_dot, snake_case, to_bipartite, to_call,
                        to_dot, to_lisp)
from repro.schema import standard as S


@pytest.fixture
def fig3_flow(schema) -> DynamicFlow:
    """placement <- placer(circuit_editor(circuit), placement_spec)."""
    flow = DynamicFlow(schema, "fig3")
    goal = flow.place(S.PLACED_LAYOUT)
    flow.expand(goal)
    netlist = flow.sole_node_of_type(S.NETLIST)
    flow.specialize(netlist, S.EDITED_NETLIST)
    flow.expand(netlist, include_optional=["previous"])
    return flow


class TestSnakeCase:
    @pytest.mark.parametrize("name,expected", [
        ("Netlist", "netlist"),
        ("ExtractedNetlist", "extracted_netlist"),
        ("PLALayout", "pla_layout"),
        ("SimArgs", "sim_args"),
    ])
    def test_conversions(self, name, expected):
        assert snake_case(name) == expected


class TestLispForm:
    def test_lisp_matches_paper_footnote(self, fig3_flow):
        goal = fig3_flow.sole_node_of_type(S.PLACED_LAYOUT)
        lisp = to_lisp(fig3_flow.graph, goal.node_id)
        # (placer, (circuit_editor, netlist), placement_spec)
        assert lisp == ("(placer, (circuit_editor, netlist), "
                        "placement_spec)")

    def test_call_form(self, fig3_flow):
        goal = fig3_flow.sole_node_of_type(S.PLACED_LAYOUT)
        call = to_call(fig3_flow.graph, goal.node_id)
        assert call == "placer(circuit_editor(netlist), placement_spec)"

    def test_equation(self, fig3_flow):
        goal = fig3_flow.sole_node_of_type(S.PLACED_LAYOUT)
        equation = flow_equation(fig3_flow.graph, goal.node_id, "call")
        assert equation.startswith("placed_layout <- placer(")

    def test_labels_used_when_present(self, schema):
        flow = DynamicFlow(schema)
        node = flow.place(S.STIMULI, label="LPF Stimuli")
        assert to_lisp(flow.graph, node.node_id) == "lpf_stimuli"

    def test_composed_call_form(self, schema):
        flow = DynamicFlow(schema)
        circuit = flow.place(S.CIRCUIT)
        flow.expand(circuit)
        call = to_call(flow.graph, circuit.node_id)
        assert call == "compose_circuit(device_models, netlist)"


class TestBipartite:
    def test_tools_become_activities(self, fig3_flow):
        diagram = to_bipartite(fig3_flow.graph)
        assert diagram.activity_count() == 2
        tool_types = {a.tool_type for a in diagram.activities}
        assert tool_types == {S.PLACER, S.CIRCUIT_EDITOR}
        # plain tool nodes are absorbed, data nodes remain
        node_types = {fig3_flow.node(n).entity_type
                      for n in diagram.data_nodes}
        assert S.PLACER not in node_types
        assert S.PLACED_LAYOUT in node_types

    def test_produced_tool_stays_visible(self, schema):
        """A compiled simulator is data in the bipartite view too."""
        flow = DynamicFlow(schema)
        perf = flow.place(S.PERFORMANCE)
        flow.expand(perf)
        sim = flow.sole_node_of_type(S.SIMULATOR)
        flow.specialize(sim, S.COMPILED_SIMULATOR)
        flow.expand(sim)
        diagram = to_bipartite(flow.graph)
        assert sim.node_id in diagram.data_nodes

    def test_render_mentions_roles(self, fig3_flow):
        diagram = to_bipartite(fig3_flow.graph)
        text = diagram.render(fig3_flow.graph)
        assert "netlist=" in text
        assert "==[Placer]==>" in text

    def test_multi_output_activity(self, schema):
        flow = DynamicFlow(schema)
        netlist = flow.place(S.EXTRACTED_NETLIST)
        flow.expand(netlist)
        stats = flow.graph.add_node(S.EXTRACTION_STATISTICS)
        flow.connect(stats, flow.sole_node_of_type(S.EXTRACTOR))
        flow.connect(stats, flow.sole_node_of_type(S.LAYOUT),
                     role="layout")
        diagram = to_bipartite(flow.graph)
        assert diagram.activity_count() == 1
        assert len(diagram.activities[0].outputs) == 2


class TestRender:
    def test_layers_order_suppliers_first(self, fig3_flow):
        all_layers = layers(fig3_flow.graph)
        goal = fig3_flow.sole_node_of_type(S.PLACED_LAYOUT)
        assert goal.node_id in all_layers[-1]

    def test_ascii_contains_every_node(self, fig3_flow):
        text = ascii_graph(fig3_flow.graph)
        for node in fig3_flow.nodes():
            assert node.node_id in text

    def test_ascii_marks_specialization_and_bindings(self, fig3_flow):
        netlist = fig3_flow.graph.nodes_of_type(
            S.EDITED_NETLIST, include_subtypes=False)[0]
        netlist.bind("EditedNetlist#0001")
        text = ascii_graph(fig3_flow.graph)
        assert "(was Netlist)" in text
        assert "EditedNetlist#0001" in text

    def test_empty_graph_renders(self, schema):
        flow = DynamicFlow(schema, "empty")
        assert "(empty)" in ascii_graph(flow.graph)

    def test_dot_output(self, fig3_flow):
        dot = to_dot(fig3_flow.graph)
        assert dot.startswith("digraph")
        assert "shape=ellipse" in dot  # tools
        assert "shape=box" in dot      # data
        assert "style=dashed" in dot   # the optional previous edge

    def test_schema_dot(self, schema):
        dot = schema_to_dot(schema)
        assert '"ExtractedNetlist" -> "Netlist"' in dot  # isa edge
        assert "digraph" in dot
