"""Tests for the derivation-keyed incremental re-execution cache."""

import json

import pytest

from repro.errors import ExecutionError
from repro.execution import (CACHE_OFF, CACHE_READWRITE, CACHE_REUSE,
                             DerivationCache, DesignEnvironment,
                             encapsulation, fingerprint_callable,
                             normalize_policy)
from repro.persistence import (CACHE_FILE, load_environment,
                               save_environment)
from repro.schema import standard as S
from repro.tools import register_standard_encapsulations
from tests.conftest import build_performance_flow


@pytest.fixture
def counting_env(schema, clock) -> DesignEnvironment:
    """Environment whose tools count their invocations."""
    env = DesignEnvironment(schema, user="tester", clock=clock)
    env.calls = []  # type: ignore[attr-defined]

    def make(tool_name, result=None):
        def fn(ctx, inputs):
            env.calls.append((tool_name, sorted(inputs)))
            if result is not None:
                return result(ctx, inputs)
            return {"made-by": tool_name, "inputs": sorted(inputs)}
        return fn

    env.install_tool(S.EXTRACTOR, encapsulation(
        "x", make("extractor", lambda ctx, ins: {
            t: {"out": t} for t in ctx.output_types})), name="x")
    env.install_tool(S.SIMULATOR, encapsulation("s", make("simulator")),
                     name="s")
    env.install_tool(S.PLOTTER, encapsulation("p", make("plotter")),
                     name="p")
    return env


def simulate_flow(env):
    models = env.install_data(S.DEVICE_MODELS, {"m": 1})
    netlist = env.install_data(S.EDITED_NETLIST, {"n": 1})
    stim = env.install_data(S.STIMULI, [[0]])
    flow, goal = build_performance_flow(
        env, netlist_id=netlist.instance_id, models_id=models.instance_id,
        stimuli_id=stim.instance_id,
        simulator_id=env.db.latest(S.SIMULATOR).instance_id)
    return flow, goal


class TestPolicies:
    def test_normalize(self):
        assert normalize_policy(None) == CACHE_OFF
        assert normalize_policy("reuse") == CACHE_REUSE
        assert normalize_policy("readwrite") == CACHE_READWRITE
        with pytest.raises(ExecutionError):
            normalize_policy("sometimes")

    def test_policy_without_cache_rejected(self, counting_env):
        flow, _ = simulate_flow(counting_env)
        executor = counting_env.executor()
        with pytest.raises(ExecutionError):
            executor.execute(flow, cache="reuse")

    def test_off_policy_is_inert(self, counting_env):
        """cache=off must behave byte-identically to no cache at all."""
        flow, goal = simulate_flow(counting_env)
        report = counting_env.run(flow, cache="off")
        assert counting_env._cache is None  # never even constructed
        assert report.cache_hits == 0 and not report.cached
        assert len(counting_env.calls) == 1  # simulator only
        # rerun with force still executes, exactly as without a cache
        counting_env.run(flow, force=True, cache="off")
        assert len(counting_env.calls) == 2


class TestReuse:
    def test_warm_rerun_is_fully_coalesced(self, counting_env):
        flow, goal = simulate_flow(counting_env)
        cold = counting_env.run(flow, cache="readwrite")
        calls_after_cold = len(counting_env.calls)
        flow2, goal2 = build_performance_flow(
            counting_env,
            netlist_id=flow.sole_node_of_type(S.NETLIST).bindings[0],
            models_id=flow.sole_node_of_type(S.DEVICE_MODELS).bindings[0],
            stimuli_id=flow.sole_node_of_type(S.STIMULI).bindings[0],
            simulator_id=flow.sole_node_of_type(S.SIMULATOR).bindings[0])
        warm = counting_env.run(flow2, cache="reuse")
        assert len(counting_env.calls) == calls_after_cold  # no tool ran
        assert not warm.results
        assert warm.cache_hits == 2  # circuit composition + simulation
        assert sorted(warm.reused) == sorted(cold.created)
        assert goal2.produced  # goal node carries the reused instance

    def test_force_bypasses_cache_reads(self, counting_env):
        flow, _ = simulate_flow(counting_env)
        counting_env.run(flow, cache="readwrite")
        calls = len(counting_env.calls)
        forced = counting_env.run(flow, force=True, cache="readwrite")
        assert forced.cache_hits == 0
        assert len(counting_env.calls) == calls + 1

    def test_hits_are_reported_and_skip_duration_model(self, counting_env):
        from repro.obs import (CACHE_HIT, COMPOSITION_RUN, TOOL_FINISHED,
                               RingBufferSink)
        flow, _ = simulate_flow(counting_env)
        counting_env.run(flow, cache="readwrite")
        sink = RingBufferSink(64)
        counting_env.bus.subscribe(sink)
        flow2, _ = build_performance_flow(
            counting_env,
            netlist_id=flow.sole_node_of_type(S.NETLIST).bindings[0],
            models_id=flow.sole_node_of_type(
                S.DEVICE_MODELS).bindings[0],
            stimuli_id=flow.sole_node_of_type(S.STIMULI).bindings[0],
            simulator_id=flow.sole_node_of_type(S.SIMULATOR).bindings[0])
        counting_env.run(flow2, cache="reuse")
        kinds = [e.event_type for e in sink.events()]
        assert kinds.count(CACHE_HIT) == 2
        assert TOOL_FINISHED not in kinds  # hits never feed timing
        assert COMPOSITION_RUN not in kinds


class TestOtherExecutors:
    def warm_pair(self, env):
        flow, _ = simulate_flow(env)
        cold = env.run(flow, cache="readwrite")
        flow2, _ = build_performance_flow(
            env,
            netlist_id=flow.sole_node_of_type(S.NETLIST).bindings[0],
            models_id=flow.sole_node_of_type(
                S.DEVICE_MODELS).bindings[0],
            stimuli_id=flow.sole_node_of_type(S.STIMULI).bindings[0],
            simulator_id=flow.sole_node_of_type(S.SIMULATOR).bindings[0])
        return cold, flow2

    def test_parallel_executor_reuses(self, counting_env):
        cold, flow2 = self.warm_pair(counting_env)
        calls = len(counting_env.calls)
        executor = counting_env.parallel_executor(machines=2,
                                                  cache="reuse")
        warm = executor.execute(flow2)
        assert len(counting_env.calls) == calls
        assert warm.cache_hits == 2
        assert sorted(warm.reused) == sorted(cold.created)

    def test_scheduled_executor_reuses(self, counting_env):
        cold, flow2 = self.warm_pair(counting_env)
        calls = len(counting_env.calls)
        executor = counting_env.scheduled_executor(machines=2,
                                                   cache="reuse")
        warm = executor.execute(flow2)
        assert len(counting_env.calls) == calls
        assert warm.cache_hits == 2
        assert sorted(warm.reused) == sorted(cold.created)
        # zero-cost hits: the duration model never saw the cached runs
        assert executor.durations.observed_types() == ()


class TestInvalidation:
    def test_edited_input_misses(self, counting_env):
        flow, _ = simulate_flow(counting_env)
        counting_env.run(flow, cache="readwrite")
        calls = len(counting_env.calls)
        other_netlist = counting_env.install_data(
            S.EDITED_NETLIST, {"n": 2})
        flow2, _ = build_performance_flow(
            counting_env, netlist_id=other_netlist.instance_id,
            models_id=flow.sole_node_of_type(
                S.DEVICE_MODELS).bindings[0],
            stimuli_id=flow.sole_node_of_type(S.STIMULI).bindings[0],
            simulator_id=flow.sole_node_of_type(S.SIMULATOR).bindings[0])
        report = counting_env.run(flow2, cache="reuse")
        assert report.cache_hits == 0
        assert len(counting_env.calls) == calls + 1

    def test_reregistered_tool_invalidates(self, counting_env):
        flow, _ = simulate_flow(counting_env)
        counting_env.run(flow, cache="readwrite")
        calls = len(counting_env.calls)

        def rewritten(ctx, inputs):
            counting_env.calls.append(("simulator-v2", sorted(inputs)))
            return {"made-by": "v2"}

        counting_env.registry.register(
            S.SIMULATOR, encapsulation("s2", rewritten))
        # the pre-rewrite result must not satisfy the new key: the
        # simulator runs again even though its inputs are unchanged
        flow2, _ = build_performance_flow(
            counting_env,
            netlist_id=flow.sole_node_of_type(S.NETLIST).bindings[0],
            models_id=flow.sole_node_of_type(
                S.DEVICE_MODELS).bindings[0],
            stimuli_id=flow.sole_node_of_type(S.STIMULI).bindings[0],
            simulator_id=flow.sole_node_of_type(S.SIMULATOR).bindings[0])
        report = counting_env.run(flow2, cache="reuse")
        assert counting_env.calls[-1][0] == "simulator-v2"
        assert len(counting_env.calls) == calls + 1
        # the circuit composition is untouched, so it still coalesces
        assert report.cache_hits == 1

    def test_stale_history_is_not_reused(self, stocked_env):
        """A cached result whose inputs were superseded is skipped."""
        env = stocked_env
        flow, goal = build_performance_flow(
            env, netlist_id=env.netlist.instance_id,
            models_id=env.models.instance_id,
            stimuli_id=env.stimuli.instance_id,
            simulator_id=env.tools[S.SIMULATOR].instance_id)
        cold = env.run(flow, cache="readwrite")
        # supersede the netlist through an editing task so the cached
        # performance becomes version-wise stale
        from repro.tools import edit_session
        session = edit_session(env, S.CIRCUIT_EDITOR, [
            {"op": "rename", "name": "mux-v2"}], name="fix")
        edit_flow, edit_goal = env.goal_flow(S.EDITED_NETLIST)
        edit_flow.expand(edit_goal, include_optional=["previous"])
        previous = edit_flow.graph.data_suppliers(
            edit_goal.node_id)["previous"]
        edit_flow.bind(edit_flow.node(previous), env.netlist.instance_id)
        edit_flow.bind(edit_flow.sole_node_of_type(S.CIRCUIT_EDITOR),
                       session.instance_id)
        env.run(edit_flow)
        assert env.is_stale(cold.created[-1])
        flow2, _ = build_performance_flow(
            env, netlist_id=env.netlist.instance_id,
            models_id=env.models.instance_id,
            stimuli_id=env.stimuli.instance_id,
            simulator_id=env.tools[S.SIMULATOR].instance_id)
        warm = env.run(flow2, cache="reuse")
        assert warm.cache_hits == 0
        assert env.cache.stats.invalidated >= 1

    def test_optional_input_presence_changes_key(self, stocked_env):
        """SimArgs is optional on Performance: bound vs absent differ."""
        env = stocked_env
        cache = env.cache
        sim_args = env.install_data(S.SIM_ARGS, {"step": 0.1})
        sim_id = env.tools[S.SIMULATOR].instance_id
        combo_without = {"netlist": env.netlist.instance_id}
        combo_with = {"netlist": env.netlist.instance_id,
                      "args": sim_args.instance_id}
        key_without = cache.tool_run_key(sim_id, combo_without,
                                         [S.PERFORMANCE])
        key_with = cache.tool_run_key(sim_id, combo_with,
                                      [S.PERFORMANCE])
        assert key_without != key_with

    def test_explicit_invalidate_clears_index(self, counting_env):
        flow, _ = simulate_flow(counting_env)
        counting_env.run(flow, cache="readwrite")
        counting_env.cache.invalidate()
        calls = len(counting_env.calls)
        report = counting_env.run(flow, force=True, cache="reuse")
        assert report.cache_hits == 0
        assert len(counting_env.calls) == calls + 1


class TestFingerprints:
    def test_nested_code_objects_are_stable(self):
        def with_comprehension(ctx, inputs):
            return {k: v for k, v in inputs.items()}

        first = fingerprint_callable(with_comprehension)
        second = fingerprint_callable(with_comprehension)
        assert first == second
        assert "0x" not in first

    def test_different_code_different_fingerprint(self):
        def a(ctx, inputs):
            return 1

        def b(ctx, inputs):
            return 2

        assert fingerprint_callable(a) != fingerprint_callable(b)

    def test_preset_args_change_fingerprint(self):
        base = encapsulation("e", lambda ctx, ins: None, mode="fast")
        slow = base.with_args("e", mode="slow")
        assert base.fingerprint() != slow.fingerprint()


class TestPersistence:
    def test_cache_round_trips_through_save_load(self, tmp_path,
                                                 stocked_env):
        env = stocked_env
        flow, _ = build_performance_flow(
            env, netlist_id=env.netlist.instance_id,
            models_id=env.models.instance_id,
            stimuli_id=env.stimuli.instance_id,
            simulator_id=env.tools[S.SIMULATOR].instance_id)
        cold = env.run(flow, cache="readwrite")
        save_environment(env, tmp_path)
        assert (tmp_path / CACHE_FILE).exists()

        reloaded = load_environment(tmp_path)
        register_standard_encapsulations(reloaded)
        flow2, _ = build_performance_flow(
            reloaded, netlist_id=env.netlist.instance_id,
            models_id=env.models.instance_id,
            stimuli_id=env.stimuli.instance_id,
            simulator_id=env.tools[S.SIMULATOR].instance_id)
        warm = reloaded.run(flow2, cache="reuse")
        assert not warm.results
        assert sorted(warm.reused) == sorted(cold.created)

    def test_reload_prefers_newest_group_after_force(self, tmp_path,
                                                     stocked_env):
        # a forced re-run stores its group before the snapshot/sweep
        # absorbs older history, so group list order is not recency
        # order; fetch must rank by member timestamps
        env = stocked_env
        flow, _ = build_performance_flow(
            env, netlist_id=env.netlist.instance_id,
            models_id=env.models.instance_id,
            stimuli_id=env.stimuli.instance_id,
            simulator_id=env.tools[S.SIMULATOR].instance_id)
        env.run(flow, cache="readwrite")
        save_environment(env, tmp_path)

        mid = load_environment(tmp_path)
        register_standard_encapsulations(mid)
        flow2, _ = build_performance_flow(
            mid, netlist_id=env.netlist.instance_id,
            models_id=env.models.instance_id,
            stimuli_id=env.stimuli.instance_id,
            simulator_id=env.tools[S.SIMULATOR].instance_id)
        forced = mid.run(flow2, cache="readwrite", force=True)
        save_environment(mid, tmp_path)

        # simulate a snapshot written with inverted group order (as the
        # pre-fix store() produced): recency ranking must still win
        cache_file = tmp_path / CACHE_FILE
        payload = json.loads(cache_file.read_text())
        for entry in payload["entries"].values():
            entry["groups"].reverse()
        cache_file.write_text(json.dumps(payload))

        reloaded = load_environment(tmp_path)
        register_standard_encapsulations(reloaded)
        flow3, _ = build_performance_flow(
            reloaded, netlist_id=env.netlist.instance_id,
            models_id=env.models.instance_id,
            stimuli_id=env.stimuli.instance_id,
            simulator_id=env.tools[S.SIMULATOR].instance_id)
        warm = reloaded.run(flow3, cache="reuse")
        assert not warm.results
        assert sorted(warm.reused) == sorted(forced.created)

    def test_snapshot_dropped_on_signature_mismatch(self, tmp_path,
                                                    stocked_env):
        env = stocked_env
        flow, _ = build_performance_flow(
            env, netlist_id=env.netlist.instance_id,
            models_id=env.models.instance_id,
            stimuli_id=env.stimuli.instance_id,
            simulator_id=env.tools[S.SIMULATOR].instance_id)
        env.run(flow, cache="readwrite")
        save_environment(env, tmp_path)
        payload = json.loads((tmp_path / CACHE_FILE).read_text())
        payload["signature"] = "stale" * 12
        cache = DerivationCache(env.db, env.registry)
        cache.restore(payload)
        cache.sync()
        # snapshot untrusted -> durations forgotten, but the lazy sweep
        # still rebuilds keys from the history itself
        assert cache._pending is None

    def test_invocation_counter_survives_reload(self, tmp_path,
                                                stocked_env):
        env = stocked_env
        flow, _ = build_performance_flow(
            env, netlist_id=env.netlist.instance_id,
            models_id=env.models.instance_id,
            stimuli_id=env.stimuli.instance_id,
            simulator_id=env.tools[S.SIMULATOR].instance_id)
        env.run(flow)
        used = {i.derivation.invocation for i in env.db.instances()
                if i.derivation is not None}
        save_environment(env, tmp_path)
        reloaded = load_environment(tmp_path)
        assert reloaded.db.new_invocation_id() not in used


class TestDataStoreDigests:
    def test_full_digests_with_short_ref_compat(self, schema):
        from repro.history import DataStore
        store = DataStore()
        ref = store.put({"x": 1})
        assert len(ref) == 64
        short = ref[:16]
        assert store.get(short) == {"x": 1}  # legacy refs still resolve
        assert store.get(ref) == {"x": 1}
        assert short in store and ref in store

    def test_legacy_history_payload_upgraded(self, schema, clock):
        """Histories saved with truncated refs load and resolve."""
        from repro.history import HistoryDatabase
        db = HistoryDatabase(schema, clock=clock)
        instance = db.install(S.STIMULI, [[0, 1]])
        payload = db.to_dict()
        # simulate a pre-upgrade save: truncate refs everywhere
        for spec in payload["instances"]:
            if spec.get("data_ref"):
                spec["data_ref"] = spec["data_ref"][:16]
        payload["blobs"] = {
            (k[:16]): v for k, v in payload["blobs"].items()}
        db2 = HistoryDatabase.from_dict(schema, payload)
        assert db2.data(instance.instance_id) == [[0, 1]]
