"""Large-design integration: a 4-bit ripple-carry adder, end to end.

The substrate's composition test at a few hundred transistors:
logic -> tech map -> place -> route -> DRC -> extract -> LVS -> compiled
switch-level simulation, cross-checked against the boolean model on
random vectors.  Everything runs through the framework so the history
records the whole derivation.
"""

import pytest

from repro.history import backward_trace, history_statistics
from repro.schema import standard as S
from repro.tools import (check_design_rules, compile_netlist, extract,
                         random_vectors, route_layout, standard_library,
                         stdcell_layout, tech_map, verify)
from repro.tools.logic import LogicSpec

BITS = 4


def adder_spec() -> LogicSpec:
    """Ripple-carry adder as two-level equations per bit.

    sum_i = a_i ^ b_i ^ c_i expressed with and/or/not; the carries are
    substituted through, so the spec is purely combinational.
    """
    def xor(p: str, q: str) -> str:
        return f"(({p}) & ~({q})) | (~({p}) & ({q}))"

    equations = []
    carry = "cin"
    for bit in range(BITS):
        a, b = f"a{bit}", f"b{bit}"
        equations.append(f"s{bit} = {xor(xor(a, b), carry)}")
        carry = f"(({a}) & ({b})) | ((({a}) | ({b})) & ({carry}))"
    equations.append(f"cout = {carry}")
    return LogicSpec.from_equations("rca4", *equations)


@pytest.fixture(scope="module")
def design():
    library = standard_library()
    spec = adder_spec()
    gates = tech_map(spec)
    layout = stdcell_layout(spec, library, {"seed": 3, "moves": 150})
    routed, summary = route_layout(layout, library)
    netlist, stats = extract(routed, library)
    return {"library": library, "spec": spec, "gates": gates,
            "layout": layout, "routed": routed, "summary": summary,
            "netlist": netlist, "stats": stats}


class TestRippleCarryAdder:
    def test_scale(self, design):
        assert design["stats"].transistor_count > 150
        assert design["stats"].cell_count > 25

    def test_drc_clean_after_routing(self, design):
        report = check_design_rules(design["routed"],
                                    design["library"])
        assert report.clean, report.render()

    def test_lvs_layout_vs_gates(self, design):
        result = verify(design["gates"], design["netlist"],
                        library=design["library"])
        assert result.matched, result.reasons

    def test_simulation_matches_boolean_model(self, design):
        network = compile_netlist(design["netlist"])
        stimuli = random_vectors(design["netlist"].inputs, 24, seed=11)
        report = network.simulate(stimuli)
        spec = design["spec"]
        for index, assignment in enumerate(stimuli.as_maps()):
            expected = spec.evaluate(assignment)
            for output in spec.outputs:
                assert report.waveform(output)[index] == \
                    str(expected[output]), (index, output, assignment)

    def test_arithmetic_is_correct(self, design):
        """Spot-check actual addition on a few operand pairs."""
        network = compile_netlist(design["netlist"])
        from repro.tools.stimuli import from_table

        cases = [(3, 9, 0), (15, 15, 1), (0, 0, 0), (7, 8, 1)]
        rows = []
        for a, b, cin in cases:
            row = {"cin": cin}
            for bit in range(BITS):
                row[f"a{bit}"] = (a >> bit) & 1
                row[f"b{bit}"] = (b >> bit) & 1
            rows.append(row)
        stimuli = from_table(design["netlist"].inputs, rows)
        report = network.simulate(stimuli)
        for index, (a, b, cin) in enumerate(cases):
            total = a + b + cin
            got = sum(
                int(report.waveform(f"s{bit}")[index]) << bit
                for bit in range(BITS))
            got += int(report.waveform("cout")[index]) << BITS
            assert got == total, f"{a}+{b}+{cin}: got {got}"


class TestFrameworkAtScale:
    def test_full_flow_through_environment(self, stocked_env, design):
        """The adder pipeline executed as framework tasks."""
        env = stocked_env
        logic = env.install_data(S.EDITED_LOGIC_SPEC, design["spec"],
                                 name="rca4-logic")
        # stdcell implementation
        flow, std_goal = env.goal_flow(S.STD_CELL_LAYOUT, "impl")
        flow.expand(std_goal)
        flow.bind(flow.sole_node_of_type(S.LOGIC_SPEC),
                  logic.instance_id)
        flow.bind(flow.sole_node_of_type(S.STD_CELL_GENERATOR),
                  env.tools[S.STD_CELL_GENERATOR].instance_id)
        env.run(flow)
        # route it
        route_flow, routed_goal = env.goal_flow(S.ROUTED_LAYOUT)
        route_flow.expand(routed_goal)
        input_layout = next(
            n for n in route_flow.nodes_of_type(S.LAYOUT)
            if n.node_id != routed_goal.node_id)
        route_flow.bind(input_layout, std_goal.produced[0])
        route_flow.bind(route_flow.sole_node_of_type(S.ROUTER),
                        env.tools[S.ROUTER].instance_id)
        env.run(route_flow)
        # DRC it
        drc_flow, drc_goal = env.goal_flow(S.DRC_REPORT)
        drc_flow.expand(drc_goal)
        drc_flow.bind(drc_flow.sole_node_of_type(S.LAYOUT),
                      routed_goal.produced[0])
        drc_flow.bind(drc_flow.sole_node_of_type(S.DRC_CHECKER),
                      env.tools[S.DRC_CHECKER].instance_id)
        env.run(drc_flow)
        assert env.db.data(drc_goal.produced[0]).clean
        # the derivation chain runs logic -> layout -> routed -> report
        trace = backward_trace(env.db, drc_goal.produced[0])
        assert logic.instance_id in trace
        assert std_goal.produced[0] in trace
        stats = history_statistics(env.db)
        assert stats.max_depth >= 3
