"""Tests for the run ledger and longitudinal health checks."""

import json

import pytest

from repro.errors import ObservabilityError, ToolError
from repro.execution import encapsulation
from repro.execution.executor import ExecutionReport, InvocationResult
from repro.obs import (FAIL, OK, WARN, HealthThresholds, JSONLSink,
                       RunLedger, RunRecord, ToolRunStats,
                       evaluate_health, render_json,
                       render_prometheus_ledger, timer_stats_of,
                       tool_baselines)
from repro.obs.health import (check_cache_hit_rate, check_error_rate,
                              check_parallelism_efficiency,
                              check_tool_duration_drift)
from repro.persistence import (LEDGER_FILE, load_environment,
                               save_environment)
from repro.schema import standard as S
from tests.conftest import build_performance_flow


def make_report(flow="f", durations=(0.02,), tool=S.SIMULATOR):
    report = ExecutionReport(flow)
    for index, duration in enumerate(durations):
        report.results.append(InvocationResult(
            invocation_id=f"i{index}", tool_type=tool,
            tool_instances=(), encapsulation="e", runs=1,
            created=(f"X#{index:04d}",), outputs_by_node={},
            duration=duration))
    report.wall_time = sum(durations)
    return report


def make_record(tool_mean=0.05, *, tool=S.SIMULATOR, flow="f",
                executor="sequential", errors=0, error="",
                cache_policy="off", cache_hits=0, cache_misses=0,
                parallelism=1.0, pool_size=0, run_id="",
                trace_id=""):
    return RunRecord(
        run_id=run_id or f"r{tool_mean}", timestamp=1.0, flow=flow,
        executor=executor, cache_policy=cache_policy,
        trace_id=trace_id, wall_time=tool_mean,
        serial_time=tool_mean * parallelism, parallelism=parallelism,
        pool_size=pool_size,
        runs=1, created=1, cache_hits=cache_hits,
        cache_misses=cache_misses, errors=errors, error=error,
        tools={tool: ToolRunStats(1, 1, timer_stats_of([tool_mean]))})


THRESHOLDS = HealthThresholds()


class TestRunRecord:
    def test_from_report_groups_by_tool_type(self):
        report = make_report(durations=(0.01, 0.03))
        report.results.append(InvocationResult(
            invocation_id="c", tool_type=None, tool_instances=(),
            encapsulation="compose", runs=1, created=("Y#0001",),
            outputs_by_node={}, duration=0.002))
        record = RunRecord.from_report(report, executor="sequential")
        assert set(record.tools) == {S.SIMULATOR, "@compose"}
        stats = record.tools[S.SIMULATOR]
        assert stats.invocations == 2
        assert stats.duration.mean == pytest.approx(0.02)
        assert record.runs == 3
        assert record.created == 3

    def test_cache_miss_heuristic_counts_executed_runs(self):
        report = make_report(durations=(0.01, 0.01))
        off = RunRecord.from_report(report, executor="sequential")
        assert (off.cache_misses, off.cache_lookups) == (0, 0)
        cached = RunRecord.from_report(report, executor="sequential",
                                       cache_policy="reuse")
        assert cached.cache_misses == 2
        assert cached.cache_hit_rate == 0.0

    def test_roundtrip_via_dict(self):
        record = make_record(0.02, errors=1, error="boom",
                             trace_id="t1", parallelism=2.5)
        clone = RunRecord.from_dict(
            json.loads(render_json(record.to_dict())))
        assert clone == record

    def test_unsupported_major_version_rejected(self):
        spec = make_record(0.02).to_dict()
        spec["schema_version"] = "ledger2.v9"
        with pytest.raises(ObservabilityError):
            RunRecord.from_dict(spec)

    def test_render_mentions_run_and_errors(self):
        text = make_record(0.02, errors=1, run_id="abc123").render()
        assert "abc123" in text
        assert "ERRORS=1" in text


class TestRunLedger:
    def test_append_and_read_back(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(make_record(0.01, run_id="a1"))
        ledger.append(make_record(0.02, run_id="b2"))
        assert [r.run_id for r in ledger.records()] == ["a1", "b2"]
        assert len(ledger) == 2
        assert [r.run_id for r in ledger.last(1)] == ["b2"]

    def test_missing_file_is_an_empty_ledger(self, tmp_path):
        ledger = RunLedger(tmp_path / "absent.jsonl")
        assert ledger.records() == ()
        assert len(ledger) == 0

    def test_truncated_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.append(make_record(0.01, run_id="ok1"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"run_id": "torn')  # killed mid-write
        assert [r.run_id for r in ledger.records()] == ["ok1"]

    def test_find_accepts_unambiguous_prefix(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(make_record(0.01, run_id="abc123"))
        ledger.append(make_record(0.02, run_id="abd456"))
        assert ledger.find("abc").run_id == "abc123"
        assert ledger.find("abd456").run_id == "abd456"
        with pytest.raises(ObservabilityError, match="ambiguous"):
            ledger.find("ab")
        with pytest.raises(ObservabilityError, match="no run"):
            ledger.find("zzz")

    def test_for_trace_joins_latest_matching_run(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(make_record(0.01, run_id="a1", trace_id="t1"))
        ledger.append(make_record(0.02, run_id="b2", trace_id="t1"))
        assert ledger.for_trace("t1").run_id == "b2"
        assert ledger.for_trace("t9") is None
        assert ledger.for_trace("") is None

    def test_record_run_swallows_write_failures(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("", encoding="utf-8")
        ledger = RunLedger(blocker / "ledger.jsonl")
        result = ledger.record_run(make_report(),
                                   executor="sequential")
        assert result is None  # the design run must not fail


class TestBaselines:
    def test_median_mad_and_floors(self):
        records = [make_record(mean) for mean in (0.10, 0.12, 0.14)]
        base = tool_baselines(records)[S.SIMULATOR]
        assert base.samples == 3
        assert base.median == pytest.approx(0.12)
        assert base.mad == pytest.approx(0.02)
        # MAD term: 4 * 1.4826 * 0.02 ≈ 0.119 dominates both floors
        assert base.threshold == pytest.approx(4 * 1.4826 * 0.02)

    def test_relative_floor_guards_tight_baselines(self):
        records = [make_record(0.10) for _ in range(4)]  # MAD == 0
        base = tool_baselines(records)[S.SIMULATOR]
        assert base.threshold == pytest.approx(0.025)  # 0.25 * median

    def test_absolute_floor_guards_fast_tools(self):
        records = [make_record(0.001) for _ in range(4)]
        base = tool_baselines(records)[S.SIMULATOR]
        assert base.threshold == pytest.approx(0.010)

    def test_error_runs_and_old_runs_excluded(self):
        records = [make_record(9.0)] + \
            [make_record(0.1) for _ in range(25)] + \
            [make_record(9.0, errors=1)]
        base = tool_baselines(records, window=20)[S.SIMULATOR]
        assert base.samples == 20
        assert base.median == pytest.approx(0.1)


class TestHealthChecks:
    def test_drift_fail_warn_and_ok(self):
        baseline = [make_record(0.10) for _ in range(5)]
        fail = check_tool_duration_drift(make_record(0.20), baseline,
                                         THRESHOLDS)
        assert fail.verdict == FAIL
        assert S.SIMULATOR in fail.detail
        warn = check_tool_duration_drift(make_record(0.118), baseline,
                                         THRESHOLDS)
        assert warn.verdict == WARN
        ok = check_tool_duration_drift(make_record(0.10), baseline,
                                       THRESHOLDS)
        assert ok.verdict == OK

    def test_drift_needs_min_samples(self):
        result = check_tool_duration_drift(
            make_record(9.9), [make_record(0.1)], THRESHOLDS)
        assert result.verdict == OK

    def test_error_rate_spike_vs_unstable_baseline(self):
        clean = [make_record(0.1) for _ in range(4)]
        spike = check_error_rate(make_record(0.1, errors=1, error="x"),
                                 clean, THRESHOLDS)
        assert spike.verdict == FAIL
        flaky = [make_record(0.1, errors=(i % 2)) for i in range(4)]
        tolerated = check_error_rate(make_record(0.1, errors=1),
                                     flaky, THRESHOLDS)
        assert tolerated.verdict == WARN
        no_base = check_error_rate(make_record(0.1, errors=1), [],
                                   THRESHOLDS)
        assert no_base.verdict == WARN
        healthy = check_error_rate(make_record(0.1), clean, THRESHOLDS)
        assert healthy.verdict == OK

    def test_cache_hit_rate_collapse(self):
        good = [make_record(0.1, cache_policy="reuse", cache_hits=8,
                            cache_misses=2) for _ in range(3)]
        collapsed = check_cache_hit_rate(
            make_record(0.1, cache_policy="reuse", cache_hits=1,
                        cache_misses=9), good, THRESHOLDS)
        assert collapsed.verdict == FAIL
        dipped = check_cache_hit_rate(
            make_record(0.1, cache_policy="reuse", cache_hits=6,
                        cache_misses=4), good, THRESHOLDS)
        assert dipped.verdict == WARN
        steady = check_cache_hit_rate(
            make_record(0.1, cache_policy="reuse", cache_hits=8,
                        cache_misses=2), good, THRESHOLDS)
        assert steady.verdict == OK
        uncached = check_cache_hit_rate(make_record(0.1), good,
                                        THRESHOLDS)
        assert uncached.verdict == OK

    def test_parallelism_degradation_same_executor_only(self):
        peers = [make_record(0.1, executor="parallel",
                             parallelism=3.8) for _ in range(3)]
        degraded = check_parallelism_efficiency(
            make_record(0.1, executor="parallel", parallelism=1.5),
            peers, THRESHOLDS)
        assert degraded.verdict == FAIL
        other = check_parallelism_efficiency(
            make_record(0.1, executor="sequential", parallelism=1.0),
            peers, THRESHOLDS)
        assert other.verdict == OK  # different executor: no peers

    def test_efficiency_drift_normalized_by_pool_size(self):
        # same raw parallelism, but it took 4x the slots to get it:
        # the worker-normalized gate must fail where raw drift passes
        peers = [make_record(0.1, executor="procpool",
                             parallelism=3.2, pool_size=4,
                             run_id=f"p{i}") for i in range(3)]
        bloated = check_parallelism_efficiency(
            make_record(0.1, executor="procpool", parallelism=3.2,
                        pool_size=16),
            peers, THRESHOLDS)
        assert bloated.verdict == FAIL
        assert "efficiency" in bloated.detail
        steady = check_parallelism_efficiency(
            make_record(0.1, executor="procpool", parallelism=3.2,
                        pool_size=4),
            peers, THRESHOLDS)
        assert steady.verdict == OK
        assert "efficiency" in steady.detail

    def test_efficiency_gate_needs_pool_size_on_the_wire(self):
        # pre-PR-10 ledgers carry no pool_size: the normalized gate
        # sits out and only raw drift can speak
        peers = [make_record(0.1, executor="procpool",
                             parallelism=3.2, run_id=f"p{i}")
                 for i in range(3)]
        legacy = check_parallelism_efficiency(
            make_record(0.1, executor="procpool", parallelism=3.0,
                        pool_size=16),
            peers, THRESHOLDS)
        assert legacy.verdict == OK
        assert "efficiency" not in legacy.detail

    def test_efficiency_floor_never_gates_serial_flows(self):
        # a flow without parallel work has baseline efficiency under
        # the floor; shrinking it further must not flake
        peers = [make_record(0.1, executor="procpool",
                             parallelism=2.0, pool_size=16,
                             run_id=f"p{i}") for i in range(3)]
        quiet = check_parallelism_efficiency(
            make_record(0.1, executor="procpool", parallelism=1.8,
                        pool_size=16),
            peers, THRESHOLDS)
        assert quiet.verdict == OK
        assert "below gating floor" in quiet.detail

    def test_pool_size_roundtrips_optionally(self):
        record = make_record(0.1, executor="procpool",
                             parallelism=3.0, pool_size=8)
        spec = record.to_dict()
        assert spec["pool_size"] == 8
        assert RunRecord.from_dict(spec).pool_size == 8
        assert "pool=8" in record.render()
        legacy = make_record(0.1)
        assert "pool_size" not in legacy.to_dict()
        assert RunRecord.from_dict(legacy.to_dict()).pool_size == 0

    def test_evaluate_health_empty_and_exit_codes(self):
        empty = evaluate_health([])
        assert empty.run is None
        assert empty.exit_code == 0
        assert "no runs" in empty.render()
        records = [make_record(0.10) for _ in range(4)] \
            + [make_record(0.30, run_id="slow")]
        report = evaluate_health(records)
        assert report.run.run_id == "slow"
        assert report.verdict == FAIL
        assert report.exit_code == 1
        assert [c.name for c in report.failures] == \
            ["tool-duration-drift"]
        payload = json.loads(render_json(report.to_dict()))
        assert payload["verdict"] == "fail"
        assert payload["run"]["run_id"] == "slow"
        healthy = evaluate_health(records[:-1])
        assert healthy.exit_code == 0


class TestPrometheusLedgerExport:
    def test_totals_and_last_run_series(self):
        records = [make_record(0.1, flow="f6", executor="parallel",
                               run_id=f"r{i}", parallelism=3.0)
                   for i in range(3)]
        text = render_prometheus_ledger(records)
        assert "# TYPE repro_runs_total counter\nrepro_runs_total 3" \
            in text
        assert 'flow="f6"' in text
        assert f'tool="{S.SIMULATOR}",quantile="0.5"' in text or \
            f'quantile="0.5",tool="{S.SIMULATOR}"' in text
        assert "repro_run_tool_duration_seconds_count" in text
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        record = make_record(0.1, flow='we"ird\\flow')
        text = render_prometheus_ledger([record])
        assert 'flow="we\\"ird\\\\flow"' in text

    def test_empty_ledger_renders_only_totals(self):
        text = render_prometheus_ledger([])
        assert "repro_runs_total 0" in text
        assert "gauge" not in text


def simulate_flow(env):
    return build_performance_flow(
        env,
        netlist_id=env.netlist.instance_id,
        models_id=env.models.instance_id,
        stimuli_id=env.stimuli.instance_id,
        simulator_id=env.tools[S.SIMULATOR].instance_id)


class TestExecutorWiring:
    def test_sequential_run_appends_one_record(self, stocked_env,
                                               tmp_path):
        ledger = stocked_env.attach_ledger(tmp_path / "ledger.jsonl")
        flow, goal = simulate_flow(stocked_env)
        report = stocked_env.run(flow)
        (record,) = ledger.records()
        assert record.executor == "sequential"
        assert record.flow == flow.graph.name
        assert record.runs == report.runs
        assert record.created == len(report.created)
        assert S.SIMULATOR in record.tools
        assert record.errors == 0

    def test_parallel_run_appends_exactly_one_record(self, stocked_env,
                                                     tmp_path):
        ledger = stocked_env.attach_ledger(tmp_path / "ledger.jsonl")
        flow = stocked_env.new_flow("par")
        for _ in range(2):
            flow.expand(flow.place(S.CIRCUIT))
        for node in flow.nodes():
            if node.entity_type == S.NETLIST:
                flow.bind(node, stocked_env.netlist.instance_id)
            elif node.entity_type == S.DEVICE_MODELS:
                flow.bind(node, stocked_env.models.instance_id)
        stocked_env.parallel_executor(machines=2).execute(flow)
        (record,) = ledger.records()
        assert record.executor == "parallel"
        assert record.runs == 2

    def test_scheduled_run_appends_one_record(self, stocked_env,
                                              tmp_path):
        ledger = stocked_env.attach_ledger(tmp_path / "ledger.jsonl")
        flow, goal = simulate_flow(stocked_env)
        stocked_env.scheduled_executor(machines=2).execute(flow)
        (record,) = ledger.records()
        assert record.executor == "scheduled"

    def test_failed_run_is_recorded_with_error(self, stocked_env,
                                               tmp_path):
        ledger = stocked_env.attach_ledger(tmp_path / "ledger.jsonl")

        def explode(ctx, inputs):
            raise ToolError("simulator crashed")

        stocked_env.registry.register(S.SIMULATOR,
                                      encapsulation("boom", explode))
        flow, goal = simulate_flow(stocked_env)
        with pytest.raises(ToolError):
            stocked_env.run(flow)
        (record,) = ledger.records()
        assert record.errors == 1
        assert "simulator crashed" in record.error

    def test_traced_run_joins_ledger_via_trace_id(self, stocked_env,
                                                  tmp_path):
        ledger = stocked_env.attach_ledger(tmp_path / "ledger.jsonl")
        sink = JSONLSink(tmp_path / "trace.jsonl")
        stocked_env.tracer.subscribe(sink)
        flow, goal = simulate_flow(stocked_env)
        report = stocked_env.run(flow)
        sink.close()
        (record,) = ledger.records()
        assert record.trace_id == stocked_env.tracer.last_trace_id
        instance = stocked_env.db.get(report.created[-1])
        assert ledger.for_trace(instance.trace_id) == record

    def test_no_ledger_no_file(self, stocked_env, tmp_path):
        flow, goal = simulate_flow(stocked_env)
        stocked_env.run(flow)
        assert list(tmp_path.iterdir()) == []


class TestPersistenceWiring:
    def test_loaded_environment_records_runs(self, stocked_env,
                                             tmp_path):
        flow, goal = simulate_flow(stocked_env)
        stocked_env.save_flow("simulate", flow)
        save_environment(stocked_env, tmp_path / "envdir")
        loaded = load_environment(tmp_path / "envdir")
        assert loaded.ledger is not None
        assert loaded.ledger.path == tmp_path / "envdir" / LEDGER_FILE
        assert loaded.ledger.records() == ()  # pre-ledger: no error
        from repro.tools import register_standard_encapsulations
        register_standard_encapsulations(loaded)
        loaded.run(loaded.plan_flow("simulate"))
        assert len(loaded.ledger.records()) == 1

    def test_read_only_directory_disables_recording(self, stocked_env,
                                                    tmp_path,
                                                    monkeypatch):
        save_environment(stocked_env, tmp_path / "envdir")
        import repro.persistence as persistence
        monkeypatch.setattr(persistence.os, "access",
                            lambda *args: False)
        loaded = load_environment(tmp_path / "envdir")
        assert loaded.ledger is None
