"""Tests for the netlist model and cell library."""

import pytest

from repro.errors import ToolError
from repro.tools import (GROUND, NMOS, PMOS, POWER, WEAK, CellLibrary,
                         Netlist, Transistor)


class TestTransistor:
    def test_valid(self):
        t = Transistor("m1", NMOS, "g", "s", "d", width=2.0)
        assert t.terminals == ("g", "s", "d")

    def test_bad_kind(self):
        with pytest.raises(ToolError):
            Transistor("m1", "bjt", "g", "s", "d")

    def test_bad_strength(self):
        with pytest.raises(ToolError):
            Transistor("m1", NMOS, "g", "s", "d", strength="mega")

    def test_bad_geometry(self):
        with pytest.raises(ToolError):
            Transistor("m1", NMOS, "g", "s", "d", width=0)

    def test_dict_roundtrip(self):
        t = Transistor("m1", PMOS, "g", POWER, "d", width=2.5,
                       strength=WEAK)
        assert Transistor.from_dict(t.to_dict()) == t


class TestNetlist:
    def make(self) -> Netlist:
        n = Netlist("test", inputs=("a",), outputs=("y",))
        n.add("mp", PMOS, gate="a", source=POWER, drain="y")
        n.add("mn", NMOS, gate="a", source=GROUND, drain="y")
        return n

    def test_io_overlap_rejected(self):
        with pytest.raises(ToolError):
            Netlist("bad", inputs=("x",), outputs=("x",))

    def test_duplicate_device_rejected(self):
        n = self.make()
        with pytest.raises(ToolError):
            n.add("mp", NMOS, gate="a", source=GROUND, drain="y")

    def test_nets_include_supplies(self):
        n = self.make()
        assert set(n.nets()) == {POWER, GROUND, "a", "y"}
        assert n.internal_nets() == ()

    def test_counts_and_width(self):
        n = self.make()
        assert n.device_count == 2
        assert n.total_width() == 2.0
        assert n.is_flat

    def test_with_device_width_is_a_copy(self):
        n = self.make()
        wider = n.with_device_width("mn", 4.0)
        assert n.transistor("mn").width == 1.0
        assert wider.transistor("mn").width == 4.0

    def test_without_device(self):
        n = self.make()
        smaller = n.without_device("mp")
        assert smaller.device_count == 1
        assert n.device_count == 2

    def test_unknown_device_lookup(self):
        with pytest.raises(ToolError):
            self.make().transistor("ghost")

    def test_dict_roundtrip(self):
        n = self.make()
        n.add_instance("u1", "inv", a="a", y="w")
        restored = Netlist.from_dict(n.to_dict())
        assert restored == n
        assert restored.instance_count == 1

    def test_equality_is_structural(self):
        assert self.make() == self.make()
        other = self.make().with_device_width("mn", 2.0)
        assert other != self.make()


class TestFlatten:
    def test_flatten_inverter(self, library):
        n = Netlist("top", inputs=("a",), outputs=("y",))
        n.add_instance("u1", "inv", a="a", y="y")
        flat = n.flatten(library)
        assert flat.is_flat
        assert flat.device_count == 2
        names = {t.name for t in flat.transistors()}
        assert names == {"u1.mp", "u1.mn"}

    def test_internal_nets_prefixed(self, library):
        n = Netlist("top", inputs=("a", "b"), outputs=("y",))
        n.add_instance("u1", "nand2", a="a", b="b", y="y")
        flat = n.flatten(library)
        assert "u1.mid" in flat.nets()

    def test_supplies_stay_global(self, library):
        n = Netlist("top", inputs=("a",), outputs=("y",))
        n.add_instance("u1", "inv", a="a", y="y")
        flat = n.flatten(library)
        assert POWER in flat.nets() and GROUND in flat.nets()
        assert "u1.VDD" not in flat.nets()

    def test_unconnected_port_rejected(self, library):
        n = Netlist("top", inputs=("a",), outputs=("y",))
        n.add_instance("u1", "nand2", a="a", y="y")  # b missing
        with pytest.raises(ToolError, match="unconnected"):
            n.flatten(library)

    def test_mixed_flat_and_hierarchical(self, library):
        n = Netlist("top", inputs=("a",), outputs=("y",))
        n.add("extra", NMOS, gate="a", source=GROUND, drain="y")
        n.add_instance("u1", "inv", a="a", y="y")
        flat = n.flatten(library)
        assert flat.device_count == 3


class TestCellLibrary:
    def test_standard_cells_present(self, library):
        for cell in ("inv", "buf", "nand2", "nor2", "pla_nmos",
                     "pla_load"):
            assert cell in library

    def test_unknown_cell_rejected(self, library):
        with pytest.raises(ToolError):
            library.cell("flipflop9000")

    def test_port_offsets_inside_footprint(self, library):
        for name in library.names():
            cell = library.cell(name)
            for port in cell.ports:
                dx, dy = cell.port_offset(port)
                assert 0 <= dx < max(cell.width, 1)
                assert 0 <= dy < max(cell.height, 1) + 1

    def test_templates_use_port_names(self, library):
        for name in library.names():
            cell = library.cell(name)
            fragment = cell.netlist_fragment()
            nets = set(fragment.nets())
            for port in cell.ports:
                assert port in nets

    def test_duplicate_cell_rejected(self, library):
        with pytest.raises(ToolError):
            library.add(library.cell("inv"))

    def test_pla_load_is_weak(self, library):
        fragment = library.cell("pla_load").netlist_fragment()
        assert fragment.transistors()[0].strength == WEAK

    def test_library_roundtrip(self, library):
        restored = CellLibrary.from_dict(library.to_dict())
        assert set(restored.names()) == set(library.names())
