"""Tests for the extension subsystems: recall, schema diff, design
process level, and the invocation-level scheduler."""

import time

import pytest

from repro.errors import ExecutionError, UIError
from repro.execution import (DurationModel, MachinePool,
                             ScheduledFlowExecutor, encapsulation,
                             plan_schedule)
from repro.process import (DesignObject, DesignProcessManager, Goal,
                           GoalStatus, ProcessError, verified_predicate)
from repro.schema import standard as S
from repro.schema.diff import diff_schemas
from repro.schema.standard import fig1_schema, fig2_schema, odyssey_schema
from repro.ui import HerculesSession, TaskWindow
from tests.conftest import build_performance_flow


# ---------------------------------------------------------------------------
# recall (section 4.1)
# ---------------------------------------------------------------------------

class TestRecall:
    def executed_performance(self, env):
        flow, goal = build_performance_flow(
            env,
            netlist_id=env.netlist.instance_id,
            models_id=env.models.instance_id,
            stimuli_id=env.stimuli.instance_id,
            simulator_id=env.tools[S.SIMULATOR].instance_id)
        env.run(flow)
        return goal.produced[0]

    def test_recall_rebuilds_bound_flow(self, stocked_env):
        perf_id = self.executed_performance(stocked_env)
        window = TaskWindow(stocked_env)
        flow = window.recall(perf_id)
        bound = {n.bindings[0] for n in flow.nodes() if n.bindings}
        assert perf_id in bound
        assert stocked_env.netlist.instance_id in bound
        flow.validate()

    def test_recall_modify_rerun(self, stocked_env):
        """Recalled, modified (new stimuli), executed — section 4.1."""
        from repro.tools import exhaustive

        env = stocked_env
        perf_id = self.executed_performance(env)
        window = TaskWindow(env)
        flow = window.recall(perf_id)
        new_stim = env.install_data(
            S.STIMULI, exhaustive(("a", "b", "s"), name="mod"),
            name="mod-vectors")
        stim_node = flow.nodes_of_type(S.STIMULI)[0]
        flow.bind(stim_node, new_stim.instance_id)
        report = window.rerun()
        fresh = env.db.browse(S.PERFORMANCE)[-1]
        assert fresh.instance_id != perf_id
        assert fresh.derivation.input_map()["stimuli"] == \
            new_stim.instance_id
        assert report.runs >= 1

    def test_recall_external_data_rejected(self, stocked_env):
        window = TaskWindow(stocked_env)
        with pytest.raises(UIError):
            window.recall(stocked_env.netlist.instance_id)

    def test_session_recall_commands(self, stocked_env):
        perf_id = self.executed_performance(stocked_env)
        session = HerculesSession(stocked_env)
        out = session.execute(f"recall {perf_id}")
        assert "recalled" in out
        out = session.execute("rerun")
        assert "re-executed" in out


# ---------------------------------------------------------------------------
# schema diff
# ---------------------------------------------------------------------------

class TestSchemaDiff:
    def test_identical_schemas_empty_diff(self):
        diff = diff_schemas(fig1_schema(), fig1_schema())
        assert diff.is_empty
        assert diff.artifact_count() == 0
        assert "(no changes)" in diff.render()

    def test_fig1_to_fig2_adds_cosmos(self):
        diff = diff_schemas(fig1_schema(), fig2_schema())
        added = {e.name for e in diff.added_entities}
        assert added == {S.SIM_COMPILER, S.COMPILED_SIMULATOR}
        assert diff.artifact_count() == 1
        assert S.COMPILED_SIMULATOR in diff.impact()

    def test_removal_direction(self):
        diff = diff_schemas(fig2_schema(), fig1_schema())
        removed = {e.name for e in diff.removed_entities}
        assert S.SIM_COMPILER in removed

    def test_dependency_changes_reported(self):
        before = fig1_schema()
        after = fig1_schema()
        from repro.schema.dependency import data_dep
        from repro.schema.entity import data

        after.add_entity(data("TimingSpec"))
        after.add_dependency(data_dep(S.PERFORMANCE, "TimingSpec",
                                      optional=True, role="timing"))
        diff = diff_schemas(before, after)
        assert [d.role for d in diff.added_dependencies] == ["timing"]
        assert S.PERFORMANCE in diff.impact()

    def test_parent_change_impacts_descendants(self):
        before = odyssey_schema()
        after = odyssey_schema()
        # rebuild with a retargeted parent by mutating the entity map is
        # not exposed; simulate by diffing two hand-built schemas
        from repro.schema.entity import data
        from repro.schema.schema import TaskSchema

        a = TaskSchema("a")
        a.add_entity(data("Base"))
        a.add_entity(data("Other"))
        a.add_entity(data("Mid", parent="Base"))
        a.add_entity(data("Leaf", parent="Mid"))
        b = TaskSchema("b")
        b.add_entity(data("Base"))
        b.add_entity(data("Other"))
        b.add_entity(data("Mid", parent="Other"))
        b.add_entity(data("Leaf", parent="Mid"))
        diff = diff_schemas(a, b)
        assert set(diff.impact()) == {"Mid", "Leaf"}


# ---------------------------------------------------------------------------
# design process level
# ---------------------------------------------------------------------------

class TestDesignHierarchy:
    def test_paths_and_walk(self):
        root = DesignObject("chip")
        alu = root.add_child("alu")
        adder = alu.add_child("adder")
        assert adder.path() == "chip/alu/adder"
        assert root.find("alu/adder") is adder
        assert [n.name for n in root.walk()] == ["chip", "alu", "adder"]
        assert adder.is_leaf and not root.is_leaf

    def test_duplicate_child_rejected(self):
        root = DesignObject("chip")
        root.add_child("alu")
        with pytest.raises(ProcessError):
            root.add_child("alu")

    def test_attach_detach(self):
        root = DesignObject("chip")
        alu = root.add_child("alu")
        alu.attach("Netlist#0001")
        alu.attach("Netlist#0001")  # idempotent
        assert alu.attached_ids() == ("Netlist#0001",)
        assert root.attached_ids(recursive=True) == ("Netlist#0001",)
        alu.detach("Netlist#0001")
        with pytest.raises(ProcessError):
            alu.detach("Netlist#0001")

    def test_render(self):
        root = DesignObject("chip", owner="d")
        root.add_child("alu").attach("x")
        text = root.render()
        assert "chip [d]" in text and "alu" in text


class TestProcessManager:
    @pytest.fixture
    def managed(self, stocked_env):
        env = stocked_env
        root = DesignObject("chip")
        mux = root.add_child("mux", owner="tester")
        manager = DesignProcessManager(env, root)
        manager.add_goal(mux, Goal("have-netlist", S.NETLIST,
                                   require_fresh=False))
        manager.add_goal(mux, Goal("have-performance", S.PERFORMANCE))
        return env, manager, mux

    def test_goal_lifecycle(self, managed):
        env, manager, mux = managed
        # nothing attached yet: both open
        assert all(r.status is GoalStatus.OPEN
                   for r in manager.status())
        mux.attach(env.netlist.instance_id)
        statuses = {r.goal.name: r.status for r in manager.status()}
        assert statuses["have-netlist"] is GoalStatus.ACHIEVED
        assert statuses["have-performance"] is GoalStatus.OPEN

    def test_progress_rollup(self, managed):
        env, manager, mux = managed
        mux.attach(env.netlist.instance_id)
        progress = manager.progress()
        assert progress.achieved == 1 and progress.open == 1
        assert progress.fraction == 0.5

    def test_next_tasks_bridge_to_flows(self, managed):
        env, manager, mux = managed
        mux.attach(env.netlist.instance_id)
        tasks = manager.next_tasks()
        assert len(tasks) == 1
        report, flow = tasks[0]
        assert report.goal.name == "have-performance"
        assert flow.nodes()[0].entity_type == S.PERFORMANCE

    def test_stale_goal_yields_retrace_plan(self, managed):
        from repro.tools import edit_session

        env, manager, mux = managed
        flow, goal = build_performance_flow(
            env,
            netlist_id=env.netlist.instance_id,
            models_id=env.models.instance_id,
            stimuli_id=env.stimuli.instance_id,
            simulator_id=env.tools[S.SIMULATOR].instance_id)
        env.run(flow)
        mux.attach(goal.produced[0])
        statuses = {r.goal.name: r.status for r in manager.status()}
        assert statuses["have-performance"] is GoalStatus.ACHIEVED
        # edit the netlist: performance becomes stale
        session = edit_session(env, S.CIRCUIT_EDITOR, [
            {"op": "rename", "name": "v2"}], name="s2")
        edit_flow, edit_goal = env.goal_flow(S.EDITED_NETLIST)
        edit_flow.expand(edit_goal, include_optional=["previous"])
        previous = edit_flow.graph.data_suppliers(
            edit_goal.node_id)["previous"]
        edit_flow.bind(edit_flow.node(previous),
                       env.netlist.instance_id)
        edit_flow.bind(edit_flow.sole_node_of_type(S.CIRCUIT_EDITOR),
                       session.instance_id)
        env.run(edit_flow)
        statuses = {r.goal.name: r.status for r in manager.status()}
        assert statuses["have-performance"] is GoalStatus.STALE
        tasks = dict((r.goal.name, f) for r, f in manager.next_tasks())
        retrace_flow = tasks["have-performance"]
        # the retrace plan is bound to the NEW netlist version
        bound = {n.bindings[0] for n in retrace_flow.nodes()
                 if n.bindings}
        assert edit_goal.produced[0] in bound

    def test_verified_predicate(self, stocked_env):
        env = stocked_env
        from repro.tools import standard_library, stdcell_layout
        from repro.tools.logic import LogicSpec
        from repro.views import verify_correspondence

        and_gate = LogicSpec.from_equations("m", "y = a & b")
        layout = env.install_data(
            S.STD_CELL_LAYOUT,
            stdcell_layout(and_gate, standard_library()),
            name="lay")
        verification = verify_correspondence(
            env, env.netlist, layout, env.tools[S.VERIFIER],
            env.tools[S.EXTRACTOR])
        root = DesignObject("chip")
        manager = DesignProcessManager(env, root)
        manager.add_goal(root, Goal("verified", S.VERIFICATION,
                                    predicate=verified_predicate))
        root.attach(verification.instance_id)
        status = manager.status()[0].status
        # mux netlist vs AND-gate layout: verification exists but failed
        assert status is GoalStatus.OPEN

    def test_duplicate_goal_rejected(self, managed):
        env, manager, mux = managed
        with pytest.raises(ProcessError):
            manager.add_goal(mux, Goal("have-netlist", S.NETLIST))

    def test_report_renders(self, managed):
        env, manager, mux = managed
        mux.attach(env.netlist.instance_id)
        text = manager.report()
        assert "[x] have-netlist" in text
        assert "[ ] have-performance" in text


# ---------------------------------------------------------------------------
# invocation-level scheduler
# ---------------------------------------------------------------------------

def diamond_flow(env, latency=0.02):
    """extract -> {verify, compose -> simulate} within ONE component."""
    def slow(name):
        def fn(ctx, inputs):
            time.sleep(latency)
            return {t: {"made": t} for t in ctx.output_types}
        return fn

    env.install_tool(S.EXTRACTOR, encapsulation("x", slow("x")), name="x")
    env.install_tool(S.SIMULATOR, encapsulation("s", slow("s")), name="s")
    env.install_tool(S.VERIFIER, encapsulation("v", slow("v")), name="v")
    layout = env.install_data(S.EDITED_LAYOUT, {"l": 1})
    models = env.install_data(S.DEVICE_MODELS, {"m": 1})
    stimuli = env.install_data(S.STIMULI, [[0]])
    reference = env.install_data(S.EDITED_NETLIST, {"r": 1})
    flow = env.new_flow("diamond")
    netlist = flow.place(S.EXTRACTED_NETLIST)
    flow.expand(netlist)
    flow.bind(flow.sole_node_of_type(S.LAYOUT), layout.instance_id)
    flow.bind(flow.sole_node_of_type(S.EXTRACTOR),
              env.db.latest(S.EXTRACTOR).instance_id)
    verification = flow.graph.add_node(S.VERIFICATION)
    verifier = flow.graph.add_node(S.VERIFIER)
    verifier.bind(env.db.latest(S.VERIFIER).instance_id)
    reference_node = flow.graph.add_node(S.NETLIST)
    reference_node.bind(reference.instance_id)
    flow.connect(verification, verifier)
    flow.connect(verification, reference_node, role="reference")
    flow.connect(verification, netlist, role="candidate")
    circuit = flow.expand_toward(netlist, S.CIRCUIT)
    models_node = flow.graph.add_node(S.DEVICE_MODELS)
    models_node.bind(models.instance_id)
    flow.connect(circuit, models_node, role="models")
    performance = flow.expand_toward(circuit, S.PERFORMANCE)
    simulator = flow.graph.add_node(S.SIMULATOR)
    simulator.bind(env.db.latest(S.SIMULATOR).instance_id)
    stimuli_node = flow.graph.add_node(S.STIMULI)
    stimuli_node.bind(stimuli.instance_id)
    flow.connect(performance, simulator)
    flow.connect(performance, stimuli_node, role="stimuli")
    return flow


class TestDurationModel:
    def test_default_estimate(self):
        model = DurationModel(default=2.5)
        assert model.estimate(S.SIMULATOR) == 2.5

    def test_learning_from_records(self):
        model = DurationModel()
        model.record(S.SIMULATOR, 1.0)
        model.record(S.SIMULATOR, 3.0)
        model.record(None, 0.5)
        assert model.estimate(S.SIMULATOR) == 2.0
        assert model.estimate(None) == 0.5
        assert "@compose" in model.observed_types()


class TestPlanSchedule:
    def test_diamond_overlaps(self, schema, clock):
        from repro.execution import DesignEnvironment

        env = DesignEnvironment(schema, clock=clock)
        flow = diamond_flow(env, latency=0)
        model = DurationModel(default=1.0)
        serial = plan_schedule(flow, 1, model)
        parallel = plan_schedule(flow, 2, model)
        assert serial.makespan == serial.serial_time
        assert parallel.makespan < serial.makespan
        assert parallel.makespan >= parallel.critical_path
        assert parallel.predicted_speedup > 1.0

    def test_respects_dependencies(self, schema, clock):
        from repro.execution import DesignEnvironment

        env = DesignEnvironment(schema, clock=clock)
        flow = diamond_flow(env, latency=0)
        schedule = plan_schedule(flow, 4, DurationModel(default=1.0))
        finish = {}
        for entry in schedule.entries:
            for output in entry.outputs:
                finish[output] = entry.end
        for entry in schedule.entries:
            for output in entry.outputs:
                for edge in flow.graph.suppliers(output):
                    if edge.supplier in finish:
                        assert finish[edge.supplier] <= \
                            entry.end - (entry.end - entry.start) + 1e-9

    def test_zero_machines_rejected(self, schema, clock):
        from repro.execution import DesignEnvironment

        env = DesignEnvironment(schema, clock=clock)
        flow = diamond_flow(env, latency=0)
        with pytest.raises(ExecutionError):
            plan_schedule(flow, 0)


class TestScheduledExecutor:
    def test_connected_flow_overlaps(self, schema, clock):
        from repro.execution import DesignEnvironment

        env = DesignEnvironment(schema, clock=clock)
        flow = diamond_flow(env, latency=0.03)
        # branch-level parallelism would find a single branch
        assert len(flow.graph.disjoint_branches()) == 1
        pool = MachinePool.local(2)
        executor = ScheduledFlowExecutor(env.db, env.registry,
                                         user="t", pool=pool)
        started = time.perf_counter()
        report = executor.execute(flow)
        elapsed = time.perf_counter() - started
        assert len(report.results) == 4
        # 4 tool-ish invocations x 30 ms serial = 120; 3 on the critical
        # path -> ~90 ms parallel; assert real overlap happened
        assert elapsed < 0.115
        # history is complete and correct
        verification = env.db.browse(S.VERIFICATION)[-1]
        assert verification.derivation is not None

    def test_skips_cached_results(self, schema, clock):
        from repro.execution import DesignEnvironment

        env = DesignEnvironment(schema, clock=clock)
        flow = diamond_flow(env, latency=0)
        executor = ScheduledFlowExecutor(env.db, env.registry,
                                         machines=2)
        executor.execute(flow)
        second = executor.execute(flow)
        assert second.results == []
        assert len(second.skipped) >= 4

    def test_error_propagates(self, schema, clock):
        from repro.execution import DesignEnvironment

        env = DesignEnvironment(schema, clock=clock)

        def broken(ctx, inputs):
            raise RuntimeError("boom")

        env.install_tool(S.EXTRACTOR, encapsulation("b", broken),
                         name="b")
        layout = env.install_data(S.EDITED_LAYOUT, {})
        flow = env.new_flow("crash")
        netlist = flow.place(S.EXTRACTED_NETLIST)
        flow.expand(netlist)
        flow.bind(flow.sole_node_of_type(S.LAYOUT), layout.instance_id)
        flow.bind(flow.sole_node_of_type(S.EXTRACTOR),
                  env.db.latest(S.EXTRACTOR).instance_id)
        executor = ScheduledFlowExecutor(env.db, env.registry,
                                         machines=2)
        with pytest.raises(RuntimeError, match="boom"):
            executor.execute(flow)

    def test_duration_model_learns(self, schema, clock):
        from repro.execution import DesignEnvironment

        env = DesignEnvironment(schema, clock=clock)
        flow = diamond_flow(env, latency=0.02)
        model = DurationModel()
        executor = ScheduledFlowExecutor(env.db, env.registry,
                                         machines=2, durations=model)
        executor.execute(flow)
        assert model.estimate(S.EXTRACTOR) >= 0.015
