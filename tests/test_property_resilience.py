"""Property-based tests (hypothesis) for resilience invariants.

Random seeded fault plans over the Fig. 6 parallel-branches flow, with
and without a retry budget.  Whatever the plan scripts, two invariants
must hold:

* **atomicity** — every invocation the run lost recorded *nothing* in
  the history database: the surviving instance count is exactly the
  branch count minus the recorded losses;
* **repairability** — re-running the flow without faults under
  ``cache="reuse"`` converges to a history equivalent (same multiset of
  entity data) to a run that never saw a fault at all.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.execution import (DesignEnvironment, FaultPlan,
                             ResiliencePolicy, encapsulation)
from repro.schema import standard as S
from repro.schema.standard import odyssey_schema

SCHEMA = odyssey_schema()
BRANCHES = 3


def no_sleep(delay: float) -> None:
    """Backoff/hang sleeps observed but never slept."""


def build_env() -> DesignEnvironment:
    env = DesignEnvironment(SCHEMA, user="chaos")

    def extract(ctx, inputs):
        layout = inputs["layout"]
        return {t: {"from": layout["l"], "made": t}
                for t in ctx.output_types}

    env.extractor = env.install_tool(  # type: ignore[attr-defined]
        S.EXTRACTOR, encapsulation("netex", extract), name="netex")
    return env


def build_flow(env):
    """BRANCHES disjoint extraction branches (the Fig. 6 shape)."""
    flow = env.new_flow("fig6")
    for index in range(BRANCHES):
        layout = env.install_data(S.EDITED_LAYOUT, {"l": index})
        netlist = flow.place(S.EXTRACTED_NETLIST)
        flow.expand(netlist)
        unbound = [n for n in flow.nodes()
                   if n.entity_type == S.LAYOUT and not n.is_bound]
        flow.bind(unbound[0], layout.instance_id)
        tools = [n for n in flow.nodes()
                 if n.entity_type == S.EXTRACTOR and not n.is_bound]
        flow.bind(tools[0], env.extractor.instance_id)
    return flow


def history_signature(env) -> list[tuple[str, str]]:
    """Multiset of (entity type, canonical data) over the whole db."""
    return sorted(
        (inst.entity_type,
         json.dumps(env.db.data(inst), sort_keys=True, default=str))
        for inst in env.db.instances())


@given(seed=st.integers(0, 9999), faults=st.integers(1, 3),
       retries=st.integers(0, 2))
@settings(max_examples=25, deadline=None)
def test_atomicity_and_repair_under_random_fault_plans(seed, faults,
                                                       retries):
    plan = FaultPlan.seeded(seed, [S.EXTRACTOR], faults=faults,
                            max_invocation=2 * BRANCHES,
                            sleep=no_sleep)
    env = build_env()
    env.faults = plan
    env.resilience = ResiliencePolicy(retries=retries, degrade=True,
                                      seed=seed, sleep=no_sleep)
    flow = build_flow(env)
    report = env.run(flow, cache="readwrite")

    # atomicity: every recorded loss left nothing behind; every branch
    # that is not in the losses recorded exactly once
    produced = len(env.db.browse(S.EXTRACTED_NETLIST))
    assert produced == BRANCHES - len(report.failures)
    assert report.retries >= 0

    # repairability: drop the faults (and the policy, whose breaker may
    # have opened) and re-run the same flow with the cache coalescing
    # what already succeeded
    env.faults = None
    env.resilience = None
    for node in flow.nodes():
        node.produced = ()
    repaired = env.run(flow, cache="reuse")
    assert not repaired.failures
    assert len(env.db.browse(S.EXTRACTED_NETLIST)) == BRANCHES
    # what already succeeded was reused, never re-derived
    assert repaired.cache_hits >= BRANCHES - len(report.failures)

    # a clean run that never saw a fault ends with the same history
    clean = build_env()
    clean.run(build_flow(clean))
    assert history_signature(env) == history_signature(clean)


@given(seed=st.integers(0, 9999))
@settings(max_examples=15, deadline=None)
def test_fault_plan_replay_is_deterministic(seed):
    """The same seed scripts the same faults and the same recovery."""
    outcomes = []
    for _ in range(2):
        env = build_env()
        env.faults = FaultPlan.seeded(seed, [S.EXTRACTOR], faults=2,
                                      max_invocation=2 * BRANCHES,
                                      sleep=no_sleep)
        env.resilience = ResiliencePolicy(retries=3, seed=seed,
                                          sleep=no_sleep)
        flow = build_flow(env)
        try:
            report = env.run(flow)
            outcome = (report.retries, len(report.failures),
                       sorted(env.faults.fired))
        except ReproError as error:
            outcome = ("raised", type(error).__name__,
                       sorted(env.faults.fired))
        outcomes.append((outcome, history_signature(env)))
    assert outcomes[0] == outcomes[1]
