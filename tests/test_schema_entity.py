"""Unit tests for entity types and dependency arcs."""

import pytest

from repro.schema.dependency import DepKind, Dependency, data_dep, functional
from repro.schema.entity import (EntityKind, EntityType, composed, data,
                                 tool)


class TestEntityType:
    def test_default_kind_is_data(self):
        entity = EntityType("Netlist")
        assert entity.kind is EntityKind.DATA
        assert entity.is_data and not entity.is_tool

    def test_tool_shorthand(self):
        entity = tool("Simulator", description="sim")
        assert entity.is_tool
        assert entity.description == "sim"

    def test_data_shorthand_with_parent(self):
        entity = data("ExtractedNetlist", parent="Netlist")
        assert entity.parent == "Netlist"

    def test_composed_shorthand(self):
        entity = composed("Circuit")
        assert entity.composed and entity.is_data

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            EntityType("")

    def test_whitespace_name_rejected(self):
        with pytest.raises(ValueError):
            EntityType("   ")

    def test_composed_tool_rejected(self):
        with pytest.raises(ValueError):
            EntityType("Bad", EntityKind.TOOL, composed=True)

    def test_str_is_name(self):
        assert str(EntityType("Layout")) == "Layout"

    def test_frozen(self):
        entity = EntityType("Netlist")
        with pytest.raises(AttributeError):
            entity.name = "Other"  # type: ignore[misc]


class TestDependency:
    def test_functional_shorthand(self):
        dep = functional("Performance", "Simulator")
        assert dep.kind is DepKind.FUNCTIONAL
        assert dep.is_functional and not dep.is_data
        assert dep.arc_label() == "f"

    def test_data_shorthand(self):
        dep = data_dep("Performance", "Stimuli")
        assert dep.is_data
        assert dep.arc_label() == "d"

    def test_optional_label(self):
        dep = data_dep("EditedNetlist", "Netlist", optional=True)
        assert dep.arc_label() == "d?"

    def test_role_defaults_to_target(self):
        dep = data_dep("Performance", "Stimuli")
        assert dep.role == "Stimuli"

    def test_explicit_role(self):
        dep = data_dep("Verification", "Netlist", role="reference")
        assert dep.role == "reference"

    def test_optional_functional_rejected(self):
        with pytest.raises(ValueError):
            Dependency("A", "B", DepKind.FUNCTIONAL, optional=True)

    def test_empty_endpoints_rejected(self):
        with pytest.raises(ValueError):
            Dependency("", "B")
        with pytest.raises(ValueError):
            Dependency("A", "")

    def test_str_rendering(self):
        dep = data_dep("A", "B", optional=True)
        assert str(dep) == "A --d?--> B"
