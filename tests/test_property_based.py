"""Property-based tests (hypothesis) for core invariants.

Covers: codec round-trips, netlist/layout round-trips, flow-operation
closure (random expand/specialize/unexpand sequences never leave the set
of schema-valid DAGs), backward/forward trace duality, version lineage
consistency, and switch-level simulation vs. boolean evaluation for both
implementations (standard cells and PLA).
"""

from __future__ import annotations

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.history.database import HistoryDatabase
from repro.history.datastore import CodecRegistry, DataStore
from repro.history.instance import DerivationRecord
from repro.history.trace import backward_trace, forward_trace, lineage
from repro.schema import standard as S
from repro.schema.standard import odyssey_schema
from repro.tools import (Layout, Netlist, extract, pla_layout,
                         standard_library, stdcell_layout, tech_map,
                         truth_table)
from repro.tools.logic import LogicSpec

SCHEMA = odyssey_schema()
LIBRARY = standard_library()

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

json_values = st.recursive(
    st.none() | st.booleans() | st.integers(-10**6, 10**6)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | st.text(max_size=12),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=6), children, max_size=4),
    max_leaves=12)

net_names = st.sampled_from(["a", "b", "c", "w0", "w1", "y", "z"])


@st.composite
def netlists(draw) -> Netlist:
    n = Netlist(draw(st.sampled_from(["n1", "n2"])),
                inputs=("a", "b"), outputs=("y",))
    count = draw(st.integers(1, 6))
    for index in range(count):
        kind = draw(st.sampled_from(["nmos", "pmos"]))
        n.add(f"m{index}", kind,
              gate=draw(net_names),
              source=draw(st.sampled_from(["GND", "VDD", "w0", "w1"])),
              drain=draw(net_names.filter(lambda x: x not in ("a", "b"))),
              width=draw(st.floats(0.5, 8.0, allow_nan=False)))
    return n


@st.composite
def layouts(draw) -> Layout:
    layout = Layout("lay")
    count = draw(st.integers(0, 5))
    for index in range(count):
        layout.place(f"u{index}",
                     draw(st.sampled_from(["inv", "nand2", "nor2"])),
                     draw(st.integers(0, 30)) * 5,
                     draw(st.integers(0, 30)) * 7)
    for index in range(draw(st.integers(0, 3))):
        points = draw(st.lists(
            st.tuples(st.integers(-5, 40), st.integers(-5, 40)),
            min_size=1, max_size=4))
        layout.route(f"net{index}", points)
    return layout


@st.composite
def logic_specs(draw) -> LogicSpec:
    """Random 2-3 input, 1-2 output boolean functions."""
    inputs = draw(st.sampled_from([("a", "b"), ("a", "b", "c")]))

    def expr(depth: int):
        if depth == 0:
            return ["var", draw(st.sampled_from(inputs))]
        op = draw(st.sampled_from(["and", "or", "not", "var"]))
        if op == "var":
            return ["var", draw(st.sampled_from(inputs))]
        if op == "not":
            return ["not", expr(depth - 1)]
        return [op, expr(depth - 1), expr(depth - 1)]

    outputs = draw(st.integers(1, 2))
    equations = tuple(
        (f"y{k}", expr(draw(st.integers(1, 3)))) for k in range(outputs))
    return LogicSpec("rand", inputs, equations)


# ---------------------------------------------------------------------------
# codec / persistence round-trips
# ---------------------------------------------------------------------------

@given(json_values)
@settings(max_examples=60)
def test_codec_roundtrip_json_values(value):
    registry = CodecRegistry()
    encoded = registry.encode(value)
    json.dumps(encoded)  # must be JSON-safe
    assert registry.decode(encoded) == value


@given(netlists())
@settings(max_examples=40)
def test_netlist_dict_roundtrip(netlist):
    assert Netlist.from_dict(netlist.to_dict()) == netlist


@given(netlists())
@settings(max_examples=40)
def test_datastore_content_addressing(netlist):
    store = DataStore()
    ref1 = store.put(netlist)
    ref2 = store.put(Netlist.from_dict(netlist.to_dict()))
    assert ref1 == ref2
    assert store.get(ref1) == netlist


@given(layouts())
@settings(max_examples=40)
def test_layout_dict_roundtrip(layout):
    assert Layout.from_dict(layout.to_dict()) == layout


# ---------------------------------------------------------------------------
# flow operations stay inside the schema-valid DAG space
# ---------------------------------------------------------------------------

@st.composite
def flow_scripts(draw):
    """A random sequence of (op, index) build operations."""
    return draw(st.lists(
        st.tuples(st.sampled_from(["place", "expand", "specialize",
                                   "unexpand", "forward"]),
                  st.integers(0, 7)),
        min_size=1, max_size=14))


PLACEABLE = [S.PERFORMANCE, S.NETLIST, S.VERIFICATION, S.CIRCUIT,
             S.EDITED_LAYOUT, S.PERFORMANCE_PLOT, S.SIMULATOR,
             S.EXTRACTION_STATISTICS]


@given(flow_scripts())
@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
def test_random_build_sequences_keep_flow_valid(script):
    from repro.core.flow import DynamicFlow
    from repro.errors import ReproError

    flow = DynamicFlow(SCHEMA, "random")
    for op, index in script:
        nodes = flow.nodes()
        try:
            if op == "place":
                flow.place(PLACEABLE[index % len(PLACEABLE)])
            elif op == "expand" and nodes:
                flow.expand(nodes[index % len(nodes)])
            elif op == "specialize" and nodes:
                node = nodes[index % len(nodes)]
                choices = flow.specialization_choices(node)
                if choices:
                    flow.specialize(node, choices[index % len(choices)])
            elif op == "unexpand" and nodes:
                flow.unexpand(nodes[index % len(nodes)])
            elif op == "forward" and nodes:
                node = nodes[index % len(nodes)]
                choices = flow.forward_choices(node)
                if choices:
                    flow.expand_toward(node,
                                       choices[index % len(choices)])
        except ReproError:
            pass  # rejected operations must leave the flow untouched
        flow.validate()  # the invariant: never a broken flow
    # the graph is a DAG: topological order covers every node
    assert len(flow.graph.topological_order()) == len(flow.nodes())


# ---------------------------------------------------------------------------
# history: trace duality and lineage
# ---------------------------------------------------------------------------

@st.composite
def edit_histories(draw):
    """A random branching edit history over EditedNetlist."""
    db = HistoryDatabase(SCHEMA)
    editor = db.install(S.CIRCUIT_EDITOR, {}, name="ed")
    versions = [db.install(S.EDITED_NETLIST, {"v": 0}, name="c0")]
    count = draw(st.integers(1, 8))
    for index in range(count):
        parent = versions[draw(st.integers(0, len(versions) - 1))]
        versions.append(db.record(
            S.EDITED_NETLIST, {"v": index + 1},
            DerivationRecord.make(editor.instance_id,
                                  {"previous": parent.instance_id}),
            name=f"c{index + 1}"))
    return db, versions


@given(edit_histories())
@settings(max_examples=40,
          suppress_health_check=[HealthCheck.too_slow])
def test_backward_forward_duality(history):
    db, versions = history
    for a in versions:
        forward = set(forward_trace(db, a.instance_id).instances())
        for b in versions:
            backward = set(backward_trace(db, b.instance_id).instances())
            # b depends on a  <=>  a reaches b
            assert ((a.instance_id in backward)
                    == (b.instance_id in forward)) \
                or a.instance_id == b.instance_id


@given(edit_histories())
@settings(max_examples=40,
          suppress_health_check=[HealthCheck.too_slow])
def test_lineage_follows_recorded_parents(history):
    db, versions = history
    for version in versions:
        chain = lineage(db, version.instance_id)
        assert chain[-1] == version.instance_id
        assert chain[0] == versions[0].instance_id  # single root
        # consecutive entries are parent links
        for parent, child in zip(chain, chain[1:]):
            record = db.get(child).derivation
            assert record.input_map()["previous"] == parent


@given(edit_histories())
@settings(max_examples=30,
          suppress_health_check=[HealthCheck.too_slow])
def test_version_tree_projection_matches_derivations(history):
    db, versions = history
    trace = forward_trace(db, versions[0].instance_id)
    for node in trace.version_tree(S.NETLIST):
        record = db.get(node.instance_id).derivation
        if record is None:
            assert node.parent_id is None
        else:
            assert node.parent_id == record.input_map()["previous"]


# ---------------------------------------------------------------------------
# simulation matches boolean semantics for both implementations
# ---------------------------------------------------------------------------

@given(logic_specs())
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_stdcell_implementation_matches_logic(spec):
    gates = tech_map(spec)
    expected = {bits: tuple(str(v) for v in values)
                for bits, values in spec.truth_table()}
    assert truth_table(gates, LIBRARY) == expected


@given(logic_specs())
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_pla_equals_stdcell_after_extraction(spec):
    expected = {bits: tuple(str(v) for v in values)
                for bits, values in spec.truth_table()}
    std_net, _ = extract(stdcell_layout(spec, LIBRARY), LIBRARY)
    pla_net, _ = extract(pla_layout(spec, LIBRARY), LIBRARY)
    assert truth_table(std_net) == expected
    assert truth_table(pla_net) == expected


@given(logic_specs(), st.integers(0, 9))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_compiled_equals_interpreted_simulator(spec, seed):
    """Differential test: the compiled engine matches the interpreter."""
    from repro.tools import compile_netlist, default_models, random_vectors
    from repro.tools.simulator import simulate_interpreted

    netlist = tech_map(spec).flatten(LIBRARY)
    stimuli = random_vectors(netlist.inputs, 12, seed=seed)
    models = default_models()
    fast = compile_netlist(netlist).simulate(stimuli, models)
    slow = simulate_interpreted(netlist, stimuli, models)
    assert fast.waveform_map() == slow.waveform_map()
    assert fast.settle_steps == slow.settle_steps
    assert fast.transitions == slow.transitions


@given(netlists(), st.randoms())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_verifier_invariant_under_renaming_and_reordering(netlist, rng):
    """LVS must match a netlist against a scrambled copy of itself."""
    from repro.tools import verify

    payload = netlist.to_dict()
    # rename internal nets consistently
    internal = [n for n in netlist.nets()
                if n not in ("VDD", "GND", *netlist.inputs,
                             *netlist.outputs)]
    mapping = {old: f"zz{i}" for i, old in enumerate(internal)}
    for t in payload["transistors"]:
        for key in ("gate", "source", "drain"):
            t[key] = mapping.get(t[key], t[key])
    # rename and reorder devices
    rng.shuffle(payload["transistors"])
    for i, t in enumerate(payload["transistors"]):
        t["name"] = f"dev{i}"
    scrambled = Netlist.from_dict(payload)
    result = verify(netlist, scrambled)
    assert result.matched, result.reasons


@given(st.integers(0, 2**30))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_placer_routing_preserves_function_any_seed(seed):
    """Place+route with any seed keeps the circuit's function."""
    from repro.tools import place, route_layout, verify
    from repro.tools import extract as extract_fn

    spec = LogicSpec.from_equations("m", "y = (a & b) | ~c")
    gates = tech_map(spec)
    layout = place(gates, {"seed": seed, "moves": 60}, LIBRARY)
    routed, _ = route_layout(layout, LIBRARY)
    from repro.tools import check_design_rules

    assert check_design_rules(routed, LIBRARY).clean
    netlist, _ = extract_fn(routed, LIBRARY)
    assert verify(gates, netlist, library=LIBRARY).matched


@given(logic_specs())
@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_simplify_preserves_function(spec):
    """simplify() never changes the boolean function."""
    from repro.tools.logic import (LogicSpec as LS, operator_count,
                                   simplify)

    simplified = LS(spec.name, spec.inputs,
                    tuple((o, simplify(e)) for o, e in spec.equations))
    assert simplified.truth_table() == spec.truth_table()
    for (_, before), (_, after) in zip(spec.equations,
                                       simplified.equations):
        assert operator_count(after) <= operator_count(before)


@given(netlists())
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_spice_roundtrip_random_netlists(netlist):
    """to_spice/from_spice round-trips arbitrary flat netlists."""
    from repro.tools import from_spice, to_spice

    deck = to_spice(netlist, LIBRARY)
    assert from_spice(deck, LIBRARY) == netlist
