"""Tests for the design-rule checker."""

import pytest

from repro.schema import standard as S
from repro.tools import (DrcReport, check_design_rules, standard_library,
                         stdcell_layout)
from repro.tools.layout import Layout
from repro.tools.logic import LogicSpec


@pytest.fixture
def clean_layout(library) -> Layout:
    layout = Layout("clean")
    layout.place("u1", "inv", 2, 0)
    layout.add_pin("a", 0, 1, "in")
    layout.add_pin("y", 6, 1, "out")
    layout.route("a", [(0, 1), (2, 1)])
    layout.route("y", [(3, 1), (6, 1)])
    return layout


class TestRules:
    def test_clean_layout(self, clean_layout, library):
        report = check_design_rules(clean_layout, library)
        assert report.clean
        assert bool(report)
        assert report.violations == ()
        assert report.warnings == ()

    def test_overlap_detected(self, library):
        layout = Layout("bad")
        layout.place("u1", "inv", 0, 0)
        layout.place("u2", "inv", 1, 1)  # inv is 2x4: overlaps
        report = check_design_rules(layout, library)
        rules = {v.rule for v in report.violations}
        assert "overlap" in rules
        assert not report.clean

    def test_touching_cells_not_overlap(self, library):
        layout = Layout("ok")
        layout.place("u1", "inv", 0, 0)
        layout.place("u2", "inv", 2, 0)  # abutting, not overlapping
        report = check_design_rules(layout, library)
        assert "overlap" not in {v.rule for v in report.violations}

    def test_short_detected(self, clean_layout, library):
        clean_layout.route("other", [(2, 1), (9, 9)])  # hits port of a
        report = check_design_rules(clean_layout, library)
        shorts = [v for v in report.violations if v.rule == "short"]
        assert shorts
        assert shorts[0].at == (2, 1)

    def test_pin_stack_detected(self, library):
        layout = Layout("pins")
        layout.add_pin("a", 0, 0, "in")
        layout.add_pin("b", 0, 0, "in")
        report = check_design_rules(layout, library)
        assert "pin-stack" in {v.rule for v in report.violations}

    def test_off_grid_detected(self, library):
        layout = Layout("far")
        layout.place("u1", "inv", -100, 0)
        report = check_design_rules(layout, library)
        assert "off-grid" in {v.rule for v in report.violations}

    def test_dangling_port_is_warning_only(self, library):
        layout = Layout("dangle")
        layout.place("u1", "inv", 0, 0)
        report = check_design_rules(layout, library)
        assert report.clean  # warnings do not fail DRC
        assert {w.rule for w in report.warnings} == {"dangling"}

    def test_generated_layouts_are_clean(self, library):
        spec = LogicSpec.from_equations("m", "y = (a & b) | ~c")
        layout = stdcell_layout(spec, library)
        report = check_design_rules(layout, library)
        assert report.clean, report.render()

    def test_report_roundtrip(self, clean_layout, library):
        report = check_design_rules(clean_layout, library)
        assert DrcReport.from_dict(report.to_dict()) == report

    def test_render(self, library):
        layout = Layout("bad")
        layout.place("u1", "inv", 0, 0)
        layout.place("u2", "inv", 0, 0)
        text = check_design_rules(layout, library).render()
        assert "VIOLATIONS" in text and "overlap" in text


class TestDrcThroughFlows:
    def test_drc_as_a_flow_task(self, stocked_env):
        """The checker is just another tool behind the schema."""
        env = stocked_env
        from repro.tools import standard_library, stdcell_layout
        from repro.tools.logic import LogicSpec

        layout = env.install_data(
            S.STD_CELL_LAYOUT,
            stdcell_layout(LogicSpec.from_equations("f", "y = a & b"),
                           standard_library()),
            name="lay")
        flow, goal = env.goal_flow(S.DRC_REPORT, "drc")
        flow.expand(goal)
        flow.bind(flow.sole_node_of_type(S.LAYOUT), layout.instance_id)
        flow.bind(flow.sole_node_of_type(S.DRC_CHECKER),
                  env.tools[S.DRC_CHECKER].instance_id)
        env.run(flow)
        report = env.db.data(goal.produced[0])
        assert report.clean
        # the DRC result has a derivation like everything else
        instance = env.db.get(goal.produced[0])
        assert instance.derivation.input_map()["layout"] == \
            layout.instance_id
