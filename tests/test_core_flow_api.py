"""Tests for the DynamicFlow façade and the four design approaches."""

import pytest

from repro.core import (DynamicFlow, data_based, goal_based, plan_based,
                        tool_based)
from repro.errors import FlowError
from repro.schema import standard as S
from repro.schema.catalog import FlowCatalog


class TestDynamicFlow:
    def test_place_marks_explicit(self, schema):
        flow = DynamicFlow(schema)
        node = flow.place(S.PERFORMANCE)
        assert node.explicit

    def test_expand_and_inspect(self, schema):
        flow = DynamicFlow(schema, "f")
        goal = flow.place(S.PERFORMANCE)
        flow.expand(goal)
        assert flow.sole_node_of_type(S.CIRCUIT)
        assert goal in flow.goals()
        assert len(flow.leaves()) == 3

    def test_sole_node_of_type_requires_uniqueness(self, schema):
        flow = DynamicFlow(schema)
        flow.place(S.STIMULI)
        flow.place(S.STIMULI)
        with pytest.raises(LookupError):
            flow.sole_node_of_type(S.STIMULI)
        with pytest.raises(LookupError):
            flow.sole_node_of_type(S.PERFORMANCE)

    def test_readiness(self, schema):
        flow = DynamicFlow(schema)
        goal = flow.place(S.PERFORMANCE)
        flow.expand(goal)
        assert not flow.is_ready()
        assert len(flow.unbound_leaves()) == 3
        for leaf in flow.leaves():
            flow.bind(leaf, "X#0001")
        assert flow.is_ready()

    def test_accepts_node_or_id(self, schema):
        flow = DynamicFlow(schema)
        goal = flow.place(S.PERFORMANCE)
        flow.expand(goal.node_id)
        assert flow.graph.is_expanded(goal.node_id)

    def test_copy_independent(self, schema):
        flow = DynamicFlow(schema, "orig")
        goal = flow.place(S.PERFORMANCE)
        clone = flow.copy("clone")
        clone.expand(goal.node_id)
        assert not flow.graph.is_expanded(goal.node_id)

    def test_dict_roundtrip(self, schema):
        flow = DynamicFlow(schema, "rt")
        goal = flow.place(S.PERFORMANCE)
        flow.expand(goal)
        restored = DynamicFlow.from_dict(schema, flow.to_dict())
        assert len(restored.nodes()) == len(flow.nodes())
        assert restored.name == "rt"

    def test_manual_connect_checked(self, schema):
        flow = DynamicFlow(schema)
        perf = flow.place(S.PERFORMANCE)
        layout = flow.place(S.EDITED_LAYOUT)
        with pytest.raises(FlowError):
            flow.connect(perf, layout)


class TestApproaches:
    def test_goal_based(self, schema):
        flow, node = goal_based(schema, S.PERFORMANCE)
        assert node.entity_type == S.PERFORMANCE
        assert node.explicit

    def test_tool_based_with_instance(self, schema):
        flow, node = tool_based(schema, S.SIMULATOR,
                                tool_instance="Simulator#0007")
        assert node.bindings == ("Simulator#0007",)

    def test_tool_based_rejects_data_type(self, schema):
        with pytest.raises(FlowError):
            tool_based(schema, S.NETLIST)

    def test_data_based(self, schema):
        class FakeInstance:
            instance_id = "ExtractedNetlist#0042"
            entity_type = S.EXTRACTED_NETLIST

        flow, node = data_based(schema, FakeInstance())
        assert node.bindings == ("ExtractedNetlist#0042",)
        assert node.entity_type == S.EXTRACTED_NETLIST

    def test_plan_based(self, schema):
        catalog: FlowCatalog[DynamicFlow] = FlowCatalog()
        proto = DynamicFlow(schema, "proto")
        proto.place(S.VERIFICATION)
        catalog.register_flow("verify", proto)
        flow = plan_based(catalog, "verify")
        assert len(flow.nodes()) == 1
        assert flow is not proto

    def test_all_approaches_reach_same_flow_shape(self, schema):
        """Section 3.4 / CLAIM-D: every approach converges."""
        # goal-based
        goal_flow, goal = goal_based(schema, S.PERFORMANCE)
        goal_flow.expand(goal)
        # tool-based: place Simulator, grow Performance, expand the rest
        tool_flow, sim = tool_based(schema, S.SIMULATOR)
        perf = tool_flow.expand_toward(sim, S.PERFORMANCE)
        for dep in schema.construction(S.PERFORMANCE).required_inputs:
            supplier = tool_flow.graph.add_node(dep.target)
            tool_flow.connect(perf, supplier, role=dep.role)
        # both flows have the same multiset of entity types and edges
        def shape(flow):
            types = sorted(n.entity_type for n in flow.nodes())
            edges = sorted(
                (flow.node(e.consumer).entity_type, e.role,
                 flow.node(e.supplier).entity_type)
                for e in flow.graph.edges())
            return types, edges

        assert shape(goal_flow) == shape(tool_flow)
