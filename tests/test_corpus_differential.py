"""Cross-executor differential harness over the scenario corpus.

Every generated scenario must land on the *same* history — the exact
(entity type, data_ref) multiset the manifest's offline simulation
predicted — on all four executors and both history backends.  A fixed
seed exercises the full matrix; hypothesis then sweeps generator seeds
over a reduced matrix, and seeded fault plans check the resilience
invariants (retry-count exactness, fault-free digest equality) on the
generated fork-join and pipeline shapes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.faults import FaultPlan
from repro.execution.resilience import ResiliencePolicy
from repro.persistence import load_environment, save_environment
from repro.scenarios import (MAIN_FLOW, SHAPES, CorpusSpec,
                             ScenarioSpec, expected_signature,
                             generate_corpus, history_signature,
                             materialize_scenario,
                             register_corpus_encapsulations,
                             scenario_nodes, scenario_specs,
                             signature_digest)

EXECUTORS = ("sequential", "parallel", "scheduled", "procpool")
BACKENDS = ("json", "sqlite")


def no_sleep(delay: float) -> None:
    """Backoff sleeps observed but never slept."""


def run_scenario(spec: ScenarioSpec, directory, *, executor: str,
                 backend: str):
    """Materialize, persist, reload and execute one scenario.

    Round-trips through the requested history backend before running,
    so the differential covers persistence (schema reload, salt-based
    tool re-registration) as well as execution.
    """
    env = materialize_scenario(spec)
    save_environment(env, directory, backend=backend)
    env = load_environment(directory)
    register_corpus_encapsulations(env)
    flow = env.flow_catalog.select(MAIN_FLOW)
    if executor == "parallel":
        runner = env.parallel_executor(machines=2)
    elif executor == "scheduled":
        runner = env.scheduled_executor(machines=2)
    elif executor == "procpool":
        runner = env.process_executor(workers=2)
    else:
        runner = env.executor()
    report = runner.execute(flow)
    save_environment(env, directory)
    return report, history_signature(load_environment(directory))


class TestFixedSeedMatrix:
    """The full 5-shape x 4-executor x 2-backend matrix at one seed."""

    MANIFEST = generate_corpus(CorpusSpec(seed=2026))

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_all_scenarios_agree_with_manifest(self, tmp_path,
                                               executor, backend):
        for spec, entry in zip(scenario_specs(self.MANIFEST),
                               self.MANIFEST["scenarios"]):
            report, signature = run_scenario(
                spec, tmp_path / spec.scenario_id,
                executor=executor, backend=backend)
            assert not report.failures
            assert report.runs == entry["expected"]["runs"], \
                (spec.scenario_id, executor, backend)
            assert signature_digest(signature) == \
                entry["expected"]["history_digest"], \
                (spec.scenario_id, executor, backend)

    def test_report_equivalence_across_executors(self, tmp_path):
        """Same created/reused/skipped portrait on every executor."""
        spec = scenario_specs(self.MANIFEST)[4]  # pipeline
        portraits = set()
        for executor in EXECUTORS:
            report, _ = run_scenario(
                spec, tmp_path / executor, executor=executor,
                backend="json")
            portraits.add((report.runs, len(report.created),
                           len(report.reused), len(report.skipped),
                           len(report.failures)))
        assert len(portraits) == 1


@given(seed=st.integers(0, 99999),
       shape=st.sampled_from(SHAPES),
       executor=st.sampled_from(("sequential", "parallel",
                                 "scheduled")),
       backend=st.sampled_from(BACKENDS))
@settings(max_examples=12, deadline=None)
def test_any_seed_any_shape_matches_simulation(tmp_path_factory, seed,
                                               shape, executor,
                                               backend):
    """Hypothesis sweep: executed history == offline simulation.

    The procpool executor is excluded here (worker-process forking per
    example is too slow for a sweep); the fixed-seed matrix covers it.
    """
    spec = ScenarioSpec(f"h-{shape}", shape, seed, 2, 2, 2)
    directory = tmp_path_factory.mktemp("hyp")
    report, signature = run_scenario(spec, directory,
                                     executor=executor,
                                     backend=backend)
    assert not report.failures
    assert signature == expected_signature(spec)


@given(seed=st.integers(0, 9999),
       shape=st.sampled_from(("fork_join", "pipeline")),
       faults=st.integers(1, 2))
@settings(max_examples=10, deadline=None)
def test_chaos_on_generated_scenarios(seed, shape, faults):
    """PR-5 recovery invariants beyond the fig6 fixture.

    With a retry budget covering every scripted crash, the run must
    recover (retry-count exactness: exactly the fired faults were
    retried away) and the history must be digest-identical to a run
    that never saw a fault.
    """
    spec = ScenarioSpec(f"c-{shape}", shape, seed, 2, 2, 2)
    tool_types = sorted({node.tool_type
                         for node in scenario_nodes(spec)
                         if node.tool_type is not None})
    plan = FaultPlan.seeded(seed, tool_types, faults=faults,
                            max_invocation=3, sleep=no_sleep)
    env = materialize_scenario(spec)
    env.faults = plan
    env.resilience = ResiliencePolicy(retries=3, seed=seed,
                                      sleep=no_sleep)
    report = env.run(env.flow_catalog.select(MAIN_FLOW))
    assert not report.failures
    # retry-count exactness: every fired fault cost exactly one retry
    assert report.retries == len(plan.fired)
    assert history_signature(env) == expected_signature(spec)
