"""Tests for electrical rule checking and VCD export."""

from repro.schema import standard as S
from repro.tools import (ErcReport, GROUND, NMOS, PMOS, POWER, Netlist,
                         check_electrical_rules, compile_netlist,
                         default_models, exhaustive, tech_map, to_vcd)


def inverter() -> Netlist:
    n = Netlist("inv", inputs=("a",), outputs=("y",))
    n.add("mp", PMOS, gate="a", source=POWER, drain="y")
    n.add("mn", NMOS, gate="a", source=GROUND, drain="y")
    return n


class TestErc:
    def test_clean_inverter(self):
        report = check_electrical_rules(inverter())
        assert report.clean and bool(report)
        assert report.warnings == ()

    def test_clean_generated_design(self, library, mux_spec):
        gates = tech_map(mux_spec)
        report = check_electrical_rules(gates, library)
        assert report.clean, report.render()

    def test_floating_gate(self):
        n = Netlist("fg", inputs=("a",), outputs=("y",))
        n.add("mp", PMOS, gate="ghost", source=POWER, drain="y")
        n.add("mn", NMOS, gate="a", source=GROUND, drain="y")
        report = check_electrical_rules(n)
        assert not report.clean
        assert {v.rule for v in report.violations} == {"floating-gate"}

    def test_undriven_output(self):
        n = Netlist("uo", inputs=("a",), outputs=("y", "z"))
        n.add("mn", NMOS, gate="a", source=GROUND, drain="y")
        report = check_electrical_rules(n)
        rules = {v.rule: v.net for v in report.violations}
        assert rules.get("undriven-output") == "z"

    def test_unused_input_is_warning(self):
        n = Netlist("ui", inputs=("a", "spare"), outputs=("y",))
        n.add("mp", PMOS, gate="a", source=POWER, drain="y")
        n.add("mn", NMOS, gate="a", source=GROUND, drain="y")
        report = check_electrical_rules(n)
        assert report.clean
        assert {w.rule for w in report.warnings} == {"unused-input"}

    def test_supply_bridge(self):
        n = Netlist("sb", inputs=("a",), outputs=("y",))
        n.add("mp", PMOS, gate="a", source=POWER, drain="y")
        n.add("mn", NMOS, gate="a", source=GROUND, drain="y")
        n.add("oops", NMOS, gate=POWER, source=GROUND, drain=POWER)
        report = check_electrical_rules(n)
        assert "supply-bridge" in {v.rule for v in report.violations}

    def test_gated_supply_crosser_is_fine(self):
        """A transistor across the rails that is NOT always on is legal
        (that is just a (terrible) gated path, not a static short)."""
        n = Netlist("ok", inputs=("en",), outputs=("y",))
        n.add("mp", PMOS, gate="en", source=POWER, drain="y")
        n.add("mn", NMOS, gate="en", source=GROUND, drain="y")
        n.add("crosser", NMOS, gate="en", source=GROUND, drain=POWER)
        report = check_electrical_rules(n)
        assert "supply-bridge" not in {v.rule for v in report.violations}

    def test_isolated_net_warning(self):
        n = Netlist("iso", inputs=("a",), outputs=("y",))
        n.add("mp", PMOS, gate="a", source=POWER, drain="y")
        n.add("mn", NMOS, gate="a", source=GROUND, drain="y")
        n.add("dangler", NMOS, gate="a", source="nowhere", drain="y")
        report = check_electrical_rules(n)
        assert {w.rule for w in report.warnings} == {"isolated-net"}

    def test_report_roundtrip(self):
        report = check_electrical_rules(inverter())
        assert ErcReport.from_dict(report.to_dict()) == report

    def test_through_flow(self, stocked_env):
        env = stocked_env
        flow, goal = env.goal_flow(S.ERC_REPORT)
        flow.expand(goal)
        flow.bind(flow.sole_node_of_type(S.NETLIST),
                  env.netlist.instance_id)
        flow.bind(flow.sole_node_of_type(S.ERC_CHECKER),
                  env.tools[S.ERC_CHECKER].instance_id)
        env.run(flow)
        assert env.db.data(goal.produced[0]).clean


class TestVcd:
    def report(self):
        return compile_netlist(inverter()).simulate(
            exhaustive(("a",)), default_models())

    def test_structure(self):
        vcd = to_vcd(self.report())
        assert "$timescale 1ns $end" in vcd
        assert "$var wire 1" in vcd
        assert "$enddefinitions $end" in vcd
        assert "#0" in vcd

    def test_value_changes_only(self):
        vcd = to_vcd(self.report())
        # y goes 1 then 0: two change records for its code
        changes = [line for line in vcd.splitlines()
                   if line and line[0] in "01x" and len(line) == 2]
        assert len(changes) == 2

    def test_unknowns_map_to_x(self, library):
        n = Netlist("t", inputs=("d", "en"), outputs=("q",))
        n.add_instance("l", "dlatch", d="d", en="en", q="q")
        from repro.tools.stimuli import from_table

        stim = from_table(("d", "en"), [{"d": 1, "en": 0}])
        report = compile_netlist(n, library).simulate(
            stim, default_models())
        vcd = to_vcd(report)
        assert any(line.startswith("x") for line in vcd.splitlines())

    def test_sanitizes_names(self):
        report = self.report()
        import dataclasses

        renamed = dataclasses.replace(report, circuit="my circuit")
        vcd = to_vcd(renamed)
        assert "$scope module my_circuit $end" in vcd
