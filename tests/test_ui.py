"""Tests for the scriptable Hercules UI (Figs. 9 and 10)."""

import pytest

from repro.errors import UIError
from repro.schema import standard as S
from repro.ui import HerculesSession, InstanceBrowser, TaskWindow
from tests.conftest import build_performance_flow


@pytest.fixture
def window(stocked_env) -> TaskWindow:
    return TaskWindow(stocked_env)


class TestTaskWindow:
    def test_place_from_catalogs(self, window, stocked_env):
        entity = window.place_entity(S.PERFORMANCE)
        tool = window.place_tool(S.SIMULATOR)
        data = window.place_data(stocked_env.netlist.instance_id)
        assert entity.explicit and tool.explicit
        assert data.bindings == (stocked_env.netlist.instance_id,)
        with pytest.raises(UIError):
            window.place_tool(S.NETLIST)

    def test_popup_reflects_state(self, window):
        goal = window.place_entity(S.PERFORMANCE)
        assert "Expand" in window.popup(goal)
        window.expand(goal)
        assert "Unexpand" in window.popup(goal)
        assert "Run" in window.popup(goal)
        netlist = window.place_entity(S.NETLIST)
        assert "Specialize" in window.popup(netlist)
        stim = window.place_entity(S.STIMULI)
        stim.bind("Stimuli#0001")
        assert "History" in window.popup(stim)
        assert "Use" in window.popup(stim)

    def test_expand_unexpand_specialize(self, window):
        goal = window.place_entity(S.PERFORMANCE)
        created = window.expand(goal)
        assert len(created) == 3
        removed = window.unexpand(goal)
        assert len(removed) == 3
        netlist = window.place_entity(S.NETLIST)
        window.specialize(netlist, S.EXTRACTED_NETLIST)
        assert netlist.entity_type == S.EXTRACTED_NETLIST

    def test_help(self, window):
        node = window.place_entity(S.CIRCUIT)
        text = window.help(node)
        assert "composed entity" in text

    def test_run_and_history_reveal(self, window, stocked_env):
        env = stocked_env
        flow, goal = build_performance_flow(
            env,
            netlist_id=env.netlist.instance_id,
            models_id=env.models.instance_id,
            stimuli_id=env.stimuli.instance_id,
            simulator_id=env.tools[S.SIMULATOR].instance_id)
        window.flow = flow
        window.run()
        assert goal.produced
        # Fig. 10: a fresh window, place the performance, reveal history
        fresh = TaskWindow(env)
        perf_node = fresh.place_data(goal.produced[0])
        revealed = fresh.history(perf_node)
        revealed_types = {n.entity_type for n in revealed}
        assert revealed_types == {S.SIMULATOR, S.CIRCUIT, S.STIMULI}
        # already-revealed: second call is a no-op
        assert fresh.history(perf_node) == ()
        # external data has no history
        stim_node = fresh.place_data(env.stimuli.instance_id)
        assert fresh.history(stim_node) == ()

    def test_history_requires_unique_instance(self, window):
        node = window.place_entity(S.STIMULI)
        with pytest.raises(UIError):
            window.history(node)

    def test_use_forward_chains(self, window, stocked_env):
        env = stocked_env
        flow, goal = build_performance_flow(
            env,
            netlist_id=env.netlist.instance_id,
            models_id=env.models.instance_id,
            stimuli_id=env.stimuli.instance_id,
            simulator_id=env.tools[S.SIMULATOR].instance_id)
        env.run(flow)
        fresh = TaskWindow(env)
        netlist_node = fresh.place_data(env.netlist.instance_id)
        performances = fresh.use(netlist_node, S.PERFORMANCE)
        assert [p.instance_id for p in performances] == \
            list(goal.produced)

    def test_render_lists_nodes(self, window):
        goal = window.place_entity(S.PERFORMANCE)
        window.expand(goal)
        text = window.render()
        assert "Performance" in text and "Simulator" in text


class TestInstanceBrowser:
    def test_listing_and_filters(self, stocked_env):
        env = stocked_env
        browser = InstanceBrowser(env, S.STIMULI)
        assert len(browser.listing()) == 1
        browser.set_keywords("nomatch")
        assert browser.listing() == ()
        browser.clear()
        browser.set_user_limit("somebody-else")
        assert browser.listing() == ()
        browser.clear()
        browser.set_date_limits(since=env.stimuli.timestamp + 1)
        assert browser.listing() == ()

    def test_render_rows(self, stocked_env):
        browser = InstanceBrowser(stocked_env, S.STIMULI)
        text = browser.render()
        assert "tester" in text
        assert "all3" in text

    def test_select_binds_flow_node(self, stocked_env):
        env = stocked_env
        window = TaskWindow(env)
        node = window.place_entity(S.NETLIST)
        browser = window.browse(node)
        bound = browser.select_latest()
        assert bound.bindings == (env.netlist.instance_id,)

    def test_select_requires_listing_membership(self, stocked_env):
        env = stocked_env
        window = TaskWindow(env)
        node = window.place_entity(S.NETLIST)
        browser = window.browse(node).set_keywords("nomatch")
        with pytest.raises(UIError):
            browser.select(env.netlist.instance_id)

    def test_unattached_browser_cannot_select(self, stocked_env):
        browser = InstanceBrowser(stocked_env, S.NETLIST)
        with pytest.raises(UIError):
            browser.select("x")

    def test_use_dependencies_option(self, stocked_env):
        env = stocked_env
        flow, goal = build_performance_flow(
            env,
            netlist_id=env.netlist.instance_id,
            models_id=env.models.instance_id,
            stimuli_id=env.stimuli.instance_id,
            simulator_id=env.tools[S.SIMULATOR].instance_id)
        env.run(flow)
        browser = InstanceBrowser(env, S.PERFORMANCE)
        browser.set_use_dependencies(env.netlist.instance_id)
        assert [i.instance_id for i in browser.listing()] == \
            list(goal.produced)
        browser.set_use_dependencies(env.stimuli.instance_id)
        assert len(browser.listing()) == 1


class TestHerculesSession:
    def test_scripted_fig9_interaction(self, stocked_env):
        env = stocked_env
        session = HerculesSession(env)
        transcript = session.run_script(f"""
            # start a simulate-performance task, goal-based
            new simulate
            place Performance
            popup n0
            expand n0
            expand n2
            bind n5 {env.netlist.instance_id}
            bind n4 {env.models.instance_id}
            bind n3 {env.stimuli.instance_id}
            select-latest n1
            run
            show
        """)
        assert "placed Performance[n0]" in transcript
        assert "created" in transcript
        assert "task graph" in transcript
        performances = env.db.browse(S.PERFORMANCE)
        assert len(performances) == 1

    def test_fig10_history_browsing(self, stocked_env):
        env = stocked_env
        session = HerculesSession(env)
        session.run_script(f"""
            place Performance
            expand n0
            expand n2
            bind n5 {env.netlist.instance_id}
            bind n4 {env.models.instance_id}
            bind n3 {env.stimuli.instance_id}
            select-latest n1
            run
        """)
        perf = env.db.browse(S.PERFORMANCE)[-1]
        output = session.run_script(f"""
            new history-browse
            place-data {perf.instance_id}
            history n0
            use n0
        """)
        assert "revealed" in output
        assert "Simulator" in output

    def test_unknown_command_rejected(self, stocked_env):
        session = HerculesSession(stocked_env)
        with pytest.raises(UIError):
            session.execute("teleport n0")

    def test_bind_requires_arguments(self, stocked_env):
        session = HerculesSession(stocked_env)
        session.execute("place Stimuli")
        with pytest.raises(UIError):
            session.execute("bind n0")

    def test_browse_command(self, stocked_env):
        session = HerculesSession(stocked_env)
        session.execute("place Netlist")
        output = session.execute("browse n0 mux")
        assert "mux-gates" in output

    def test_load_flow_from_catalog(self, stocked_env):
        env = stocked_env
        flow, goal = env.goal_flow(S.PERFORMANCE, "sim-proto")
        flow.expand(goal)
        env.save_flow("sim-proto", flow, "simulate a circuit")
        session = HerculesSession(env)
        output = session.execute("load-flow sim-proto")
        assert "4 nodes" in output


class TestHerculesShell:
    def make_shell(self, env, tmp_path=None):
        import io

        from repro.ui import HerculesShell

        saves = []
        shell = HerculesShell(env, on_save=saves.append,
                              stdout=io.StringIO())
        return shell, saves

    def output(self, shell) -> str:
        return shell.stdout.getvalue()

    def test_session_commands_dispatch(self, stocked_env):
        shell, _ = self.make_shell(stocked_env)
        shell.onecmd("place Performance")
        shell.onecmd("expand n0")
        shell.onecmd("show")
        out = self.output(shell)
        assert "placed Performance[n0]" in out
        assert "task graph" in out

    def test_errors_are_reported_not_raised(self, stocked_env):
        shell, _ = self.make_shell(stocked_env)
        shell.onecmd("expand n99")
        assert "error:" in self.output(shell)
        shell.onecmd("bind")  # missing arguments
        assert "usage error:" in self.output(shell) or \
            "error:" in self.output(shell)

    def test_catalog_listings(self, stocked_env):
        shell, _ = self.make_shell(stocked_env)
        shell.onecmd("catalog tools")
        assert "Simulator" in self.output(shell)
        shell.onecmd("catalog flows")
        assert "(empty)" in self.output(shell)

    def test_quit_saves(self, stocked_env):
        shell, saves = self.make_shell(stocked_env)
        assert shell.onecmd("quit") is True
        assert saves == [stocked_env]
        assert shell.saved

    def test_save_without_backing(self, stocked_env):
        import io

        from repro.ui import HerculesShell

        shell = HerculesShell(stocked_env, stdout=io.StringIO())
        shell.onecmd("save")
        assert "nothing saved" in shell.stdout.getvalue()

    def test_help_lists_vocabulary(self, stocked_env):
        shell, _ = self.make_shell(stocked_env)
        shell.onecmd("help")
        out = self.output(shell)
        assert "session commands:" in out and "catalog" in out
