"""Resilient execution: retries, timeouts, quarantine, fault injection.

The history database is only a faithful derivation record if failed
invocations record nothing and recovered invocations record exactly
once.  These tests drive the resilience policy and the deterministic
fault harness through all three executors and check that the ledger,
events, and health checks see the same story.
"""

import json
import threading
import time

import pytest

from repro.cli import main
from repro.errors import (ExecutionError, HistoryError,
                          InvocationTimeoutError, ToolError,
                          ToolQuarantinedError, TransientToolError)
from repro.execution import (CORRUPT, CRASH, HANG, PERMANENT, QUARANTINED,
                             TRANSIENT, UPSTREAM, CircuitBreaker,
                             CorruptData, DesignEnvironment, FaultPlan,
                             FaultSpec, ResiliencePolicy,
                             call_with_timeout, encapsulation)
from repro.obs import (TOOL_QUARANTINED, TOOL_RETRIED, TOOL_TIMED_OUT,
                       RingBufferSink)
from repro.obs.health import (FAIL, OK, WARN, HealthThresholds,
                              check_error_rate, check_quarantine)
from repro.obs.ledger import RunRecord, ToolRunStats, timer_stats_of
from repro.persistence import save_environment
from repro.schema import standard as S
from repro.schema.standard import odyssey_schema
from repro.tools import install_standard_tools, standard_library
from repro.tools import stdcell_layout
from repro.tools.logic import LogicSpec


def no_sleep(delay: float) -> None:
    """Backoff sleeps recorded but never slept (deterministic tests)."""


def policy(**kwargs) -> ResiliencePolicy:
    kwargs.setdefault("sleep", no_sleep)
    return ResiliencePolicy(**kwargs)


@pytest.fixture
def env(schema, clock) -> DesignEnvironment:
    return DesignEnvironment(schema, user="chaos", clock=clock)


def make_extractor(env, name="netex"):
    """Deterministic extractor: output is a pure function of input."""

    def extract(ctx, inputs):
        layout = inputs["layout"]
        return {t: {"from": layout["l"], "made": t}
                for t in ctx.output_types}

    return env.install_tool(S.EXTRACTOR, encapsulation(name, extract),
                            name=name)


def single_branch(env, extractor_id):
    layout = env.install_data(S.EDITED_LAYOUT, {"l": 1})
    flow = env.new_flow("one")
    netlist = flow.place(S.EXTRACTED_NETLIST)
    flow.expand(netlist)
    flow.bind(flow.sole_node_of_type(S.LAYOUT), layout.instance_id)
    flow.bind(flow.sole_node_of_type(S.EXTRACTOR), extractor_id)
    return flow, netlist


def branches_flow(env, extractor_id, count=3):
    """The Fig. 6 shape: ``count`` disjoint extraction branches."""
    flow = env.new_flow("fig6")
    for index in range(count):
        layout = env.install_data(S.EDITED_LAYOUT, {"l": index})
        netlist = flow.place(S.EXTRACTED_NETLIST)
        flow.expand(netlist)
        unbound = [n for n in flow.nodes()
                   if n.entity_type == S.LAYOUT and not n.is_bound]
        flow.bind(unbound[0], layout.instance_id)
        tools = [n for n in flow.nodes()
                 if n.entity_type == S.EXTRACTOR and not n.is_bound]
        flow.bind(tools[0], extractor_id)
    return flow


def netlist_signature(env):
    """Order-independent content signature of every extracted netlist."""
    return sorted(
        json.dumps(env.db.data(inst), sort_keys=True, default=str)
        for inst in env.db.browse(S.EXTRACTED_NETLIST))


# ---------------------------------------------------------------------------
# the policy layer in isolation
# ---------------------------------------------------------------------------
class TestResiliencePolicy:
    def test_transient_failure_retried_to_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientToolError("flaky")
            return 42

        result, stats = policy(retries=3).run("T", flaky)
        assert result == 42
        assert (stats.attempts, stats.retries) == (3, 2)
        assert len(stats.delays) == 2

    def test_permanent_error_never_retried(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("bad data")

        with pytest.raises(ValueError) as err:
            policy(retries=5).run("T", broken)
        assert calls["n"] == 1
        assert err.value.repro_classification == PERMANENT
        assert err.value.repro_attempts == 1

    def test_retry_budget_exhausted(self):
        def always():
            raise TransientToolError("down")

        with pytest.raises(TransientToolError) as err:
            policy(retries=2).run("T", always)
        assert err.value.repro_attempts == 3
        assert err.value.repro_retries == 2
        assert err.value.repro_classification == TRANSIENT
        assert err.value.repro_tool_type == "T"

    def test_backoff_schedule_deterministic(self):
        one = policy(seed=11)
        two = policy(seed=11)
        schedule = [one.backoff_delay("T", a) for a in (1, 2, 3)]
        assert schedule == [two.backoff_delay("T", a) for a in (1, 2, 3)]
        assert schedule == sorted(schedule)  # exponential growth
        other = policy(seed=12)
        assert schedule != [other.backoff_delay("T", a)
                            for a in (1, 2, 3)]

    def test_backoff_capped_with_jitter(self):
        pol = policy(backoff_base=0.1, backoff_factor=10.0,
                     backoff_max=1.0, jitter=0.1)
        delay = pol.backoff_delay("T", 9)
        assert 1.0 <= delay <= 1.1

    def test_override_tunes_one_tool_type(self):
        pol = policy(retries=1).override("Sim", retries=4, timeout=2.0)
        assert pol.rule_for("Sim").retries == 4
        assert pol.rule_for("Sim").timeout == 2.0
        assert pol.rule_for("Other").retries == 1
        assert pol.rule_for("Other").timeout is None

    def test_breaker_opens_after_threshold(self):
        breaker = CircuitBreaker(threshold=2)
        assert breaker.record_failure("T") is False
        assert breaker.record_failure("T") is True  # newly opened
        assert breaker.is_open("T")
        assert breaker.open_types() == ("T",)
        breaker.reset("T")
        assert not breaker.is_open("T")

    def test_breaker_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure("T")
        breaker.record_success("T")
        assert breaker.record_failure("T") is False
        assert not breaker.is_open("T")

    def test_quarantine_fails_fast(self):
        pol = policy(quarantine_after=1)
        with pytest.raises(TransientToolError):
            pol.run("T", lambda: (_ for _ in ()).throw(
                TransientToolError("x")))
        calls = {"n": 0}

        def count():
            calls["n"] += 1
            return 1

        with pytest.raises(ToolQuarantinedError) as err:
            pol.run("T", count)
        assert calls["n"] == 0  # never invoked: the breaker was open
        assert err.value.repro_classification == QUARANTINED
        assert pol.quarantined() == ("T",)
        # other tool types are unaffected
        assert pol.run("U", count) == (1, pol.run("U", count)[1])

    def test_call_with_timeout_abandons_slow_calls(self):
        gate = threading.Event()

        def slow():
            gate.wait(timeout=5.0)
            return "late"

        started = time.monotonic()
        with pytest.raises(InvocationTimeoutError):
            call_with_timeout(slow, 0.05)
        assert time.monotonic() - started < 2.0
        gate.set()
        assert call_with_timeout(lambda: "fast", 0.5) == "fast"

    def test_call_with_timeout_propagates_errors(self):
        def broken():
            raise RuntimeError("inside")

        with pytest.raises(RuntimeError, match="inside"):
            call_with_timeout(broken, 0.5)
        assert call_with_timeout(lambda: 7, None) == 7

    def test_timeout_is_transient_and_retried(self):
        calls = {"n": 0}
        gate = threading.Event()

        def slow_then_fast():
            calls["n"] += 1
            if calls["n"] == 1:
                gate.wait(timeout=5.0)
            return "ok"

        result, stats = policy(retries=1, timeout=0.05).run(
            "T", slow_then_fast)
        gate.set()
        assert result == "ok"
        assert (stats.retries, stats.timeouts) == (1, 1)


# ---------------------------------------------------------------------------
# the fault harness in isolation
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_counts_per_tool_type_and_fires_once(self):
        plan = FaultPlan([FaultSpec("T", 2)], sleep=no_sleep)
        assert plan.apply("T", lambda: 1) == 1
        with pytest.raises(TransientToolError, match="invocation 2"):
            plan.apply("T", lambda: 1)
        assert plan.apply("T", lambda: 1) == 1
        assert plan.apply("U", lambda: 2) == 2  # separate counter
        assert plan.fired == (("T", 2, CRASH),)
        plan.reset()
        assert plan.fired == ()
        with pytest.raises(TransientToolError):
            plan.apply("T", lambda: 1)  # counter rewound
            plan.apply("T", lambda: 1)

    def test_permanent_crash_raises_tool_error(self):
        plan = FaultPlan([FaultSpec("T", 1, transient=False)],
                         sleep=no_sleep)
        with pytest.raises(ToolError) as err:
            plan.apply("T", lambda: 1)
        assert not isinstance(err.value, TransientToolError)

    def test_corrupt_runs_tool_then_mangles_output(self):
        ran = {"n": 0}

        def tool():
            ran["n"] += 1
            return {"good": True}

        plan = FaultPlan([FaultSpec("T", 1, kind=CORRUPT)],
                         sleep=no_sleep)
        assert isinstance(plan.apply("T", tool), CorruptData)
        assert ran["n"] == 1

    def test_hang_uses_injected_sleep(self):
        slept = []
        plan = FaultPlan([FaultSpec("T", 1, kind=HANG, delay=9.0)],
                         sleep=slept.append)
        assert plan.apply("T", lambda: "v") == "v"
        assert slept == [9.0]

    def test_duplicate_slot_rejected(self):
        with pytest.raises(ExecutionError, match="duplicate"):
            FaultPlan([FaultSpec("T", 1), FaultSpec("T", 1)])

    def test_json_roundtrip(self, tmp_path):
        plan = FaultPlan(
            [FaultSpec("T", 1), FaultSpec("U", 2, kind=HANG, delay=0.5),
             FaultSpec("T", 3, transient=False, message="boom")],
            seed=99)
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = FaultPlan.load(path, sleep=no_sleep)
        assert loaded.seed == 99
        assert [f.to_dict() for f in loaded.faults] == \
            [f.to_dict() for f in plan.faults]

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(ExecutionError, match="cannot load"):
            FaultPlan.load(path)
        with pytest.raises(ExecutionError, match="unknown fault kind"):
            FaultSpec("T", 1, kind="meteor")
        with pytest.raises(ExecutionError, match="1-based"):
            FaultSpec("T", 0)

    def test_seeded_plans_reproducible(self):
        one = FaultPlan.seeded(5, ["T", "U"], faults=3, sleep=no_sleep)
        two = FaultPlan.seeded(5, ["T", "U"], faults=3, sleep=no_sleep)
        assert repr(one) == repr(two)
        assert len(one) == 3
        other = FaultPlan.seeded(6, ["T", "U"], faults=3,
                                 sleep=no_sleep)
        assert repr(one) != repr(other)


# ---------------------------------------------------------------------------
# executors under injected faults
# ---------------------------------------------------------------------------
class TestResilientExecution:
    def test_transient_crash_retried_end_to_end(self, env):
        tool = make_extractor(env)
        flow, netlist = single_branch(env, tool.instance_id)
        plan = FaultPlan([FaultSpec(S.EXTRACTOR, 1)], sleep=no_sleep)
        ring = RingBufferSink()
        env.bus.subscribe(ring)
        executor = env.executor(resilience=policy(retries=2),
                                faults=plan)
        report = executor.execute(flow)
        assert netlist.produced
        assert report.retries == 1
        assert report.timeouts == 0
        assert not report.failures
        assert len(env.db.browse(S.EXTRACTED_NETLIST)) == 1
        result = [r for r in report.results
                  if r.tool_type == S.EXTRACTOR][0]
        assert result.retries == 1
        retried = [e for e in ring.events()
                   if e.event_type == TOOL_RETRIED]
        assert len(retried) == 1
        assert retried[0].tool_type == S.EXTRACTOR
        assert retried[0].value("classification") == TRANSIENT
        assert retried[0].value("delay") > 0

    def test_retry_and_cache_record_exactly_once(self, env):
        """The retry × cache satellite: a transient failure followed by
        a successful retry leaves exactly one history record and one
        cache entry — no duplicates from the failed attempt."""
        tool = make_extractor(env)
        flow, netlist = single_branch(env, tool.instance_id)
        env.resilience = policy(retries=2)
        env.faults = FaultPlan([FaultSpec(S.EXTRACTOR, 1)],
                               sleep=no_sleep)
        report = env.run(flow, cache="readwrite")
        assert report.retries == 1
        assert len(env.db.browse(S.EXTRACTED_NETLIST)) == 1
        assert len(env.cache) == 1
        # a repaired re-run coalesces through the cache: nothing re-runs
        env.faults = None
        for node in flow.nodes():
            node.produced = ()
        again = env.run(flow, cache="reuse")
        assert again.runs == 0
        assert again.cache_hits == 1
        assert len(env.db.browse(S.EXTRACTED_NETLIST)) == 1

    def test_hang_fault_trips_watchdog_then_recovers(self, env):
        tool = make_extractor(env)
        flow, netlist = single_branch(env, tool.instance_id)
        plan = FaultPlan([FaultSpec(S.EXTRACTOR, 1, kind=HANG,
                                    delay=0.4)])
        ring = RingBufferSink()
        env.bus.subscribe(ring)
        executor = env.executor(
            resilience=policy(retries=1, timeout=0.05), faults=plan)
        report = executor.execute(flow)
        assert netlist.produced
        assert report.timeouts == 1
        assert report.retries == 1
        timed_out = [e for e in ring.events()
                     if e.event_type == TOOL_TIMED_OUT]
        assert len(timed_out) == 1
        assert timed_out[0].value("budget") == 0.05

    def test_permanent_fault_aborts_without_retry(self, env):
        tool = make_extractor(env)
        flow, netlist = single_branch(env, tool.instance_id)
        plan = FaultPlan([FaultSpec(S.EXTRACTOR, 1, transient=False)],
                         sleep=no_sleep)
        before = len(env.db)
        with pytest.raises(ToolError) as err:
            env.executor(resilience=policy(retries=3),
                         faults=plan).execute(flow)
        assert err.value.repro_attempts == 1
        assert err.value.repro_classification == PERMANENT
        assert len(env.db) == before
        assert netlist.produced == ()

    def test_corrupt_fault_rejected_atomically(self, env):
        tool = make_extractor(env)
        flow, netlist = single_branch(env, tool.instance_id)
        plan = FaultPlan([FaultSpec(S.EXTRACTOR, 1, kind=CORRUPT)],
                         sleep=no_sleep)
        before = len(env.db)
        # whichever framework contract check fires first (tool-result
        # shape or codec lookup), nothing may reach the history
        with pytest.raises((ExecutionError, HistoryError)):
            env.executor(resilience=policy(retries=2),
                         faults=plan).execute(flow)
        assert len(env.db) == before
        assert netlist.produced == ()

    def test_faults_without_policy_propagate_unchanged(self, env):
        tool = make_extractor(env)
        flow, netlist = single_branch(env, tool.instance_id)
        plan = FaultPlan([FaultSpec(S.EXTRACTOR, 1)], sleep=no_sleep)
        before = len(env.db)
        with pytest.raises(TransientToolError):
            env.executor(faults=plan).execute(flow)
        assert len(env.db) == before

    def test_degrade_records_partial_report(self, env, tmp_path):
        """Quarantine + degradation: the run finishes, losses recorded,
        the ledger and the health checks see the quarantined tool."""

        def always_down(ctx, inputs):
            raise TransientToolError("license server down")

        tool = env.install_tool(S.EXTRACTOR,
                                encapsulation("down", always_down))
        flow = branches_flow(env, tool.instance_id)
        ledger = env.attach_ledger(tmp_path / "ledger.jsonl")
        ring = RingBufferSink()
        env.bus.subscribe(ring)
        pol = policy(retries=0, quarantine_after=2, degrade=True)
        report = env.executor(resilience=pol).execute(flow)
        assert len(report.failures) == 3
        kinds = sorted(f.classification for f in report.failures)
        assert kinds == [QUARANTINED, TRANSIENT, TRANSIENT]
        assert report.quarantined == [S.EXTRACTOR]
        assert len(env.db.browse(S.EXTRACTED_NETLIST)) == 0
        assert any(e.event_type == TOOL_QUARANTINED
                   for e in ring.events())
        record = ledger.records()[-1]
        assert record.errors == 3
        assert record.failures == 3
        assert record.error_class == "TransientToolError"
        assert record.error_tool == S.EXTRACTOR
        assert record.quarantined == (S.EXTRACTOR,)
        check = check_quarantine(record, [], HealthThresholds())
        assert check.verdict == FAIL
        assert S.EXTRACTOR in check.detail

    def test_degrade_skips_downstream_of_failed_invocation(self, env):
        sim_calls = {"n": 0}

        def extract_broken(ctx, inputs):
            raise RuntimeError("segfault")

        def simulate(ctx, inputs):
            sim_calls["n"] += 1
            return {t: {"ok": True} for t in ctx.output_types}

        env.install_tool(S.EXTRACTOR,
                         encapsulation("x", extract_broken), name="x")
        env.install_tool(S.SIMULATOR, encapsulation("s", simulate),
                         name="s")
        layout = env.install_data(S.EDITED_LAYOUT, {"l": 1})
        models = env.install_data(S.DEVICE_MODELS, {"m": 1})
        stim = env.install_data(S.STIMULI, [[0]])
        flow, goal = env.goal_flow(S.PERFORMANCE)
        flow.expand(goal)
        circuit = flow.sole_node_of_type(S.CIRCUIT)
        flow.expand(circuit)
        netlist = flow.sole_node_of_type(S.NETLIST)
        flow.specialize(netlist, S.EXTRACTED_NETLIST)
        flow.expand(netlist)
        flow.bind(flow.sole_node_of_type(S.LAYOUT), layout.instance_id)
        flow.bind(flow.sole_node_of_type(S.DEVICE_MODELS),
                  models.instance_id)
        flow.bind(flow.sole_node_of_type(S.STIMULI), stim.instance_id)
        flow.bind(flow.sole_node_of_type(S.EXTRACTOR),
                  env.db.latest(S.EXTRACTOR).instance_id)
        flow.bind(flow.sole_node_of_type(S.SIMULATOR),
                  env.db.latest(S.SIMULATOR).instance_id)
        report = env.executor(resilience=policy(degrade=True)) \
            .execute(flow)
        classes = {f.classification for f in report.failures}
        assert PERMANENT in classes
        assert UPSTREAM in classes
        assert sim_calls["n"] == 0  # never invoked on missing inputs
        assert len(env.db.browse(S.PERFORMANCE)) == 0
        upstream = [f for f in report.failures
                    if f.classification == UPSTREAM]
        assert all(f.attempts == 0 for f in upstream)


# ---------------------------------------------------------------------------
# the three executors under one identical fault plan
# ---------------------------------------------------------------------------
class TestExecutorEquivalence:
    KINDS = ("sequential", "parallel", "scheduled")

    @staticmethod
    def run_kind(kind):
        env = DesignEnvironment(odyssey_schema(), user="chaos")
        tool = make_extractor(env)
        flow = branches_flow(env, tool.instance_id)
        plan = FaultPlan([FaultSpec(S.EXTRACTOR, 1),
                          FaultSpec(S.EXTRACTOR, 2)], seed=7,
                         sleep=no_sleep)
        pol = policy(retries=3, seed=7)
        ring = RingBufferSink()
        env.bus.subscribe(ring)
        if kind == "parallel":
            executor = env.parallel_executor(machines=3,
                                             resilience=pol,
                                             faults=plan)
        elif kind == "scheduled":
            executor = env.scheduled_executor(machines=3,
                                              resilience=pol,
                                              faults=plan)
        else:
            executor = env.executor(resilience=pol, faults=plan)
        report = executor.execute(flow)
        classifications = sorted(
            (e.tool_type, e.value("classification"))
            for e in ring.events() if e.event_type == TOOL_RETRIED)
        return {"signature": netlist_signature(env),
                "retries": report.retries,
                "failures": len(report.failures),
                "fired": sorted(plan.fired),
                "classifications": classifications}

    def test_identical_fault_plan_identical_outcome(self):
        """Same seeded plan, three executors, two runs each: same final
        instances, same retry counts, same error classification."""
        outcomes = {kind: [self.run_kind(kind), self.run_kind(kind)]
                    for kind in self.KINDS}
        baseline = outcomes["sequential"][0]
        assert baseline["retries"] == 2
        assert baseline["failures"] == 0
        assert len(baseline["signature"]) == 3
        for kind in self.KINDS:
            first, second = outcomes[kind]
            assert first == second, f"{kind} not deterministic"
            assert first["signature"] == baseline["signature"], kind
            assert first["retries"] == baseline["retries"], kind
            assert first["classifications"] == \
                baseline["classifications"], kind


# ---------------------------------------------------------------------------
# health checks over resilience telemetry
# ---------------------------------------------------------------------------
def ledger_record(error_tool="", errors=0, tools=(), quarantined=()):
    return RunRecord(
        run_id="r", timestamp=0.0, flow="f", executor="sequential",
        cache_policy="off", errors=errors,
        error="boom" if errors else "",
        error_class="ToolError" if errors else "",
        error_tool=error_tool, failures=errors,
        quarantined=tuple(quarantined),
        tools={t: ToolRunStats(invocations=1, runs=1,
                               duration=timer_stats_of([0.1]))
               for t in tools})


class TestHealthChecks:
    def test_error_rate_grouped_by_failing_tool(self):
        baseline = [ledger_record(tools=(S.EXTRACTOR,))
                    for _ in range(3)]
        current = ledger_record(error_tool=S.EXTRACTOR, errors=1,
                                tools=(S.EXTRACTOR,))
        check = check_error_rate(current, baseline, HealthThresholds())
        assert check.verdict == FAIL
        assert S.EXTRACTOR in check.detail

    def test_error_rate_warns_when_tool_already_unstable(self):
        baseline = [ledger_record(tools=(S.EXTRACTOR,)),
                    ledger_record(error_tool=S.EXTRACTOR, errors=1,
                                  tools=(S.EXTRACTOR,)),
                    ledger_record(error_tool=S.EXTRACTOR, errors=1,
                                  tools=(S.EXTRACTOR,))]
        current = ledger_record(error_tool=S.EXTRACTOR, errors=1)
        check = check_error_rate(current, baseline, HealthThresholds())
        assert check.verdict == WARN

    def test_quarantine_check_gates_only_when_open(self):
        thresholds = HealthThresholds()
        clean = ledger_record()
        assert check_quarantine(clean, [], thresholds).verdict == OK
        bad = ledger_record(quarantined=(S.SIMULATOR,))
        assert check_quarantine(bad, [], thresholds).verdict == FAIL

    def test_ledger_roundtrip_keeps_resilience_fields(self):
        record = ledger_record(error_tool=S.EXTRACTOR, errors=2,
                               quarantined=(S.EXTRACTOR,))
        back = RunRecord.from_dict(json.loads(
            json.dumps(record.to_dict())))
        assert back.error_tool == S.EXTRACTOR
        assert back.error_class == "ToolError"
        assert back.failures == 2
        assert back.quarantined == (S.EXTRACTOR,)
        assert "error=ToolError@Extractor" in record.render()


# ---------------------------------------------------------------------------
# the CLI surface
# ---------------------------------------------------------------------------
class TestRunCli:
    @staticmethod
    def saved_project(tmp_path, name):
        env = DesignEnvironment(odyssey_schema(), user="cli")
        tools = install_standard_tools(env)
        library = standard_library()
        spec = LogicSpec.from_equations("f0", "y = a & b")
        layout = env.install_data(
            S.STD_CELL_LAYOUT, stdcell_layout(spec, library,
                                              {"seed": 0}),
            name="variant-0")
        flow = env.new_flow("extract")
        netlist = flow.place(S.EXTRACTED_NETLIST)
        flow.expand(netlist)
        flow.bind(flow.sole_node_of_type(S.LAYOUT), layout.instance_id)
        flow.bind(flow.sole_node_of_type(S.EXTRACTOR),
                  tools[S.EXTRACTOR].instance_id)
        env.save_flow("extract", flow)
        directory = tmp_path / name
        save_environment(env, directory)
        return directory

    def test_run_with_retries_recovers_from_fault_plan(self, tmp_path,
                                                       capsys):
        directory = self.saved_project(tmp_path, "proj")
        plan_path = tmp_path / "plan.json"
        FaultPlan([FaultSpec(S.EXTRACTOR, 1)], seed=5).save(plan_path)
        code = main(["run", str(directory), "extract",
                     "--retries", "2", "--fault-plan", str(plan_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "resilience: 1 retries" in out

    def test_run_without_retries_fails_on_fault_plan(self, tmp_path,
                                                     capsys):
        directory = self.saved_project(tmp_path, "proj2")
        plan_path = tmp_path / "plan.json"
        FaultPlan([FaultSpec(S.EXTRACTOR, 1)], seed=5).save(plan_path)
        code = main(["run", str(directory), "extract",
                     "--fault-plan", str(plan_path)])
        err = capsys.readouterr().err
        assert code == 1
        assert "failed" in err

    def test_degraded_run_exits_nonzero(self, tmp_path, capsys):
        directory = self.saved_project(tmp_path, "proj3")
        plan_path = tmp_path / "plan.json"
        FaultPlan([FaultSpec(S.EXTRACTOR, 1, transient=False)],
                  seed=5).save(plan_path)
        code = main(["run", str(directory), "extract", "--degrade",
                     "--fault-plan", str(plan_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED" in out

    def test_scheduled_executor_rejects_targets(self, tmp_path,
                                                capsys):
        directory = self.saved_project(tmp_path, "proj4")
        code = main(["run", str(directory), "extract",
                     "--executor", "scheduled", "--target", "n0"])
        assert code == 2
