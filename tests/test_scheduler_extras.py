"""Extra coverage for scheduler reporting paths and duration learning."""

from repro.execution import (DesignEnvironment, DurationModel,
                             ScheduledFlowExecutor, encapsulation,
                             plan_schedule)
from repro.schema import standard as S


def noop_env(schema, clock):
    env = DesignEnvironment(schema, clock=clock)
    env.install_tool(S.EXTRACTOR,
                     encapsulation("x", lambda ctx, ins: {
                         t: {"ok": True} for t in ctx.output_types}),
                     name="x")
    return env


def extraction_flow(env):
    layout = env.install_data(S.EDITED_LAYOUT, {"l": 1})
    flow = env.new_flow("f")
    netlist = flow.place(S.EXTRACTED_NETLIST)
    flow.expand(netlist)
    flow.bind(flow.sole_node_of_type(S.LAYOUT), layout.instance_id)
    flow.bind(flow.sole_node_of_type(S.EXTRACTOR),
              env.db.latest(S.EXTRACTOR).instance_id)
    return flow


class TestDurationLearningFromReports:
    def test_observe_report(self, schema, clock):
        env = noop_env(schema, clock)
        flow = extraction_flow(env)
        report = env.run(flow)
        model = DurationModel(default=99.0)
        model.observe_report(report)
        assert model.estimate(S.EXTRACTOR) < 1.0  # learned, not default
        assert S.EXTRACTOR in model.observed_types()

    def test_learned_durations_shape_the_schedule(self, schema, clock):
        env = noop_env(schema, clock)
        flow = extraction_flow(env)
        model = DurationModel(default=1.0)
        model.record(S.EXTRACTOR, 5.0)
        schedule = plan_schedule(flow, 2, model)
        extract_entries = [e for e in schedule.entries
                           if e.tool_type == S.EXTRACTOR]
        assert extract_entries[0].end - extract_entries[0].start == 5.0


class TestScheduleRendering:
    def test_render_lists_every_entry(self, schema, clock):
        env = noop_env(schema, clock)
        flow = extraction_flow(env)
        schedule = plan_schedule(flow, 2, DurationModel(default=1.0))
        text = schedule.render()
        assert "makespan" in text
        assert S.EXTRACTOR in text
        assert "machine0" in text

    def test_empty_flow_schedule(self, schema, clock):
        env = noop_env(schema, clock)
        flow = env.new_flow("empty")
        schedule = plan_schedule(flow, 3)
        assert schedule.makespan == 0.0
        assert schedule.entries == ()
        assert schedule.predicted_speedup == 1.0

    def test_composed_entries_render_as_compose(self, stocked_env):
        env = stocked_env
        from tests.conftest import build_performance_flow

        flow, goal = build_performance_flow(
            env,
            netlist_id=env.netlist.instance_id,
            models_id=env.models.instance_id,
            stimuli_id=env.stimuli.instance_id,
            simulator_id=env.tools[S.SIMULATOR].instance_id)
        schedule = plan_schedule(flow, 1)
        assert "<compose>" in schedule.render()
        # serial schedule on one machine: makespan == serial time
        assert schedule.makespan == schedule.serial_time


class TestScheduledExecutorForce:
    def test_force_reruns(self, schema, clock):
        env = noop_env(schema, clock)
        flow = extraction_flow(env)
        executor = ScheduledFlowExecutor(env.db, env.registry,
                                         machines=2)
        first = executor.execute(flow)
        assert len(first.results) == 1
        second = executor.execute(flow, force=True)
        assert len(second.results) == 1
        assert len(env.db.browse(S.EXTRACTED_NETLIST)) == 2
