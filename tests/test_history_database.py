"""Tests for instances, the datastore and the history database."""

import pytest

from repro.errors import HistoryError, UnknownInstanceError
from repro.history.database import BrowseFilter, HistoryDatabase
from repro.history.datastore import CodecRegistry, DataStore
from repro.history.instance import DerivationRecord, EntityInstance
from repro.schema import standard as S


@pytest.fixture
def db(schema, clock) -> HistoryDatabase:
    return HistoryDatabase(schema, clock=clock)


class TestDerivationRecord:
    def test_inputs_sorted(self):
        record = DerivationRecord.make("T#1", {"b": "B#1", "a": "A#1"})
        assert record.inputs == (("a", "A#1"), ("b", "B#1"))

    def test_antecedents_tool_first(self):
        record = DerivationRecord.make("T#1", {"x": "X#1"})
        assert record.all_antecedents() == ("T#1", "X#1")

    def test_composed_record(self):
        record = DerivationRecord.make(None, {"x": "X#1"})
        assert record.tool is None
        assert record.all_antecedents() == ("X#1",)

    def test_dict_roundtrip(self):
        record = DerivationRecord.make("T#1", {"x": "X#1"}, "run#1")
        assert DerivationRecord.from_dict(record.to_dict()) == record


class TestEntityInstance:
    def test_annotation_merge(self):
        instance = EntityInstance("N#1", S.NETLIST)
        annotated = instance.annotated(flow="f1", machine="m0")
        assert annotated.annotation_map() == {"flow": "f1",
                                              "machine": "m0"}
        # original untouched (frozen semantics)
        assert instance.annotations == ()

    def test_rename(self):
        instance = EntityInstance("N#1", S.NETLIST, name="old")
        renamed = instance.renamed("new", "why")
        assert renamed.name == "new" and renamed.comment == "why"

    def test_dict_roundtrip(self):
        instance = EntityInstance(
            "N#1", S.NETLIST, user="u", timestamp=5.0, name="n",
            comment="c", data_ref="abc",
            derivation=DerivationRecord.make("T#1", {"x": "X#1"}),
            annotations=(("k", "v"),))
        assert EntityInstance.from_dict(instance.to_dict()) == instance


class TestDataStore:
    def test_content_addressing_shares_blobs(self):
        store = DataStore(CodecRegistry())
        ref1 = store.put({"a": 1})
        ref2 = store.put({"a": 1})
        assert ref1 == ref2
        assert len(store) == 1

    def test_different_content_different_refs(self):
        store = DataStore(CodecRegistry())
        assert store.put({"a": 1}) != store.put({"a": 2})

    def test_get_unknown_rejected(self):
        store = DataStore(CodecRegistry())
        with pytest.raises(HistoryError):
            store.get("nope")

    def test_unregistered_class_rejected(self):
        store = DataStore(CodecRegistry())

        class Thing:
            pass

        with pytest.raises(HistoryError):
            store.put(Thing())

    def test_codec_roundtrip_nested(self):
        registry = CodecRegistry()
        payload = {"list": [1, 2.5, "x", None, True],
                   "tuple": (1, (2, 3)), "nested": {"k": [{"z": 0}]}}
        decoded = registry.decode(registry.encode(payload))
        assert decoded == payload
        assert isinstance(decoded["tuple"], tuple)

    def test_tool_codecs_registered_globally(self):
        from repro.tools import Netlist

        store = DataStore()
        netlist = Netlist("x", inputs=("a",), outputs=("y",))
        ref = store.put(netlist)
        assert store.get(ref) == netlist

    def test_duplicate_codec_rejected(self):
        registry = CodecRegistry()

        class Thing:
            pass

        registry.register("t", Thing, lambda o: {}, lambda p: Thing())
        with pytest.raises(HistoryError):
            registry.register("t", Thing, lambda o: {},
                              lambda p: Thing())


class TestHistoryDatabase:
    def test_install_assigns_sequential_ids(self, db):
        first = db.install(S.STIMULI, [1], name="s1")
        second = db.install(S.STIMULI, [2], name="s2")
        assert first.instance_id == "Stimuli#0001"
        assert second.instance_id == "Stimuli#0002"

    def test_timestamps_from_clock(self, db):
        first = db.install(S.STIMULI, [1])
        second = db.install(S.STIMULI, [2])
        assert second.timestamp > first.timestamp

    def test_unknown_type_rejected(self, db):
        with pytest.raises(Exception):
            db.install("Ghost", {})

    def test_record_requires_known_antecedents(self, db):
        with pytest.raises(UnknownInstanceError):
            db.record(S.EXTRACTED_NETLIST, {},
                      DerivationRecord.make("Extractor#9999"))

    def test_record_validates_tool_type(self, db):
        wrong_tool = db.install(S.PLOTTER, {}, name="p")
        layout = db.install(S.EDITED_LAYOUT, {}, name="l")
        with pytest.raises(HistoryError, match="schema requires"):
            db.record(S.EXTRACTED_NETLIST, {},
                      DerivationRecord.make(
                          wrong_tool.instance_id,
                          {"layout": layout.instance_id}))

    def test_record_validates_roles(self, db):
        extractor = db.install(S.EXTRACTOR, {})
        layout = db.install(S.EDITED_LAYOUT, {})
        with pytest.raises(HistoryError, match="unknown input role"):
            db.record(S.EXTRACTED_NETLIST, {},
                      DerivationRecord.make(
                          extractor.instance_id,
                          {"bogus": layout.instance_id}))

    def test_record_validates_input_types(self, db):
        extractor = db.install(S.EXTRACTOR, {})
        stim = db.install(S.STIMULI, [])
        with pytest.raises(HistoryError, match="expects"):
            db.record(S.EXTRACTED_NETLIST, {},
                      DerivationRecord.make(
                          extractor.instance_id,
                          {"layout": stim.instance_id}))

    def test_record_source_entity_rejected(self, db):
        with pytest.raises(HistoryError):
            db.record(S.STIMULI, [], DerivationRecord.make(None))

    def test_composed_record_must_not_name_tool(self, db):
        models = db.install(S.DEVICE_MODELS, {})
        netlist = db.install(S.EDITED_NETLIST, {})
        plotter = db.install(S.PLOTTER, {})
        with pytest.raises(HistoryError, match="composed"):
            db.record(S.CIRCUIT, {},
                      DerivationRecord.make(
                          plotter.instance_id,
                          {"models": models.instance_id,
                           "netlist": netlist.instance_id}))

    def test_forward_index(self, db):
        extractor = db.install(S.EXTRACTOR, {})
        layout = db.install(S.EDITED_LAYOUT, {})
        derived = db.record(
            S.EXTRACTED_NETLIST, {},
            DerivationRecord.make(extractor.instance_id,
                                  {"layout": layout.instance_id}))
        assert db.consumers_of(layout.instance_id) == (
            derived.instance_id,)
        assert db.consumers_of(extractor.instance_id) == (
            derived.instance_id,)

    def test_browse_includes_subtypes(self, db):
        db.install(S.EDITED_NETLIST, {}, name="e")
        db.install(S.EXTRACTED_NETLIST, {}, name="x")
        assert len(db.browse(S.NETLIST)) == 2
        assert len(db.browse(S.NETLIST, include_subtypes=False)) == 0

    def test_browse_filters(self, db):
        early = db.install(S.STIMULI, [1], name="alpha vectors")
        db.install(S.STIMULI, [2], name="beta vectors")
        by_keyword = db.browse(
            S.STIMULI, filters=BrowseFilter(keywords=["alpha"]))
        assert [i.instance_id for i in by_keyword] == [early.instance_id]
        by_date = db.browse(
            S.STIMULI, filters=BrowseFilter(since=early.timestamp + 0.5))
        assert early.instance_id not in [i.instance_id for i in by_date]

    def test_browse_user_filter(self, schema, clock):
        db = HistoryDatabase(schema, clock=clock)
        db.install(S.STIMULI, [1], user="alice")
        db.install(S.STIMULI, [2], user="bob")
        rows = db.browse(S.STIMULI, filters=BrowseFilter(user="alice"))
        assert len(rows) == 1 and rows[0].user == "alice"

    def test_latest(self, db):
        db.install(S.STIMULI, [1], name="old")
        newest = db.install(S.STIMULI, [2], name="new")
        assert db.latest(S.STIMULI).instance_id == newest.instance_id
        with pytest.raises(HistoryError):
            db.latest(S.PERFORMANCE)

    def test_update_metadata(self, db):
        instance = db.install(S.STIMULI, [1], name="old")
        db.update_metadata(instance.instance_id, name="renamed",
                           comment="note", annotations={"k": "v"})
        fresh = db.get(instance.instance_id)
        assert fresh.name == "renamed"
        assert fresh.comment == "note"
        assert fresh.annotation_map()["k"] == "v"

    def test_data_retrieval_shared(self, db):
        a = db.install(S.STIMULI, [1, 2, 3])
        b = db.install(S.STIMULI, [1, 2, 3])
        assert a.data_ref == b.data_ref  # footnote 5: shared physical data
        assert db.data(a) == [1, 2, 3]

    def test_persistence_roundtrip(self, db, schema, tmp_path):
        extractor = db.install(S.EXTRACTOR, {"tool": "x"})
        layout = db.install(S.EDITED_LAYOUT, {"cells": []}, name="l1")
        derived = db.record(
            S.EXTRACTED_NETLIST, {"n": 1},
            DerivationRecord.make(extractor.instance_id,
                                  {"layout": layout.instance_id}),
            user="tester")
        path = str(tmp_path / "history.json")
        db.save(path)
        restored = HistoryDatabase.load(schema, path)
        assert len(restored) == 3
        copy = restored.get(derived.instance_id)
        assert copy.derivation == derived.derivation
        assert restored.data(copy) == {"n": 1}
        # id counters continue past loaded ids
        fresh = restored.install(S.EDITED_LAYOUT, {})
        assert fresh.instance_id == "EditedLayout#0002"
