"""Tests for encapsulations and the sequential flow executor."""

import pytest

from repro.errors import (EncapsulationError, ExecutionError)
from repro.execution import (DesignEnvironment, EncapsulationRegistry,
                             encapsulation)
from repro.schema import standard as S


@pytest.fixture
def bare_env(schema, clock) -> DesignEnvironment:
    """Environment with trivial counting encapsulations (no real CAD)."""
    env = DesignEnvironment(schema, user="tester", clock=clock)
    env.calls = []  # type: ignore[attr-defined]

    def make(tool_name, result=None):
        def fn(ctx, inputs):
            env.calls.append((tool_name, ctx.tool_type,
                              sorted(inputs), dict(ctx.options)))
            if result is not None:
                return result(ctx, inputs)
            return {"made-by": tool_name, "inputs": sorted(inputs)}
        return fn

    env.install_tool(S.EXTRACTOR, encapsulation(
        "x", make("extractor", lambda ctx, ins: {
            t: {"out": t} for t in ctx.output_types})), name="x")
    env.install_tool(S.SIMULATOR, encapsulation("s", make("simulator")),
                     name="s")
    env.install_tool(S.PLOTTER, encapsulation("p", make("plotter")),
                     name="p")
    return env


class TestEncapsulationRegistry:
    def test_resolution_walks_supertypes(self, schema):
        registry = EncapsulationRegistry(schema)
        shared = encapsulation("opt", lambda ctx, ins: None)
        registry.register(S.OPTIMIZER, shared)
        assert registry.resolve(S.ANNEALING_OPTIMIZER) is shared
        assert registry.has_encapsulation(S.RANDOM_OPTIMIZER)

    def test_instance_override_wins(self, schema):
        registry = EncapsulationRegistry(schema)
        generic = encapsulation("g", lambda ctx, ins: None)
        special = encapsulation("sp", lambda ctx, ins: None)
        registry.register(S.SIMULATOR, generic)
        registry.register_for_instance("Simulator#0002", special)
        assert registry.resolve(S.SIMULATOR, "Simulator#0001") is generic
        assert registry.resolve(S.SIMULATOR, "Simulator#0002") is special

    def test_unregistered_rejected(self, schema):
        registry = EncapsulationRegistry(schema)
        with pytest.raises(EncapsulationError):
            registry.resolve(S.VERIFIER)

    def test_non_tool_registration_rejected(self, schema):
        registry = EncapsulationRegistry(schema)
        with pytest.raises(EncapsulationError):
            registry.register(S.NETLIST,
                              encapsulation("n", lambda c, i: None))

    def test_with_args_variants(self):
        base = encapsulation("base", lambda ctx, ins: ctx.options,
                             mode="fast")
        slow = base.with_args("slow", mode="slow", extra=1)
        assert base.options() == {"mode": "fast"}
        assert slow.options() == {"mode": "slow", "extra": 1}
        assert slow.name == "slow"

    def test_composition_registration(self, schema):
        registry = EncapsulationRegistry(schema)
        registry.register_composition(S.CIRCUIT, lambda ins: ins)
        assert registry.composition(S.CIRCUIT)({"a": 1}) == {"a": 1}
        with pytest.raises(EncapsulationError):
            registry.register_composition(S.NETLIST, lambda ins: ins)

    def test_default_composition_used_when_unregistered(self, schema):
        registry = EncapsulationRegistry(schema)
        compose = registry.composition(S.CIRCUIT)
        assert compose({"models": 1, "netlist": 2}) == {"models": 1,
                                                        "netlist": 2}

    def test_decomposition(self, schema):
        registry = EncapsulationRegistry(schema)
        decompose = registry.decomposition(S.CIRCUIT)
        assert decompose({"a": 1}) == {"a": 1}
        with pytest.raises(EncapsulationError):
            decompose(42)


class TestExecutor:
    def simulate_flow(self, env):
        models = env.install_data(S.DEVICE_MODELS, {"m": 1})
        netlist = env.install_data(S.EDITED_NETLIST, {"n": 1})
        stim = env.install_data(S.STIMULI, [[0]])
        flow, goal = env.goal_flow(S.PERFORMANCE)
        flow.expand(goal)
        circuit = flow.sole_node_of_type(S.CIRCUIT)
        flow.expand(circuit)
        flow.bind(flow.sole_node_of_type(S.NETLIST), netlist.instance_id)
        flow.bind(flow.sole_node_of_type(S.DEVICE_MODELS),
                  models.instance_id)
        flow.bind(flow.sole_node_of_type(S.STIMULI), stim.instance_id)
        flow.bind(flow.sole_node_of_type(S.SIMULATOR),
                  env.db.latest(S.SIMULATOR).instance_id)
        return flow, goal

    def test_executes_in_dependency_order(self, bare_env):
        flow, goal = self.simulate_flow(bare_env)
        report = bare_env.run(flow)
        assert [r.tool_type for r in report.results] == [None,
                                                         S.SIMULATOR]
        assert goal.produced

    def test_derivation_recorded(self, bare_env):
        flow, goal = self.simulate_flow(bare_env)
        bare_env.run(flow)
        perf = bare_env.db.get(goal.produced[0])
        assert perf.derivation is not None
        roles = dict(perf.derivation.inputs)
        assert set(roles) == {"circuit", "stimuli"}
        assert perf.derivation.tool.startswith("Simulator#")
        assert perf.user == "tester"
        assert perf.annotation_map()["flow"] == flow.name

    def test_unready_flow_rejected(self, bare_env):
        flow, goal = bare_env.goal_flow(S.PERFORMANCE)
        flow.expand(goal)
        with pytest.raises(ExecutionError, match="not ready"):
            bare_env.run(flow)

    def test_partial_execution_of_subflow(self, bare_env):
        flow, goal = self.simulate_flow(bare_env)
        circuit = flow.sole_node_of_type(S.CIRCUIT)
        report = bare_env.run(flow, targets=[circuit.node_id])
        assert circuit.produced
        assert not goal.produced
        assert len(report.results) == 1

    def test_cached_results_reused(self, bare_env):
        flow, goal = self.simulate_flow(bare_env)
        bare_env.run(flow)
        calls_before = len(bare_env.calls)
        report = bare_env.run(flow)
        assert len(bare_env.calls) == calls_before  # nothing re-ran
        assert report.results == []
        assert goal.node_id in report.skipped

    def test_force_re_executes(self, bare_env):
        flow, goal = self.simulate_flow(bare_env)
        bare_env.run(flow)
        report = bare_env.run(flow, force=True)
        assert report.runs >= 2
        # fresh results replace the node's previous ones...
        assert goal.produced == ("Performance#0002",)
        # ...but the first run's instance stays in the history
        assert len(bare_env.db.browse(S.PERFORMANCE)) == 2

    def test_multi_output_single_run(self, bare_env):
        layout = bare_env.install_data(S.EDITED_LAYOUT, {"l": 1})
        flow = bare_env.new_flow("extract")
        netlist = flow.place(S.EXTRACTED_NETLIST)
        flow.expand(netlist)
        stats = flow.graph.add_node(S.EXTRACTION_STATISTICS)
        flow.connect(stats, flow.sole_node_of_type(S.EXTRACTOR))
        flow.connect(stats, flow.sole_node_of_type(S.LAYOUT),
                     role="layout")
        flow.bind(flow.sole_node_of_type(S.LAYOUT), layout.instance_id)
        flow.bind(flow.sole_node_of_type(S.EXTRACTOR),
                  bare_env.db.latest(S.EXTRACTOR).instance_id)
        report = bare_env.run(flow)
        assert report.runs == 1
        assert len(report.created) == 2
        made = {bare_env.db.get(i).entity_type for i in report.created}
        assert made == {S.EXTRACTED_NETLIST, S.EXTRACTION_STATISTICS}
        # siblings share one invocation id
        records = [bare_env.db.get(i).derivation for i in report.created]
        assert len({r.invocation for r in records}) == 1

    def test_fanout_over_instance_set(self, bare_env):
        """Section 4.1: selecting a set runs the task per instance."""
        layouts = [bare_env.install_data(S.EDITED_LAYOUT, {"l": i})
                   for i in range(3)]
        flow = bare_env.new_flow("fan")
        netlist = flow.place(S.EXTRACTED_NETLIST)
        flow.expand(netlist)
        flow.bind(flow.sole_node_of_type(S.LAYOUT),
                  *[layout.instance_id for layout in layouts])
        flow.bind(flow.sole_node_of_type(S.EXTRACTOR),
                  bare_env.db.latest(S.EXTRACTOR).instance_id)
        report = bare_env.run(flow)
        assert report.runs == 3
        assert len(netlist.produced) == 3
        used = {dict(bare_env.db.get(i).derivation.inputs)["layout"]
                for i in netlist.produced}
        assert used == {layout.instance_id for layout in layouts}

    def test_batch_encapsulation_single_call(self, bare_env, schema):
        """Or: pass all of the data to a single call of the tool."""
        batch_calls = []

        def batch_fn(ctx, inputs):
            batch_calls.append(inputs)
            return {"batched": len(inputs["layout"])}

        instance = bare_env.db.install(S.EXTRACTOR, {}, name="batchx")
        bare_env.registry.register_for_instance(
            instance.instance_id,
            encapsulation("batchx", batch_fn, batch=True))
        layouts = [bare_env.install_data(S.EDITED_LAYOUT, {"l": i})
                   for i in range(3)]
        flow = bare_env.new_flow("batch")
        netlist = flow.place(S.EXTRACTED_NETLIST)
        flow.expand(netlist)
        flow.bind(flow.sole_node_of_type(S.LAYOUT),
                  *[layout.instance_id for layout in layouts])
        flow.bind(flow.sole_node_of_type(S.EXTRACTOR),
                  instance.instance_id)
        report = bare_env.run(flow)
        assert report.runs == 1
        assert len(batch_calls) == 1
        assert len(batch_calls[0]["layout"]) == 3
        # derivation keeps every input id
        record = bare_env.db.get(netlist.produced[0]).derivation
        assert len(record.all_antecedents()) == 4  # tool + 3 layouts

    def test_downstream_of_fanout_fans_out(self, bare_env):
        """Performances for each of two stimuli sets in one flow."""
        flow, goal = self.simulate_flow(bare_env)
        stim2 = bare_env.install_data(S.STIMULI, [[1]])
        stim_node = flow.sole_node_of_type(S.STIMULI)
        flow.bind(stim_node, stim_node.bindings[0], stim2.instance_id)
        report = bare_env.run(flow)
        assert len(goal.produced) == 2

    def test_execute_node_convenience(self, bare_env):
        flow, goal = self.simulate_flow(bare_env)
        circuit = flow.sole_node_of_type(S.CIRCUIT)
        bare_env.executor().execute_node(flow, circuit.node_id)
        assert circuit.produced and not goal.produced

    def test_report_accessors(self, bare_env):
        flow, goal = self.simulate_flow(bare_env)
        report = bare_env.run(flow)
        assert report.created_of_node(goal.node_id) == goal.produced
        assert report.created_of_node("n99") == ()
        assert report.runs == len(report.results)


class TestExecutionReportMerge:
    """Regression: merging parallel-lane reports must aggregate the
    timing fields correctly — wall-clock by max (lanes overlap), serial
    time by sum (it derives from the merged results)."""

    @staticmethod
    def result(duration: float):
        from repro.execution import InvocationResult

        return InvocationResult(
            "run#1", "Simulator", ("Simulator#0001",), "enc", 1,
            ("Performance#0001",), {"n0": ("Performance#0001",)},
            duration)

    def test_merge_takes_max_wall_time_not_sum(self):
        from repro.execution import ExecutionReport

        lane_a = ExecutionReport("f", results=[self.result(1.0)],
                                 wall_time=1.0)
        lane_b = ExecutionReport("f", results=[self.result(2.0)],
                                 wall_time=2.0)
        merged = ExecutionReport("f")
        merged.merge(lane_a)
        merged.merge(lane_b)
        assert merged.wall_time == 2.0  # max, not 3.0
        assert merged.serial_time == pytest.approx(3.0)
        assert len(merged.results) == 2
        assert merged.speedup == pytest.approx(1.5)

    def test_sequential_report_wall_time_measured(self, bare_env):
        flow, goal = TestExecutor().simulate_flow(bare_env)
        report = bare_env.run(flow)
        assert report.wall_time > 0
        assert report.serial_time <= report.wall_time

    def test_empty_report_has_neutral_speedup(self):
        from repro.execution import ExecutionReport

        report = ExecutionReport("f")
        assert report.wall_time == 0.0
        assert report.speedup == 1.0
