"""Unit tests for the task graph: structure, invariants, coalescing."""

import pytest

from repro.core.taskgraph import TaskGraph
from repro.errors import BindingError, FlowError
from repro.schema import standard as S


@pytest.fixture
def graph(schema) -> TaskGraph:
    return TaskGraph(schema, "test")


class TestNodes:
    def test_add_and_lookup(self, graph):
        node = graph.add_node(S.PERFORMANCE)
        assert graph.node(node.node_id) is node
        assert node.node_id in graph
        assert len(graph) == 1

    def test_unknown_type_rejected(self, graph):
        with pytest.raises(Exception):
            graph.add_node("Ghost")

    def test_unknown_node_lookup(self, graph):
        with pytest.raises(FlowError):
            graph.node("n99")

    def test_remove_node_drops_edges(self, graph):
        perf = graph.add_node(S.PERFORMANCE)
        sim = graph.add_node(S.SIMULATOR)
        graph.connect(perf.node_id, sim.node_id)
        graph.remove_node(sim.node_id)
        assert graph.suppliers(perf.node_id) == ()

    def test_node_ids_unique_after_copy(self, graph):
        graph.add_node(S.PERFORMANCE)
        clone = graph.copy()
        fresh = clone.add_node(S.STIMULI)
        assert fresh.node_id not in graph

    def test_nodes_of_type_includes_subtypes(self, graph):
        graph.add_node(S.EXTRACTED_NETLIST)
        graph.add_node(S.EDITED_NETLIST)
        assert len(graph.nodes_of_type(S.NETLIST)) == 2
        assert len(graph.nodes_of_type(S.NETLIST,
                                       include_subtypes=False)) == 0

    def test_binding(self, graph):
        node = graph.add_node(S.STIMULI)
        node.bind("Stimuli#0001", "Stimuli#0002")
        assert node.is_bound
        assert node.results() == ("Stimuli#0001", "Stimuli#0002")
        node.unbind()
        assert not node.is_bound

    def test_empty_bind_rejected(self, graph):
        node = graph.add_node(S.STIMULI)
        with pytest.raises(BindingError):
            node.bind()


class TestEdges:
    def test_connect_functional(self, graph):
        perf = graph.add_node(S.PERFORMANCE)
        sim = graph.add_node(S.SIMULATOR)
        edge = graph.connect(perf.node_id, sim.node_id)
        assert edge.is_functional
        assert graph.functional_supplier(perf.node_id) == sim.node_id

    def test_connect_data_with_role(self, graph):
        verification = graph.add_node(S.VERIFICATION)
        netlist = graph.add_node(S.EXTRACTED_NETLIST)
        edge = graph.connect(verification.node_id, netlist.node_id,
                             role="reference")
        assert edge.role == "reference"

    def test_role_inferred_when_unambiguous(self, graph):
        perf = graph.add_node(S.PERFORMANCE)
        stim = graph.add_node(S.STIMULI)
        edge = graph.connect(perf.node_id, stim.node_id)
        assert edge.role == "stimuli"

    def test_ambiguous_connection_requires_role(self, graph):
        verification = graph.add_node(S.VERIFICATION)
        netlist = graph.add_node(S.EXTRACTED_NETLIST)
        with pytest.raises(FlowError, match="ambiguous"):
            graph.connect(verification.node_id, netlist.node_id)

    def test_second_tool_rejected(self, graph):
        perf = graph.add_node(S.PERFORMANCE)
        graph.connect(perf.node_id, graph.add_node(S.SIMULATOR).node_id)
        with pytest.raises(FlowError):
            graph.connect(perf.node_id,
                          graph.add_node(S.SIMULATOR).node_id)

    def test_duplicate_role_rejected(self, graph):
        perf = graph.add_node(S.PERFORMANCE)
        graph.connect(perf.node_id, graph.add_node(S.STIMULI).node_id)
        with pytest.raises(FlowError):
            graph.connect(perf.node_id, graph.add_node(S.STIMULI).node_id)

    def test_subtype_accepted_for_supertype_role(self, graph):
        circuit = graph.add_node(S.CIRCUIT)
        extracted = graph.add_node(S.EXTRACTED_NETLIST)
        edge = graph.connect(circuit.node_id, extracted.node_id,
                             role="netlist")
        assert edge.role == "netlist"

    def test_wrong_type_rejected(self, graph):
        perf = graph.add_node(S.PERFORMANCE)
        layout = graph.add_node(S.EDITED_LAYOUT)
        with pytest.raises(FlowError):
            graph.connect(perf.node_id, layout.node_id)

    def test_cycle_rejected(self, graph):
        # EditedNetlist --previous--> Netlist; try to close a loop
        edited = graph.add_node(S.EDITED_NETLIST)
        other = graph.add_node(S.EDITED_NETLIST)
        graph.connect(edited.node_id, other.node_id, role="previous")
        with pytest.raises(FlowError, match="cycle"):
            graph.connect(other.node_id, edited.node_id, role="previous")

    def test_disconnect(self, graph):
        perf = graph.add_node(S.PERFORMANCE)
        stim = graph.add_node(S.STIMULI)
        graph.connect(perf.node_id, stim.node_id)
        graph.disconnect(perf.node_id, stim.node_id, "stimuli")
        assert graph.suppliers(perf.node_id) == ()
        with pytest.raises(FlowError):
            graph.disconnect(perf.node_id, stim.node_id)


class TestStructure:
    def build_fig3(self, graph):
        placed = graph.add_node(S.PLACED_LAYOUT)
        placer = graph.add_node(S.PLACER)
        netlist = graph.add_node(S.EDITED_NETLIST)
        spec = graph.add_node(S.PLACEMENT_SPEC)
        editor = graph.add_node(S.CIRCUIT_EDITOR)
        graph.connect(placed.node_id, placer.node_id)
        graph.connect(placed.node_id, netlist.node_id, role="netlist")
        graph.connect(placed.node_id, spec.node_id, role="spec")
        graph.connect(netlist.node_id, editor.node_id)
        return placed, placer, netlist, spec, editor

    def test_leaves_and_goals(self, graph):
        placed, placer, netlist, spec, editor = self.build_fig3(graph)
        leaf_ids = {n.node_id for n in graph.leaves()}
        assert leaf_ids == {placer.node_id, spec.node_id, editor.node_id}
        assert [g.node_id for g in graph.goals()] == [placed.node_id]

    def test_topological_order(self, graph):
        placed, placer, netlist, *_ = self.build_fig3(graph)
        order = graph.topological_order()
        assert order.index(netlist.node_id) < order.index(placed.node_id)

    def test_subtree_and_dependents(self, graph):
        placed, placer, netlist, spec, editor = self.build_fig3(graph)
        assert editor.node_id in graph.subtree(placed.node_id)
        assert placed.node_id in graph.dependents(editor.node_id)

    def test_disjoint_branches(self, graph):
        self.build_fig3(graph)
        lone = graph.add_node(S.STIMULI)
        branches = graph.disjoint_branches()
        assert len(branches) == 2
        assert frozenset({lone.node_id}) in branches

    def test_validate_detects_foreign_edge(self, graph):
        # force an edge that no schema dependency matches
        perf = graph.add_node(S.PERFORMANCE)
        stim = graph.add_node(S.STIMULI)
        edge = graph.connect(perf.node_id, stim.node_id)
        object.__setattr__(edge, "role", "bogus")
        with pytest.raises(FlowError):
            graph.validate()

    def test_missing_inputs(self, graph):
        perf = graph.add_node(S.PERFORMANCE)
        graph.connect(perf.node_id, graph.add_node(S.STIMULI).node_id)
        assert set(graph.missing_inputs(perf.node_id)) == {"circuit"}


class TestInvocations:
    def test_multi_output_coalescing(self, graph):
        """Fig. 5: extractor netlist + statistics from one tool run."""
        netlist = graph.add_node(S.EXTRACTED_NETLIST)
        stats = graph.add_node(S.EXTRACTION_STATISTICS)
        extractor = graph.add_node(S.EXTRACTOR)
        layout = graph.add_node(S.EDITED_LAYOUT)
        for output in (netlist, stats):
            graph.connect(output.node_id, extractor.node_id)
            graph.connect(output.node_id, layout.node_id, role="layout")
        invocations = graph.invocations()
        assert len(invocations) == 1
        assert set(invocations[0].outputs) == {netlist.node_id,
                                               stats.node_id}

    def test_different_inputs_do_not_coalesce(self, graph):
        extractor = graph.add_node(S.EXTRACTOR)
        for _ in range(2):
            out = graph.add_node(S.EXTRACTED_NETLIST)
            lay = graph.add_node(S.EDITED_LAYOUT)
            graph.connect(out.node_id, extractor.node_id)
            graph.connect(out.node_id, lay.node_id, role="layout")
        assert len(graph.invocations()) == 2

    def test_composed_invocations_never_coalesce(self, graph):
        models = graph.add_node(S.DEVICE_MODELS)
        netlist = graph.add_node(S.EDITED_NETLIST)
        for _ in range(2):
            circuit = graph.add_node(S.CIRCUIT)
            graph.connect(circuit.node_id, models.node_id, role="models")
            graph.connect(circuit.node_id, netlist.node_id,
                          role="netlist")
        assert len(graph.invocations()) == 2

    def test_invocation_for(self, graph):
        perf = graph.add_node(S.PERFORMANCE)
        graph.connect(perf.node_id, graph.add_node(S.SIMULATOR).node_id)
        invocation = graph.invocation_for(perf.node_id)
        assert perf.node_id in invocation.outputs
        with pytest.raises(FlowError):
            graph.invocation_for(graph.add_node(S.STIMULI).node_id)


class TestPersistence:
    def test_roundtrip(self, graph, schema):
        perf = graph.add_node(S.PERFORMANCE)
        sim = graph.add_node(S.SIMULATOR)
        graph.connect(perf.node_id, sim.node_id)
        sim.bind("Simulator#0001")
        payload = graph.to_dict()
        restored = TaskGraph.from_dict(schema, payload)
        assert restored.node(sim.node_id).bindings == ("Simulator#0001",)
        assert len(restored.edges()) == 1

    def test_copy_preserves_structure_independently(self, graph):
        perf = graph.add_node(S.PERFORMANCE)
        sim = graph.add_node(S.SIMULATOR)
        graph.connect(perf.node_id, sim.node_id)
        clone = graph.copy("clone")
        clone.remove_node(sim.node_id)
        assert sim.node_id in graph
        assert graph.functional_supplier(perf.node_id) == sim.node_id
