"""Cross-backend equivalence of the history storage layer.

The storage interface contract: the JSON/dict backend and the indexed
SQLite backend are *interchangeable* — every derivation query
(backward/forward chaining, staleness) answers identically on both,
and ``repro migrate`` converts a directory between them without
changing a single query result.  The property tests drive both
backends through randomly generated histories; the migration tests
round-trip a real fig10-style design history byte-for-byte.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import HistoryError
from repro.history.consistency import (forward_closure, stale_inputs,
                                       successor_versions)
from repro.history.database import HistoryDatabase, read_history_json
from repro.history.sqlite_store import SqliteHistoryStore
from repro.history.store import (BACKEND_JSON, BACKEND_SQLITE,
                                 InMemoryHistoryStore)
from repro.history.synth import SHAPES, build_history, synth_schema
from repro.history.trace import backward_trace, forward_trace
from repro.persistence import (HISTORY_FILE, HISTORY_SQLITE_FILE,
                               load_environment, migrate_environment,
                               save_environment)
from repro.schema import standard as S
from repro.tools import register_standard_encapsulations
from tests.conftest import build_performance_flow


def history_pair(size, shape, seed, tmp_path, edit_every=4):
    """The same deterministic workload on both backends."""
    mem = build_history(size, shape, seed=seed, edit_every=edit_every)
    sql = build_history(
        size, shape, seed=seed, edit_every=edit_every,
        store=SqliteHistoryStore(tmp_path / f"{shape}-{seed}.sqlite"))
    return mem, sql


def query_fingerprint(db, handles):
    """Every query family's results, in comparable form."""
    return {
        "backward": {h: sorted(backward_trace(db, h).instances())
                     for h in handles.heads},
        "forward": {s: sorted(forward_trace(db, s).instances())
                    for s in handles.sources},
        "stale": {h: stale_inputs(db, h) for h in handles.heads},
        "successors": {s: [i.instance_id
                           for i in successor_versions(db, s)]
                       for s in handles.sources},
        "closure": {s: sorted(forward_closure(db, s))
                    for s in handles.sources},
    }


class TestBackendEquivalence:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_all_queries_identical(self, shape, tmp_path):
        mem, sql = history_pair(300, shape, seed=5, tmp_path=tmp_path)
        try:
            assert query_fingerprint(mem.db, mem) == \
                query_fingerprint(sql.db, sql)
        finally:
            sql.db.store.close()

    def test_identical_after_cold_reopen(self, tmp_path):
        mem, sql = history_pair(300, "forkjoin", seed=9,
                                tmp_path=tmp_path)
        path = sql.db.store.path
        sql.db.store.close()
        reopened = HistoryDatabase(synth_schema(),
                                   store=SqliteHistoryStore(path))
        try:
            assert query_fingerprint(mem.db, mem) == \
                query_fingerprint(reopened, mem)
            # id allocation resumes past the persisted maxima
            fresh = reopened._new_id("Beta")
            assert fresh not in reopened
            assert fresh > max(reopened.store.ids_of_type("Beta"))
        finally:
            reopened.store.close()

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(shape=st.sampled_from(SHAPES),
           size=st.integers(20, 200),
           seed=st.integers(0, 10_000),
           edit_every=st.integers(1, 6))
    def test_property_backends_agree(self, shape, size, seed,
                                     edit_every, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("synth")
        mem = build_history(size, shape, seed=seed,
                            edit_every=edit_every)
        sql = build_history(size, shape, seed=seed,
                            edit_every=edit_every,
                            store=SqliteHistoryStore(tmp / "h.sqlite"))
        try:
            assert [i.to_dict() for i in mem.db.iter_instances()] == \
                [i.to_dict() for i in sql.db.iter_instances()]
            assert query_fingerprint(mem.db, mem) == \
                query_fingerprint(sql.db, sql)
        finally:
            sql.db.store.close()


def fig10_environment(tmp_path):
    """A real design history: simulation run plus an edit chain.

    Mirrors the Fig. 10 benchmark setup — a Performance derivation
    whose History pop-up reveals its creating instances — with enough
    edits for the staleness queries to have work to do.
    """
    from repro.tools import (default_models, exhaustive,
                             install_standard_tools, tech_map)
    from repro.tools.logic import LogicSpec
    from repro import DesignEnvironment
    from repro.schema.standard import odyssey_schema
    from tests.conftest import TickClock

    env = DesignEnvironment(odyssey_schema(), user="fig10",
                            clock=TickClock())
    tools = install_standard_tools(env)
    spec = LogicSpec.from_equations("mux", "y = (a & ~s) | (b & s)")
    models = env.install_data(S.DEVICE_MODELS, default_models(),
                              name="tech")
    stimuli = env.install_data(
        S.STIMULI, exhaustive(("a", "b", "s"), name="all3"), name="all3")
    netlist = env.install_data(S.EDITED_NETLIST, tech_map(spec),
                               name="mux-gates")
    flow, goal = build_performance_flow(
        env, netlist_id=netlist.instance_id,
        models_id=models.instance_id, stimuli_id=stimuli.instance_id,
        simulator_id=tools[S.SIMULATOR].instance_id)
    env.run(flow)
    # edit the netlist after the run: the Performance result goes stale
    from repro.history.instance import DerivationRecord
    editor = tools[S.CIRCUIT_EDITOR]
    env.db.record(
        S.EDITED_NETLIST, tech_map(spec),
        DerivationRecord.make(editor.instance_id,
                              {"previous": netlist.instance_id},
                              env.db.new_invocation_id()),
        user="fig10", name="mux-v2")
    return env


def environment_fingerprint(directory):
    """Byte-comparable digest of every query over a saved environment."""
    env = load_environment(directory)
    register_standard_encapsulations(env)
    db = env.db
    instances = [i.instance_id for i in db.iter_instances()]
    digest = {
        # full meta-data + canonical blob dump (content-addressed
        # text, not live decoded objects, so it is byte-stable)
        "database": db.to_dict(),
        "backward": {i: backward_trace(db, i).render()
                     for i in instances},
        "forward": {i: sorted(forward_trace(db, i).instances())
                    for i in instances},
        "stale": {i: [str(s) for s in stale_inputs(db, i)]
                  for i in instances},
    }
    encoded = json.dumps(digest, sort_keys=True).encode("utf-8")
    if isinstance(db.store, SqliteHistoryStore):
        db.store.close()
    return encoded


class TestMigration:
    def test_fig10_round_trip_byte_identical(self, tmp_path):
        env = fig10_environment(tmp_path)
        directory = tmp_path / "proj"
        save_environment(env, directory)
        before = environment_fingerprint(directory)
        assert stale_inputs(env.db,
                            env.db.latest(S.PERFORMANCE).instance_id)

        assert migrate_environment(directory, BACKEND_SQLITE) is True
        assert (directory / HISTORY_SQLITE_FILE).exists()
        assert not (directory / HISTORY_FILE).exists()
        assert environment_fingerprint(directory) == before

        assert migrate_environment(directory, BACKEND_JSON) is True
        assert (directory / HISTORY_FILE).exists()
        assert not (directory / HISTORY_SQLITE_FILE).exists()
        assert environment_fingerprint(directory) == before

    def test_migrate_is_idempotent(self, tmp_path):
        env = fig10_environment(tmp_path)
        directory = tmp_path / "proj"
        save_environment(env, directory)
        assert migrate_environment(directory, BACKEND_SQLITE) is True
        first = environment_fingerprint(directory)
        assert migrate_environment(directory, BACKEND_SQLITE) is False
        assert environment_fingerprint(directory) == first

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(shape=st.sampled_from(SHAPES), seed=st.integers(0, 1000))
    def test_property_migrate_round_trip(self, shape, seed,
                                         tmp_path_factory):
        tmp = tmp_path_factory.mktemp("migrate")
        handles = build_history(60, shape, seed=seed, edit_every=2)
        fingerprint = query_fingerprint(handles.db, handles)

        converted = handles.db.converted(
            SqliteHistoryStore(tmp / "m.sqlite"))
        assert query_fingerprint(converted, handles) == fingerprint
        # and back again, via the sqlite copy's full dump
        back = HistoryDatabase.from_dict(synth_schema(),
                                         converted.to_dict())
        converted.store.close()
        assert isinstance(back.store, InMemoryHistoryStore)
        assert query_fingerprint(back, handles) == fingerprint


class TestCorruptTail:
    def test_truncated_history_names_path_and_offset(self, tmp_path):
        handles = build_history(40, "chain", seed=2)
        path = tmp_path / "history.json"
        handles.db.save(str(path))
        text = path.read_text(encoding="utf-8")
        path.write_text(text[:len(text) // 2], encoding="utf-8")
        with pytest.raises(HistoryError) as caught:
            read_history_json(str(path))
        message = str(caught.value)
        assert str(path) in message
        assert "byte offset" in message
        assert "truncated" in message

    def test_load_environment_surfaces_corruption(self, tmp_path):
        env = fig10_environment(tmp_path)
        directory = tmp_path / "proj"
        save_environment(env, directory)
        history = directory / HISTORY_FILE
        text = history.read_text(encoding="utf-8")
        history.write_text(text[:-40], encoding="utf-8")
        with pytest.raises(HistoryError) as caught:
            load_environment(directory)
        assert "byte offset" in str(caught.value)

    def test_intact_history_loads_unchanged(self, tmp_path):
        handles = build_history(40, "diamond", seed=2)
        path = tmp_path / "history.json"
        handles.db.save(str(path))
        payload = read_history_json(str(path))
        restored = HistoryDatabase.from_dict(synth_schema(), payload)
        assert query_fingerprint(restored, handles) == \
            query_fingerprint(handles.db, handles)
