"""Cross-process worker telemetry: spans, timeline, utilization health.

Covers the PR 8 surface end to end: the in-worker recorder and its
pickle-safe phase samples, the spawn-time clock handshake and the
skew-corrected merge (property-tested: fitted phases always nest inside
the dispatch window), the procpool integration (merged traces validate,
every tool span carries worker-side phase children, containment holds
up the whole span chain), the worker-lane timeline renderer, the
``--follow`` event tail, the ledger's optional per-worker stats (old
ledgers load unchanged), and the ``worker-utilization`` health check.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.errors import ObservabilityError
from repro.execution import DesignEnvironment, encapsulation
from repro.obs import (FAIL, OK, PHASE_SPAN, RUN_SPAN, TASK_SPAN,
                       TOOL_SPAN, WARN, WORKER_PHASES, WORKER_STATS,
                       ClockSync, Event, HealthThresholds,
                       MetricsRegistry, RingBufferSink, RunLedger,
                       RunRecord, Span, WorkerRunStats,
                       WorkerTelemetry, evaluate_health, fit_phases,
                       follow_jsonl_objects, render_timeline,
                       validate_spans, worker_imbalance,
                       worker_utilization)
from repro.obs.health import check_worker_utilization
from repro.schema.builder import SchemaBuilder

# ---------------------------------------------------------------------------
# shared fixtures: a 4-branch fan flow on the procpool executor
# ---------------------------------------------------------------------------


def fan_schema():
    builder = SchemaBuilder("fan")
    builder.data("Spec")
    builder.tool("Tool")
    builder.data("Out")
    builder.produced_by("Out", "Tool", inputs=[("src", "Spec")])
    return builder.build()


def fan_env() -> DesignEnvironment:
    env = DesignEnvironment(fan_schema(), user="tester")

    def fn(ctx, inputs):
        time.sleep(0.005)
        return {"ok": inputs["src"]["n"]}

    env.install_tool("Tool", encapsulation("fan-tool", fn), name="t0")
    for index in range(4):
        env.install_data("Spec", {"n": index}, name=f"s{index}")
    return env


def fan_flow(env: DesignEnvironment):
    tool = env.db.latest("Tool")
    specs = sorted((i for i in env.db.instances()
                    if i.entity_type == "Spec"),
                   key=lambda i: i.name)
    flow = env.new_flow("fan")
    for index, spec in enumerate(specs):
        spec_node = flow.place("Spec", label=f"s{index}")
        flow.bind(spec_node, spec.instance_id)
        out = flow.place("Out", label=f"o{index}")
        tool_node = flow.place("Tool", label=f"t{index}")
        flow.bind(tool_node, tool.instance_id)
        flow.connect(out, tool_node)
        flow.connect(out, spec_node, role="src")
    return flow


# ---------------------------------------------------------------------------
# WorkerTelemetry: the in-worker recorder
# ---------------------------------------------------------------------------
class TestWorkerTelemetry:
    def test_phases_collected_only_when_asked(self):
        clock = iter(float(i) for i in range(100))
        telemetry = WorkerTelemetry("w0", clock=lambda: next(clock))
        telemetry.begin_envelope(collect=False)
        with telemetry.phase("tool_body"):
            pass
        assert telemetry.phases() == ()
        telemetry.begin_envelope(collect=True)
        with telemetry.phase("decode"):
            pass
        with telemetry.phase("tool_body"):
            pass
        names = [name for name, _, _ in telemetry.phases()]
        assert names == ["decode", "tool_body"]
        for _, start, end in telemetry.phases():
            assert end > start

    def test_phase_recorded_even_when_body_raises(self):
        telemetry = WorkerTelemetry("w0")
        telemetry.begin_envelope(collect=True)
        with pytest.raises(ValueError):
            with telemetry.phase("tool_body"):
                raise ValueError("boom")
        assert [name for name, _, _ in telemetry.phases()] \
            == ["tool_body"]

    def test_counters_accumulate_across_envelopes(self):
        telemetry = WorkerTelemetry("w0")
        telemetry.begin_envelope()
        telemetry.finish_envelope(0.25)
        telemetry.begin_envelope()
        telemetry.finish_envelope(0.5)
        telemetry.finish_envelope(-1.0)  # clock went backwards: clamp
        stats = telemetry.stats()
        assert stats["worker"] == "w0"
        assert stats["envelopes"] == 3
        assert stats["busy_time"] == 0.75
        assert stats["rss_kb"] > 0  # Linux CI always has resource

    def test_begin_envelope_resets_scratch(self):
        telemetry = WorkerTelemetry("w0")
        telemetry.begin_envelope(collect=True)
        with telemetry.phase("decode"):
            pass
        telemetry.begin_envelope(collect=True)
        assert telemetry.phases() == ()


# ---------------------------------------------------------------------------
# ClockSync + fit_phases: the skew-corrected merge
# ---------------------------------------------------------------------------
class TestClockSync:
    def test_midpoint_estimate_recovers_known_offset(self):
        # worker clock runs 100s ahead; symmetric 2ms round trip
        sync = ClockSync.estimate(10.0, 110.001, 10.002)
        assert sync.synced
        assert sync.offset == pytest.approx(100.0)
        assert sync.rtt == pytest.approx(0.002)
        assert sync.correct(110.5) == pytest.approx(10.5)

    def test_default_sync_is_identity(self):
        sync = ClockSync()
        assert not sync.synced
        assert sync.correct(42.0) == 42.0

    def test_fit_without_window_only_corrects(self):
        sync = ClockSync(offset=5.0, synced=True)
        fitted = fit_phases([("tool_body", 6.0, 7.0)], sync, None)
        assert fitted == (("tool_body", 1.0, 2.0),)

    def test_fit_clamps_into_window(self):
        sync = ClockSync()  # no correction: samples land outside
        fitted = fit_phases(
            [("decode", 0.0, 1.0), ("tool_body", 1.0, 9.0)],
            sync, (2.0, 5.0))
        assert fitted == (("decode", 2.0, 2.0),
                          ("tool_body", 2.0, 5.0))

    @settings(max_examples=120)
    @given(offset=st.floats(-1e3, 1e3),
           window_start=st.floats(0.0, 1e3),
           window_len=st.floats(0.0, 10.0),
           samples=st.lists(
               st.tuples(st.sampled_from(WORKER_PHASES),
                         st.floats(0.0, 2e3),
                         st.floats(0.0, 10.0)),
               max_size=6))
    def test_fitted_phases_always_nest_inside_window(
            self, offset, window_start, window_len, samples):
        """The paper-cut invariant: whatever the skew estimate error,
        merged phases stay inside the coordinator-observed dispatch
        window, ordered (end >= start), one output per input."""
        sync = ClockSync(offset=offset, rtt=0.001, synced=True)
        phases = [(name, start, start + length)
                  for name, start, length in samples]
        window = (window_start, window_start + window_len)
        fitted = fit_phases(phases, sync, window)
        assert len(fitted) == len(phases)
        for (name, start, end), (orig, _, _) in zip(fitted, phases):
            assert name == orig
            assert window[0] <= start <= end <= window[1]


# ---------------------------------------------------------------------------
# WorkerRunStats: math + serialization
# ---------------------------------------------------------------------------
class TestWorkerRunStats:
    def test_round_trip(self):
        stats = WorkerRunStats(batches=3, invocations=7, steals=2,
                               respawns=1, cache_hits=4,
                               busy_time=1.5, idle_time=0.5,
                               rss_kb=2048)
        assert WorkerRunStats.from_dict(stats.to_dict()) == stats

    def test_render_hides_zero_counters(self):
        text = WorkerRunStats(batches=1, invocations=2,
                              busy_time=0.1).render()
        assert "steals" not in text and "respawns" not in text
        busy = WorkerRunStats(steals=3, respawns=1, batches=1,
                              invocations=1, busy_time=0.1).render()
        assert "steals=3" in busy and "respawns=1" in busy

    def test_utilization_and_imbalance(self):
        workers = {"w0": WorkerRunStats(busy_time=1.0),
                   "w1": WorkerRunStats(busy_time=3.0)}
        assert worker_utilization(workers, 2.0) \
            == pytest.approx(4.0 / 4.0)
        assert worker_imbalance(workers) == pytest.approx(1.5)
        assert worker_utilization({}, 2.0) == 0.0
        assert worker_utilization(workers, 0.0) == 0.0
        assert worker_imbalance({}) == 1.0
        assert worker_imbalance(
            {"w0": WorkerRunStats(busy_time=0.0)}) == 1.0


# ---------------------------------------------------------------------------
# procpool integration: merged traces are complete and contained
# ---------------------------------------------------------------------------
class TestProcpoolTraceMerge:
    @pytest.fixture
    def traced_run(self):
        env = fan_env()
        spans = RingBufferSink(512)
        env.tracer.subscribe(spans)
        events = RingBufferSink(512)
        env.bus.subscribe(events)
        report = env.process_executor(workers=2).execute(fan_flow(env))
        return report, tuple(spans.events()), events

    def test_merged_trace_validates_with_no_orphans(self, traced_run):
        _, spans, _ = traced_run
        assert validate_spans(spans) == []

    def test_every_tool_span_has_worker_phase_children(self,
                                                       traced_run):
        _, spans, _ = traced_run
        tools = [s for s in spans if s.kind == TOOL_SPAN]
        phases = [s for s in spans if s.kind == PHASE_SPAN]
        assert len(tools) == 4
        for tool in tools:
            children = [p for p in phases
                        if p.parent_id == tool.span_id]
            assert children, f"tool span {tool.name} has no phases"
            names = {p.value("phase") for p in children}
            assert "tool_body" in names
            for child in children:
                assert child.value("worker", "").startswith("worker")

    def test_child_intervals_nest_inside_parents(self, traced_run):
        """Skew-corrected worker spans stay inside their parents all
        the way up: phase < tool < task < lane < run."""
        _, spans, _ = traced_run
        by_id = {s.span_id: s for s in spans}
        tolerance = 1e-9
        for span in spans:
            if span.parent_id is None:
                continue
            parent = by_id[span.parent_id]
            assert parent.start - tolerance <= span.start
            assert span.end <= parent.end + tolerance

    def test_worker_stats_events_emitted_per_worker(self, traced_run):
        report, _, events = traced_run
        stats = events.events(WORKER_STATS)
        assert {e.machine for e in stats} == {"worker0", "worker1"}
        assert sum(e.value("invocations") for e in stats) \
            == report.runs

    def test_run_record_carries_worker_stats(self, tmp_path):
        env = fan_env()
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        env.ledger = ledger
        env.process_executor(workers=2).execute(fan_flow(env))
        record = RunLedger(tmp_path / "ledger.jsonl").records()[-1]
        assert set(record.workers) == {"worker0", "worker1"}
        total = sum(w.invocations for w in record.workers.values())
        assert total == 4
        assert record.worker_utilization > 0


# ---------------------------------------------------------------------------
# timeline rendering (deterministic fixture)
# ---------------------------------------------------------------------------
def lane_fixture() -> list[Span]:
    """Two workers, three tasks, hand-built timestamps."""

    def span(span_id, parent, name, kind, start, end, **attrs):
        return Span("t1", span_id, parent, name, kind, start, end,
                    attributes=attrs)

    return [
        span("s1", None, "run:f", RUN_SPAN, 0.0, 10.0, flow="f"),
        span("s2", "s1", "task:a", TASK_SPAN, 1.0, 5.0,
             machine="worker0", queue_wait=1.0),
        span("s3", "s1", "task:b", TASK_SPAN, 5.0, 9.0,
             machine="worker0"),
        span("s4", "s1", "task:c", TASK_SPAN, 2.0, 8.0,
             machine="worker1"),
    ]


class TestTimeline:
    def test_renders_one_lane_per_worker(self):
        text = render_timeline(lane_fixture(), width=20)
        lines = text.splitlines()
        assert "2 lane(s), 3 task(s)" in lines[0]
        assert "(flow f)" in lines[0]
        lanes = [line for line in lines if "|" in line]
        assert len(lanes) == 2
        assert lanes[0].lstrip().startswith("worker0")
        assert lanes[1].lstrip().startswith("worker1")

    def test_busy_shares_use_interval_union(self):
        # worker0 executes 1..5 and 5..9 = 8 of 10 wall seconds
        text = render_timeline(lane_fixture(), width=20)
        worker0 = next(line for line in text.splitlines()
                       if "worker0" in line)
        assert "busy  80%" in worker0
        assert "wait  10%" in worker0

    def test_overlapping_tasks_do_not_double_count(self):
        spans = lane_fixture()
        # a batched twin sharing task:a's dispatch window
        spans.append(Span("t1", "s5", "s1", "task:d", TASK_SPAN,
                          1.0, 5.0, attributes={"machine": "worker0"}))
        text = render_timeline(spans, width=20)
        worker0 = next(line for line in text.splitlines()
                       if "worker0" in line)
        assert "busy  80%" in worker0  # union, not 120%

    def test_queue_wait_and_error_marks(self):
        spans = lane_fixture()
        spans[2].status = "error:ToolError"
        text = render_timeline(spans, width=20)
        worker0 = next(line for line in text.splitlines()
                       if "worker0" in line)
        assert "~" in worker0 and "!" in worker0

    def test_natural_lane_order(self):
        spans = [Span("t1", "r", None, "run:f", RUN_SPAN, 0.0, 4.0)]
        for index, lane in enumerate(("worker10", "worker2")):
            spans.append(Span("t1", f"s{index}", "r", "task:x",
                              TASK_SPAN, 1.0, 3.0,
                              attributes={"machine": lane}))
        lanes = [line.split("|")[0].strip()
                 for line in render_timeline(spans).splitlines()
                 if "|" in line]
        assert lanes == ["worker2", "worker10"]

    def test_rejects_absurd_width(self):
        with pytest.raises(ObservabilityError):
            render_timeline(lane_fixture(), width=5)

    def test_no_task_spans(self):
        spans = [Span("t1", "r", None, "run:f", RUN_SPAN, 0.0, 1.0)]
        assert "no task spans" in render_timeline(spans)

    def test_timeline_cli_renders_procpool_trace(self, tmp_path,
                                                 capsys):
        env = fan_env()
        from repro.obs import JSONLSink
        sink = JSONLSink(tmp_path / "trace.jsonl")
        env.tracer.subscribe(sink)
        env.process_executor(workers=2).execute(fan_flow(env))
        sink.close()
        assert main(["trace", "timeline", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "worker0" in output and "worker1" in output
        assert "legend" in output


# ---------------------------------------------------------------------------
# --follow: incremental tail of a JSONL log
# ---------------------------------------------------------------------------
class TestFollow:
    def test_yields_appended_objects_across_polls(self, tmp_path):
        log = tmp_path / "events.jsonl"
        log.write_text('{"a": 1}\n', encoding="utf-8")
        polls = {"count": 0}

        def fake_sleep(_interval):
            polls["count"] += 1
            if polls["count"] == 1:
                with open(log, "a", encoding="utf-8") as handle:
                    handle.write('{"a": 2}\n')

        seen = []
        for lineno, spec in follow_jsonl_objects(
                log, sleep=fake_sleep,
                stop=lambda: polls["count"] >= 2):
            seen.append((lineno, spec))
        assert seen == [(1, {"a": 1}), (2, {"a": 2})]

    def test_partial_line_buffered_until_newline(self, tmp_path):
        log = tmp_path / "events.jsonl"
        log.write_text('{"a"', encoding="utf-8")  # torn write
        polls = {"count": 0}

        def fake_sleep(_interval):
            polls["count"] += 1
            with open(log, "a", encoding="utf-8") as handle:
                handle.write(': 1}\n')

        seen = list(follow_jsonl_objects(
            log, sleep=fake_sleep, stop=lambda: polls["count"] >= 1))
        assert seen == [(1, {"a": 1})]

    def test_terminated_corrupt_line_raises(self, tmp_path):
        log = tmp_path / "events.jsonl"
        log.write_text('not json\n', encoding="utf-8")
        with pytest.raises(ObservabilityError, match="corrupt"):
            list(follow_jsonl_objects(log, sleep=lambda _: None,
                                      stop=lambda: True))

    def test_non_object_line_raises(self, tmp_path):
        log = tmp_path / "events.jsonl"
        log.write_text('[1, 2]\n', encoding="utf-8")
        with pytest.raises(ObservabilityError, match="JSON object"):
            list(follow_jsonl_objects(log, sleep=lambda _: None,
                                      stop=lambda: True))

    def test_waits_for_missing_file(self, tmp_path):
        log = tmp_path / "later.jsonl"
        polls = {"count": 0}

        def fake_sleep(_interval):
            polls["count"] += 1
            if polls["count"] == 2:
                log.write_text('{"a": 1}\n', encoding="utf-8")

        seen = list(follow_jsonl_objects(
            log, sleep=fake_sleep, stop=lambda: polls["count"] >= 3))
        assert seen == [(1, {"a": 1})]

    def test_truncation_restarts_from_top(self, tmp_path):
        log = tmp_path / "events.jsonl"
        log.write_text('{"a": 1}\n{"a": 2}\n', encoding="utf-8")
        polls = {"count": 0}

        def fake_sleep(_interval):
            polls["count"] += 1
            if polls["count"] == 1:
                log.write_text('{"b": 1}\n', encoding="utf-8")

        seen = list(follow_jsonl_objects(
            log, sleep=fake_sleep, stop=lambda: polls["count"] >= 2))
        assert seen == [(1, {"a": 1}), (2, {"a": 2}), (1, {"b": 1})]

    def test_events_cli_follow(self, tmp_path, capsys):
        env = fan_env()
        from repro.obs import JSONLSink
        log = tmp_path / "events.jsonl"
        env.bus.subscribe(JSONLSink(log))
        env.process_executor(workers=2).execute(fan_flow(env))
        code = main(["events", str(log), "--follow",
                     "--duration", "0.2", "--poll", "0.05",
                     "--type", "worker_stats"])
        assert code == 0
        output = capsys.readouterr().out
        assert "worker_stats" in output
        assert "worker0" in output

    def test_events_cli_follow_conflicts(self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        log.write_text("", encoding="utf-8")
        assert main(["events", str(log), "--follow",
                     "--replay"]) == 2
        assert main(["events", str(log), "--follow",
                     "--tail", "3"]) == 2
        assert main(["events", str(log), "--follow",
                     "--poll", "0"]) == 2


# ---------------------------------------------------------------------------
# ledger: optional workers field, back-compat, Prometheus export
# ---------------------------------------------------------------------------
def make_record(run_id: str, workers=None, wall=2.0, executor="procpool",
                errors=0) -> RunRecord:
    return RunRecord(run_id=run_id, timestamp=float(len(run_id)),
                     flow="f", executor=executor, cache_policy="off",
                     wall_time=wall, runs=4, errors=errors,
                     workers=dict(workers or {}))


class TestLedgerWorkers:
    def test_round_trip_preserves_workers(self):
        record = make_record("r1", {
            "worker0": WorkerRunStats(batches=1, invocations=2,
                                      busy_time=1.0, idle_time=1.0),
            "worker1": WorkerRunStats(batches=2, invocations=2,
                                      steals=1, busy_time=0.5,
                                      idle_time=1.5, rss_kb=1024)})
        loaded = RunRecord.from_dict(record.to_dict())
        assert loaded.workers == record.workers
        assert loaded.worker_utilization \
            == pytest.approx(1.5 / (2 * 2.0))

    def test_workers_omitted_from_wire_when_empty(self):
        spec = make_record("r1").to_dict()
        assert "workers" not in spec

    def test_old_ledger_line_loads_without_workers(self):
        spec = make_record("r1").to_dict()
        spec.pop("workers", None)
        loaded = RunRecord.from_dict(spec)
        assert loaded.workers == {}
        assert loaded.worker_utilization == 0.0

    def test_render_includes_worker_summary(self):
        record = make_record(
            "r1", {"worker0": WorkerRunStats(busy_time=1.0)})
        assert "workers=1" in record.render()

    def test_prometheus_export_has_worker_series(self):
        from repro.obs import render_prometheus_ledger
        records = (make_record("r1", {
            "worker0": WorkerRunStats(invocations=2, busy_time=1.0,
                                      idle_time=1.0, steals=1,
                                      respawns=1, rss_kb=512)}),)
        text = render_prometheus_ledger(records)
        assert "_run_worker_utilization" in text
        assert 'worker="worker0"' in text
        assert "_run_worker_steals_total 1" in text
        assert "_run_worker_respawns_total 1" in text


# ---------------------------------------------------------------------------
# the worker-utilization health check
# ---------------------------------------------------------------------------
def balanced(busy: float) -> dict:
    return {"worker0": WorkerRunStats(busy_time=busy, invocations=2),
            "worker1": WorkerRunStats(busy_time=busy, invocations=2)}


class TestWorkerUtilizationHealth:
    thresholds = HealthThresholds(min_samples=2)

    def test_ok_without_worker_telemetry(self):
        result = check_worker_utilization(
            make_record("r1", executor="sequential"), (),
            self.thresholds)
        assert result.verdict == OK
        assert "no worker telemetry" in result.detail

    def test_ok_when_balanced_and_no_baseline(self):
        result = check_worker_utilization(
            make_record("r1", balanced(1.0)), (), self.thresholds)
        assert result.verdict == OK
        assert "utilization" in result.detail

    def test_fails_on_gross_imbalance(self):
        # one of four workers did all the work: imbalance 4.0x
        skewed = {"worker0": WorkerRunStats(busy_time=2.0),
                  "worker1": WorkerRunStats(busy_time=0.0),
                  "worker2": WorkerRunStats(busy_time=0.0),
                  "worker3": WorkerRunStats(busy_time=0.0)}
        result = check_worker_utilization(
            make_record("r1", skewed), (), self.thresholds)
        assert result.verdict == FAIL
        assert "imbalance" in result.detail

    def test_moderate_imbalance_warns(self):
        skewed = {"worker0": WorkerRunStats(busy_time=1.5),
                  "worker1": WorkerRunStats(busy_time=0.2),
                  "worker2": WorkerRunStats(busy_time=0.2),
                  "worker3": WorkerRunStats(busy_time=0.1)}
        result = check_worker_utilization(
            make_record("r1", skewed), (), self.thresholds)
        assert result.verdict == WARN

    def test_light_load_never_gates_imbalance(self):
        skewed = {"worker0": WorkerRunStats(busy_time=0.010),
                  "worker1": WorkerRunStats(busy_time=0.000)}
        result = check_worker_utilization(
            make_record("r1", skewed), (), self.thresholds)
        assert result.verdict == OK

    def test_utilization_collapse_vs_baseline_fails(self):
        baseline = tuple(make_record(f"r{i}", balanced(1.0))
                         for i in range(3))
        current = make_record("r9", balanced(0.2))
        result = check_worker_utilization(current, baseline,
                                          self.thresholds)
        assert result.verdict == FAIL
        assert "collapsed" in result.detail

    def test_mild_drop_warns(self):
        baseline = tuple(make_record(f"r{i}", balanced(1.0))
                         for i in range(3))
        current = make_record("r9", balanced(0.7))
        result = check_worker_utilization(current, baseline,
                                          self.thresholds)
        assert result.verdict == WARN

    def test_other_executor_baselines_ignored(self):
        baseline = tuple(make_record(f"r{i}", balanced(1.0),
                                     executor="scheduled")
                         for i in range(3))
        current = make_record("r9", balanced(0.2))
        result = check_worker_utilization(current, baseline,
                                          self.thresholds)
        assert result.verdict == OK

    def test_check_registered_in_full_report(self):
        report = evaluate_health(
            [make_record("r1", balanced(1.0))],
            thresholds=self.thresholds)
        assert "worker-utilization" in {c.name for c in report.checks}
        assert report.exit_code == 0


# ---------------------------------------------------------------------------
# metrics: WORKER_STATS events feed per-worker series
# ---------------------------------------------------------------------------
class TestWorkerMetrics:
    def worker_event(self, seq: int, machine: str, **payload) -> Event:
        return Event(seq=seq, event_type=WORKER_STATS, timestamp=1.0,
                     flow="f", machine=machine, duration=1.5,
                     payload=tuple(sorted(payload.items())))

    def test_counters_and_gauges(self):
        metrics = MetricsRegistry()
        metrics.handle(self.worker_event(
            1, "worker0", batches=2, invocations=4, steals=1,
            busy=1.5, idle=0.5, utilization=0.75))
        metrics.handle(self.worker_event(
            2, "worker1", batches=1, invocations=2, respawns=1,
            busy=0.5, idle=1.5, utilization=0.25))
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["worker.worker0.invocations"] == 4
        assert snapshot["counters"]["workers.invocations"] == 6
        assert snapshot["counters"]["workers.steals"] == 1
        assert snapshot["counters"]["workers.respawns"] == 1
        assert snapshot["gauges"]["worker.worker0.busy_seconds"] == 1.5
        assert snapshot["gauges"]["worker.worker1.utilization"] == 0.25

    def test_render_lists_worker_section(self):
        metrics = MetricsRegistry()
        metrics.handle(self.worker_event(
            1, "worker0", batches=1, invocations=2, busy=1.0,
            idle=1.0, utilization=0.5))
        text = metrics.render()
        assert "workers:" in text
        assert "worker0" in text


# ---------------------------------------------------------------------------
# stats CLI: the per-worker section
# ---------------------------------------------------------------------------
class TestStatsCli:
    def test_stats_shows_worker_counters(self, tmp_path, capsys):
        from repro.persistence import save_environment
        env = fan_env()
        save_environment(env, tmp_path)
        env.ledger = RunLedger(tmp_path / "ledger.jsonl")
        env.process_executor(workers=2).execute(fan_flow(env))
        assert main(["stats", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "workers (latest run): 2 worker(s)" in output
        assert "steals=" in output and "respawns=" in output
        assert "worker0:" in output and "worker1:" in output
