"""Tests for layout, extraction, verification, placement, generation."""

import pytest

from repro.errors import ToolError
from repro.tools import (Layout, Netlist, extract, pla_layout,
                         pla_statistics, place, placement_quality,
                         stdcell_layout, tech_map, truth_table, verify)
from repro.tools.logic import LogicSpec
from repro.tools.placer import DEFAULT_SPEC


class TestLayoutModel:
    def test_place_move_remove(self):
        layout = Layout("l")
        layout.place("u1", "inv", 0, 0)
        layout.move("u1", 4, 2)
        assert layout.placement("u1").origin() == (4, 2)
        layout.remove("u1")
        assert layout.cell_count == 0

    def test_duplicate_placement_rejected(self):
        layout = Layout("l")
        layout.place("u1", "inv", 0, 0)
        with pytest.raises(ToolError):
            layout.place("u1", "inv", 2, 0)

    def test_route_and_unroute(self):
        layout = Layout("l")
        layout.route("n1", [(0, 0), (3, 0), (3, 2)])
        assert layout.wirelength() == 5
        assert layout.unroute("n1") == 1
        assert layout.wires() == ()

    def test_pins_and_directions(self):
        layout = Layout("l")
        layout.add_pin("a", 0, 0, "in")
        with pytest.raises(ToolError):
            layout.add_pin("a", 1, 1)
        with pytest.raises(ToolError):
            layout.add_pin("b", 0, 0, "sideways")

    def test_bounding_box_and_area(self, library):
        layout = Layout("l")
        layout.place("u1", "inv", 0, 0)
        layout.place("u2", "inv", 6, 0)
        box = layout.bounding_box(library)
        assert box == (0, 0, 8, 4)
        assert layout.area(library) == 32

    def test_dict_roundtrip(self):
        layout = Layout("l")
        layout.place("u1", "inv", 0, 0)
        layout.route("n1", [(0, 1), (5, 1)])
        layout.add_pin("a", 0, 1, "in")
        assert Layout.from_dict(layout.to_dict()) == layout

    def test_copy_independent(self):
        layout = Layout("l")
        layout.place("u1", "inv", 0, 0)
        clone = layout.copy()
        clone.remove("u1")
        assert layout.cell_count == 1


class TestExtraction:
    def hand_layout(self, library) -> Layout:
        """An inverter wired to explicit pins."""
        layout = Layout("hand-inv")
        layout.place("u1", "inv", 2, 0)
        layout.add_pin("a", 0, 1, "in")
        layout.add_pin("y", 6, 1, "out")
        layout.route("a", [(0, 1), (2, 1)])      # pin -> port a
        layout.route("y", [(3, 1), (6, 1)])      # port y -> pin
        return layout

    def test_extract_recovers_inverter(self, library):
        netlist, stats = extract(self.hand_layout(library), library)
        assert netlist.device_count == 2
        assert netlist.inputs == ("a",)
        assert netlist.outputs == ("y",)
        assert truth_table(netlist) == {(0,): ("1",), (1,): ("0",)}

    def test_statistics(self, library):
        _, stats = extract(self.hand_layout(library), library)
        assert stats.cell_count == 1
        assert stats.transistor_count == 2
        assert stats.wire_count == 2
        assert stats.cells_by_type_map() == {"inv": 1}
        assert stats.wirelength == 5

    def test_short_detected(self, library):
        layout = self.hand_layout(library)
        # wire the output pin position into the input net: a short
        layout.route("a", [(0, 1), (6, 1)])
        with pytest.raises(ToolError, match="short"):
            extract(layout, library)

    def test_unconnected_ports_become_floating_nets(self, library):
        layout = Layout("floating")
        layout.place("u1", "inv", 0, 0)
        netlist, stats = extract(layout, library)
        assert netlist.device_count == 2
        assert stats.net_count >= 2

    def test_statistics_roundtrip(self, library):
        from repro.tools import ExtractionStatistics

        _, stats = extract(self.hand_layout(library), library)
        assert ExtractionStatistics.from_dict(stats.to_dict()) == stats


class TestVerifier:
    def test_identical_netlists_match(self, nand_spec, library):
        gates = tech_map(nand_spec)
        result = verify(gates, gates.copy("other-name"), library=library)
        assert result.matched
        assert bool(result)

    def test_net_renaming_tolerated(self, library):
        def build(mid_name):
            n = Netlist("chain", inputs=("a",), outputs=("y",))
            n.add_instance("u1", "inv", a="a", y=mid_name)
            n.add_instance("u2", "inv", a=mid_name, y="y")
            return n.flatten(library)

        assert verify(build("w"), build("zz")).matched

    def test_device_count_mismatch(self, library):
        a = Netlist("a", inputs=("x",), outputs=("y",))
        a.add_instance("u1", "inv", a="x", y="y")
        b = Netlist("b", inputs=("x",), outputs=("y",))
        b.add_instance("u1", "buf", a="x", y="y")
        result = verify(a, b, library=library)
        assert not result.matched
        assert any("device counts" in r for r in result.reasons)

    def test_port_mismatch(self, library):
        a = Netlist("a", inputs=("x",), outputs=("y",))
        a.add_instance("u1", "inv", a="x", y="y")
        b = Netlist("b", inputs=("w",), outputs=("y",))
        b.add_instance("u1", "inv", a="w", y="y")
        result = verify(a, b, library=library)
        assert not result.matched
        assert any("input ports" in r for r in result.reasons)

    def test_topology_mismatch_same_counts(self, library):
        """Same devices, different wiring: refinement must catch it."""
        a = Netlist("a", inputs=("p", "q"), outputs=("y",))
        a.add_instance("u1", "nand2", a="p", b="q", y="y")
        b = Netlist("b", inputs=("p", "q"), outputs=("y",))
        b.add_instance("u1", "nand2", a="p", b="p", y="y")  # q unused
        result = verify(a, b, library=library)
        assert not result.matched

    def test_hierarchical_needs_library(self, nand_spec):
        gates = tech_map(nand_spec)
        with pytest.raises(ValueError):
            verify(gates, gates)

    def test_verification_roundtrip(self, nand_spec, library):
        from repro.tools import Verification

        result = verify(tech_map(nand_spec), tech_map(nand_spec),
                        library=library)
        assert Verification.from_dict(result.to_dict()) == result


class TestPlacer:
    def test_requires_cell_instances(self, library):
        flat = Netlist("flat", inputs=("a",), outputs=("y",))
        flat.add("m", "nmos", gate="a", source="GND", drain="y")
        with pytest.raises(ToolError):
            place(flat, DEFAULT_SPEC, library)

    def test_placement_is_extractable_and_equivalent(self, mux_spec,
                                                     library):
        gates = tech_map(mux_spec)
        layout = place(gates, DEFAULT_SPEC, library)
        netlist, _ = extract(layout, library)
        assert verify(gates, netlist, library=library).matched

    def test_seeded_determinism(self, mux_spec, library):
        gates = tech_map(mux_spec)
        a = place(gates, {"seed": 42}, library)
        b = place(gates, {"seed": 42}, library)
        assert a.to_dict() == b.to_dict()

    def test_annealing_not_worse_than_initial(self, mux_spec, library):
        gates = tech_map(mux_spec)
        unoptimized = place(gates, {"moves": 0}, library)
        optimized = place(gates, {"moves": 600, "seed": 5}, library)
        assert optimized.wirelength() <= unoptimized.wirelength()

    def test_quality_metrics(self, mux_spec, library):
        layout = place(tech_map(mux_spec), DEFAULT_SPEC, library)
        quality = placement_quality(layout)
        assert quality["cells"] == layout.cell_count
        assert quality["wirelength"] > 0


class TestGenerators:
    def expected(self, spec):
        return {bits: tuple(str(v) for v in values)
                for bits, values in spec.truth_table()}

    def test_stdcell_implements_logic(self, mux_spec, library):
        layout = stdcell_layout(mux_spec, library)
        netlist, _ = extract(layout, library)
        assert truth_table(netlist) == self.expected(mux_spec)

    def test_pla_implements_logic(self, mux_spec, library):
        layout = pla_layout(mux_spec, library)
        netlist, _ = extract(layout, library)
        assert truth_table(netlist) == self.expected(mux_spec)

    def test_pla_and_stdcell_functionally_equivalent(self, library):
        spec = LogicSpec.from_equations(
            "f", "y0 = (a & b) | ~c", "y1 = a | (b & c)")
        std_net, _ = extract(stdcell_layout(spec, library), library)
        pla_net, _ = extract(pla_layout(spec, library), library)
        assert truth_table(std_net) == truth_table(pla_net)

    def test_multi_output_pla_shares_terms(self, library):
        spec = LogicSpec.from_equations("f", "y0 = a & b", "y1 = a & b")
        stats = pla_statistics(spec)
        assert stats["terms"] == 1  # shared minterm

    def test_constant_zero_output(self, library):
        spec = LogicSpec("const0", ("a",), (("y", ["const", 0]),))
        layout = pla_layout(spec, library)
        netlist, _ = extract(layout, library)
        table = truth_table(netlist)
        assert table[(0,)] == ("0",) and table[(1,)] == ("0",)

    def test_stdcell_constants_use_tie_cells(self, library):
        spec = LogicSpec("const1", ("a",), (("y", ["const", 1]),))
        layout = stdcell_layout(spec, library)
        cells = {p.cell for p in layout.placements()}
        assert "tiehi" in cells
        netlist, _ = extract(layout, library)
        table = truth_table(netlist)
        assert table[(0,)] == ("1",) and table[(1,)] == ("1",)

    def test_pla_bigger_for_dense_function(self, library):
        """XOR-heavy logic needs many minterms: PLA grows, stdcell wins."""
        parity = LogicSpec.from_equations(
            "parity", "y = (a & ~b & ~c) | (~a & b & ~c) | "
                      "(~a & ~b & c) | (a & b & c)")
        simple = LogicSpec.from_equations("simple", "y = a & b & c")
        assert pla_statistics(parity)["terms"] > \
            pla_statistics(simple)["terms"]
