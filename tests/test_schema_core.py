"""Unit tests for TaskSchema: rules, lookups, navigation, validation."""

import pytest

from repro.errors import (DependencyError, SubtypeError,
                          UnknownEntityError)
from repro.schema.builder import SchemaBuilder
from repro.schema.dependency import data_dep, functional
from repro.schema.entity import composed, data, tool
from repro.schema.schema import TaskSchema


def small_schema() -> TaskSchema:
    schema = TaskSchema("small")
    schema.add_entities([
        tool("Editor"), tool("Sim"),
        data("Doc"), data("EditedDoc", parent="Doc"),
        data("Result"),
    ])
    schema.add_dependency(functional("EditedDoc", "Editor"))
    schema.add_dependency(data_dep("EditedDoc", "Doc", optional=True,
                                   role="previous"))
    schema.add_dependency(functional("Result", "Sim"))
    schema.add_dependency(data_dep("Result", "Doc", role="doc"))
    schema.validate()
    return schema


class TestConstructionRules:
    def test_duplicate_entity_rejected(self):
        schema = TaskSchema()
        schema.add_entity(data("Doc"))
        with pytest.raises(SubtypeError):
            schema.add_entity(data("Doc"))

    def test_dependency_endpoints_must_exist(self):
        schema = TaskSchema()
        schema.add_entity(data("Doc"))
        with pytest.raises(UnknownEntityError):
            schema.add_dependency(data_dep("Doc", "Ghost"))

    def test_single_functional_dependency(self):
        schema = TaskSchema()
        schema.add_entities([tool("T1"), tool("T2"), data("D")])
        schema.add_dependency(functional("D", "T1"))
        with pytest.raises(DependencyError):
            schema.add_dependency(functional("D", "T2"))

    def test_functional_target_must_be_tool(self):
        schema = TaskSchema()
        schema.add_entities([data("A"), data("B")])
        with pytest.raises(DependencyError):
            schema.add_dependency(functional("A", "B"))

    def test_composed_cannot_have_functional(self):
        schema = TaskSchema()
        schema.add_entities([tool("T"), composed("C")])
        with pytest.raises(DependencyError):
            schema.add_dependency(functional("C", "T"))

    def test_duplicate_role_rejected(self):
        schema = TaskSchema()
        schema.add_entities([data("A"), data("B"), data("C")])
        schema.add_dependency(data_dep("A", "B", role="x"))
        with pytest.raises(DependencyError):
            schema.add_dependency(data_dep("A", "C", role="x"))


class TestSubtyping:
    def test_ancestors_and_descendants(self):
        schema = small_schema()
        assert schema.ancestors_of("EditedDoc") == ("Doc",)
        assert schema.descendants_of("Doc") == ("EditedDoc",)

    def test_is_subtype_reflexive(self):
        schema = small_schema()
        assert schema.is_subtype("Doc", "Doc")
        assert schema.is_subtype("EditedDoc", "Doc")
        assert not schema.is_subtype("Doc", "EditedDoc")

    def test_root_of(self):
        schema = small_schema()
        assert schema.root_of("EditedDoc") == "Doc"
        assert schema.root_of("Doc") == "Doc"

    def test_unknown_parent_fails_validation(self):
        schema = TaskSchema()
        schema.add_entity(data("Child", parent="Ghost"))
        with pytest.raises(SubtypeError):
            schema.validate()

    def test_kind_mismatch_fails_validation(self):
        schema = TaskSchema()
        schema.add_entity(data("D"))
        schema.add_entity(tool("T", parent="D"))
        with pytest.raises(SubtypeError):
            schema.validate()

    def test_subtype_cycle_detected(self):
        schema = TaskSchema()
        # construct a cycle by hand (builder would not allow forward refs)
        schema.add_entity(data("A", parent="B"))
        schema.add_entity(data("B", parent="A"))
        with pytest.raises(SubtypeError):
            schema.ancestors_of("A")


class TestConstructionMethods:
    def test_source_entity(self):
        schema = small_schema()
        assert schema.construction("Doc") is None
        # Doc is abstract (EditedDoc is constructible), not a pure source
        assert schema.is_abstract("Doc")
        assert not schema.is_source("Doc")

    def test_pure_source(self):
        schema = TaskSchema()
        schema.add_entity(data("Stim"))
        assert schema.is_source("Stim")

    def test_constructible(self):
        schema = small_schema()
        method = schema.construction("Result")
        assert method is not None
        assert method.tool == "Sim"
        assert [d.role for d in method.inputs] == ["doc"]

    def test_optional_inputs_split(self):
        schema = small_schema()
        method = schema.construction("EditedDoc")
        assert method.required_inputs == ()
        assert [d.role for d in method.optional_inputs] == ["previous"]

    def test_input_role_lookup(self):
        schema = small_schema()
        method = schema.construction("Result")
        assert method.input_role("doc").target == "Doc"
        with pytest.raises(DependencyError):
            method.input_role("ghost")

    def test_constructible_specializations(self):
        schema = small_schema()
        assert schema.constructible_specializations("Doc") == (
            "EditedDoc",)

    def test_composed_construction(self):
        schema = TaskSchema()
        schema.add_entities([data("A"), data("B"), composed("C")])
        schema.add_dependency(data_dep("C", "A", role="a"))
        schema.add_dependency(data_dep("C", "B", role="b"))
        method = schema.construction("C")
        assert method.is_composed
        assert method.tool is None
        assert len(method.inputs) == 2

    def test_inherited_data_dependency(self):
        schema = TaskSchema()
        schema.add_entities([tool("T"), data("Base"), data("Spec"),
                             data("Derived", parent="Base")])
        schema.add_dependency(data_dep("Base", "Spec", role="spec"))
        schema.add_dependency(functional("Derived", "T"))
        deps = schema.effective_dependencies("Derived")
        roles = {d.role for d in deps if d.is_data}
        assert "spec" in roles

    def test_subtype_overrides_role(self):
        schema = TaskSchema()
        schema.add_entities([data("Base"), data("SpecA"), data("SpecB"),
                             data("Derived", parent="Base")])
        schema.add_dependency(data_dep("Base", "SpecA", role="spec"))
        schema.add_dependency(data_dep("Derived", "SpecB", role="spec"))
        deps = schema.data_dependencies("Derived")
        assert [d.target for d in deps if d.role == "spec"] == ["SpecB"]


class TestNavigation:
    def test_consumers_accept_subtypes(self):
        schema = small_schema()
        # Result needs a Doc; an EditedDoc satisfies it
        roles = [d.role for d in schema.consumers_of("EditedDoc")]
        assert "doc" in roles

    def test_producible_from(self):
        schema = small_schema()
        assert "Result" in schema.producible_from("Doc")
        assert "EditedDoc" in schema.producible_from("Doc")

    def test_outputs_of_tool(self):
        schema = small_schema()
        assert schema.outputs_of_tool("Sim") == ("Result",)
        with pytest.raises(DependencyError):
            schema.outputs_of_tool("Doc")

    def test_editing_entities(self):
        schema = small_schema()
        assert schema.editing_entities() == ("EditedDoc",)

    def test_tools_and_data_listings(self):
        schema = small_schema()
        assert {e.name for e in schema.tools()} == {"Editor", "Sim"}
        assert "Doc" in {e.name for e in schema.data_entities()}


class TestAcyclicity:
    def test_mandatory_cycle_rejected(self):
        schema = TaskSchema()
        schema.add_entities([data("A"), data("B")])
        schema.add_dependency(data_dep("A", "B"))
        schema.add_dependency(data_dep("B", "A"))
        with pytest.raises(DependencyError):
            schema.validate()

    def test_optional_breaks_cycle(self):
        schema = TaskSchema()
        schema.add_entities([data("A"), data("B")])
        schema.add_dependency(data_dep("A", "B"))
        schema.add_dependency(data_dep("B", "A", optional=True))
        schema.validate()  # must not raise

    def test_self_loop_requires_optional(self):
        schema = TaskSchema()
        schema.add_entity(data("A"))
        schema.add_dependency(data_dep("A", "A", role="previous"))
        with pytest.raises(DependencyError):
            schema.validate()


class TestBuilder:
    def test_produced_by_wires_everything(self):
        schema = (SchemaBuilder("b")
                  .tool("T").data("In").data("Out")
                  .produced_by("Out", "T", inputs=[("src", "In")])
                  .build())
        method = schema.construction("Out")
        assert method.tool == "T"
        assert method.inputs[0].role == "src"

    def test_dict_input_spec(self):
        schema = (SchemaBuilder("b")
                  .tool("T").data("Out")
                  .produced_by("Out", "T", inputs=[
                      {"type": "Out", "role": "previous",
                       "optional": True}])
                  .build())
        method = schema.construction("Out")
        assert method.optional_inputs[0].role == "previous"

    def test_composed_builder(self):
        schema = (SchemaBuilder("b")
                  .data("A").data("B")
                  .composed("C", of=[("a", "A"), ("b", "B")])
                  .build())
        assert schema.entity("C").composed
        assert len(schema.construction("C").inputs) == 2

    def test_invalid_schema_raises_at_build(self):
        builder = SchemaBuilder("b").data("A").data("B")
        builder.needs("A", "B")
        builder.needs("B", "A")
        with pytest.raises(DependencyError):
            builder.build()

    def test_build_without_validation(self):
        builder = SchemaBuilder("b").data("A").data("B")
        builder.needs("A", "B")
        builder.needs("B", "A")
        schema = builder.build(validate=False)
        assert len(schema) == 2
