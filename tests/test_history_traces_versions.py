"""Tests for flow traces, version-tree projection and consistency."""

import pytest

from repro.errors import ConsistencyError
from repro.history.consistency import (consistency_report, is_stale,
                                       is_up_to_date, newest_version,
                                       refresh_plan, stale_inputs,
                                       successor_versions)
from repro.history.database import HistoryDatabase
from repro.history.instance import DerivationRecord
from repro.history.trace import backward_trace, forward_trace
from repro.schema import standard as S


@pytest.fixture
def versioned(schema, clock):
    """The Fig. 11 scenario: a branching edit history c1..c5.

    c1 -> c2 -> c4 and c1 -> c3 -> c5 using two editor sessions (e1, e2),
    mirroring the paper's version tree/flow trace figure.
    """
    db = HistoryDatabase(schema, clock=clock)
    e1 = db.install(S.CIRCUIT_EDITOR, {"session": 1}, name="Cct E. e1")
    e2 = db.install(S.CIRCUIT_EDITOR, {"session": 2}, name="Cct E. e2")
    c1 = db.install(S.EDITED_NETLIST, {"v": 1}, name="c1")

    def edit(editor, previous, name, version):
        return db.record(
            S.EDITED_NETLIST, {"v": version},
            DerivationRecord.make(editor.instance_id,
                                  {"previous": previous.instance_id}),
            name=name)

    c2 = edit(e1, c1, "c2", 2)
    c3 = edit(e2, c1, "c3", 3)
    c4 = edit(e1, c2, "c4", 4)
    c5 = edit(e2, c3, "c5", 5)
    return {"db": db, "e1": e1, "e2": e2,
            "c1": c1, "c2": c2, "c3": c3, "c4": c4, "c5": c5}


class TestFlowTrace:
    def test_trace_shows_tools(self, versioned):
        """Fig. 11b: the flow trace keeps the editing tool per version."""
        trace = backward_trace(versioned["db"],
                               versioned["c4"].instance_id)
        assert versioned["e1"].instance_id in trace
        rendered = trace.render()
        assert "f:tool" in rendered

    def test_roots_and_sources(self, versioned):
        trace = backward_trace(versioned["db"],
                               versioned["c4"].instance_id)
        assert trace.roots() == (versioned["c4"].instance_id,)
        assert versioned["c1"].instance_id in trace.sources()

    def test_version_tree_projection(self, versioned):
        """Fig. 11a from Fig. 11b: parents kept, tools dropped."""
        trace = forward_trace(versioned["db"],
                              versioned["c1"].instance_id)
        nodes = {n.instance_id: n
                 for n in trace.version_tree(S.NETLIST)}
        assert nodes[versioned["c2"].instance_id].parent_id == \
            versioned["c1"].instance_id
        assert nodes[versioned["c5"].instance_id].parent_id == \
            versioned["c3"].instance_id
        assert nodes[versioned["c1"].instance_id].parent_id is None
        # the projection still knows what it lost
        assert nodes[versioned["c4"].instance_id].tool_id == \
            versioned["e1"].instance_id

    def test_to_task_graph_is_executable_shape(self, versioned):
        trace = backward_trace(versioned["db"],
                               versioned["c4"].instance_id)
        graph = trace.to_task_graph("recall")
        graph.validate()
        bound = {n.bindings[0] for n in graph.nodes()}
        assert versioned["c2"].instance_id in bound
        assert len(graph.invocations()) == 2  # two edit steps


class TestSuccessorVersions:
    def test_successors_follow_edits_only(self, versioned):
        successors = successor_versions(versioned["db"],
                                        versioned["c1"].instance_id)
        ids = {s.instance_id for s in successors}
        assert ids == {versioned[k].instance_id
                       for k in ("c2", "c3", "c4", "c5")}

    def test_leaf_has_no_successors(self, versioned):
        assert successor_versions(versioned["db"],
                                  versioned["c4"].instance_id) == ()

    def test_newest_version_picks_latest(self, versioned):
        newest = newest_version(versioned["db"],
                                versioned["c1"].instance_id)
        assert newest.instance_id == versioned["c5"].instance_id

    def test_newest_of_current_is_itself(self, versioned):
        newest = newest_version(versioned["db"],
                                versioned["c5"].instance_id)
        assert newest.instance_id == versioned["c5"].instance_id


class TestConsistency:
    @pytest.fixture
    def sim_world(self, versioned):
        """A Performance derived from c2 (which is superseded by c4)."""
        db = versioned["db"]
        sim = db.install(S.SIMULATOR, {}, name="cosmos")
        models = db.install(S.DEVICE_MODELS, {}, name="tech")
        stim = db.install(S.STIMULI, [[0]], name="s")
        circuit = db.record(
            S.CIRCUIT, {"c": 1},
            DerivationRecord.make(None, {
                "models": models.instance_id,
                "netlist": versioned["c2"].instance_id}))
        perf = db.record(
            S.PERFORMANCE, {"d": 1},
            DerivationRecord.make(sim.instance_id, {
                "circuit": circuit.instance_id,
                "stimuli": stim.instance_id}))
        versioned.update(sim=sim, models=models, stim=stim,
                         circuit=circuit, perf=perf)
        return versioned

    def test_stale_detection(self, sim_world):
        db = sim_world["db"]
        assert is_stale(db, sim_world["perf"].instance_id)
        reasons = stale_inputs(db, sim_world["perf"].instance_id)
        used = {r.used for r in reasons}
        assert sim_world["c2"].instance_id in used
        # c2's newest successor is c4
        by_used = {r.used: r.newest for r in reasons}
        assert by_used[sim_world["c2"].instance_id] == \
            sim_world["c4"].instance_id

    def test_fresh_instance_up_to_date(self, sim_world):
        db = sim_world["db"]
        assert is_up_to_date(db, sim_world["c5"].instance_id)

    def test_refresh_plan_rebinds_and_clears(self, sim_world):
        db = sim_world["db"]
        plan = refresh_plan(db, sim_world["perf"].instance_id)
        bound = {n.bindings[0] for n in plan.nodes() if n.bindings}
        assert sim_world["c4"].instance_id in bound
        assert sim_world["c2"].instance_id not in bound
        # downstream nodes cleared for recomputation
        unbound_types = {n.entity_type for n in plan.nodes()
                         if not n.bindings}
        assert {S.CIRCUIT, S.PERFORMANCE} <= unbound_types

    def test_refresh_plan_on_current_raises(self, sim_world):
        db = sim_world["db"]
        with pytest.raises(ConsistencyError):
            refresh_plan(db, sim_world["c5"].instance_id)

    def test_consistency_report(self, sim_world):
        db = sim_world["db"]
        report = consistency_report(db, S.PERFORMANCE)
        assert sim_world["perf"].instance_id in report
        # editor-made versions c2/c3 are themselves stale wrt c4/c5? No:
        # a version is derived FROM an older one; its inputs (c1) have
        # newer successors, so intermediate versions do appear. Verify
        # the report covers only derived instances.
        full_report = consistency_report(db)
        assert sim_world["c1"].instance_id not in full_report
