"""Tests for the track router."""

import pytest

from repro.errors import ToolError
from repro.schema import standard as S
from repro.tools import (check_design_rules, extract, route_layout,
                         standard_library, stdcell_layout, truth_table,
                         verify)
from repro.tools.layout import Layout
from repro.tools.logic import LogicSpec


@pytest.fixture
def placed(library):
    spec = LogicSpec.from_equations("mux", "y = (a & ~s) | (b & s)")
    return stdcell_layout(spec, library)


class TestRouteLayout:
    def test_preserves_connectivity(self, placed, library):
        routed, summary = route_layout(placed, library)
        ideal_netlist, _ = extract(placed, library)
        routed_netlist, _ = extract(routed, library)
        assert verify(ideal_netlist, routed_netlist,
                      library=library).matched
        assert truth_table(routed_netlist) == \
            truth_table(ideal_netlist)

    def test_routed_layout_is_drc_clean(self, placed, library):
        routed, _ = route_layout(placed, library)
        report = check_design_rules(routed, library)
        assert report.clean, report.render()

    def test_wirelength_is_geometric(self, placed, library):
        routed, summary = route_layout(placed, library)
        # tracks + stubs are strictly longer than HPWL point sets
        assert summary.wirelength > placed.wirelength()
        assert summary.wirelength == routed.wirelength()
        assert summary.tracks <= summary.nets

    def test_channel_above_cells(self, placed, library):
        _, _, _, cells_top = placed.bounding_box(library)
        routed, _ = route_layout(placed, library)
        track_ys = [p[1] for wire in routed.wires()
                    for p in wire.points if p[1] > cells_top]
        assert track_ys  # tracks exist and sit above the cell area

    def test_single_terminal_nets_kept(self, library):
        layout = Layout("single")
        layout.place("u1", "inv", 0, 0)
        layout.route("lonely", [(0, 1)])
        routed, summary = route_layout(layout, library)
        assert any(w.net == "lonely" for w in routed.wires())
        assert summary.tracks == 0

    def test_input_short_rejected(self, library):
        layout = Layout("short")
        layout.route("a", [(0, 0), (1, 0)])
        layout.route("b", [(1, 0), (2, 0)])  # shares (1,0) with a
        with pytest.raises(ToolError, match="share terminal"):
            route_layout(layout, library)

    def test_track_pitch_spacing(self, placed, library):
        tight, _ = route_layout(placed, library, track_pitch=1)
        loose, _ = route_layout(placed, library, track_pitch=4)
        assert loose.wirelength() > tight.wirelength()


class TestRouterThroughFlows:
    def test_router_as_schema_tool(self, stocked_env):
        """RoutedLayout = Router(layout) through the framework."""
        env = stocked_env
        layout = env.install_data(
            S.STD_CELL_LAYOUT,
            stdcell_layout(LogicSpec.from_equations("f", "y = a | b"),
                           standard_library()),
            name="to-route")
        flow, goal = env.goal_flow(S.ROUTED_LAYOUT, "route")
        flow.expand(goal)
        input_layout = next(n for n in flow.nodes_of_type(S.LAYOUT)
                            if n.node_id != goal.node_id)
        flow.bind(input_layout, layout.instance_id)
        flow.bind(flow.sole_node_of_type(S.ROUTER),
                  env.tools[S.ROUTER].instance_id)
        env.run(flow)
        routed = env.db.data(goal.produced[0])
        report = check_design_rules(routed, standard_library())
        assert report.clean
        # routed layout is a Layout subtype: extractable downstream
        netlist, _ = extract(routed, standard_library())
        assert netlist.device_count > 0
