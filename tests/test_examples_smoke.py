"""Smoke tests: every shipped example must run to completion.

Examples are deliverables; these tests execute each one in-process (via
``runpy``) so a refactor that breaks an example fails the suite, not the
user.  Output is captured and spot-checked for each example's headline
artifact.
"""

import pathlib
import runpy
import sys

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    saved_argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "worst delay" in out
    assert "flow trace:" in out


def test_fulladder_design(capsys):
    out = run_example("fulladder_design.py", capsys)
    assert "LVS physical-vs-transistor view: MATCH" in out
    assert "stale now? True" in out
    assert "automatic retrace created" in out


def test_stdcell_to_pla(capsys):
    out = run_example("stdcell_to_pla.py", capsys)
    assert "functionally equivalent: True" in out
    assert "PLALayout#" in out and "StdCellLayout#" in out


def test_parallel_branches(capsys):
    out = run_example("parallel_branches.py", capsys)
    assert "speedup:" in out
    # 4 branches on 4 machines: expect meaningfully better than serial
    speedup = float(out.split("speedup:")[1].split("x")[0])
    assert speedup > 2.0


def test_view_synthesis(capsys):
    out = run_example("view_synthesis.py", capsys)
    assert "views in correspondence: True" in out
    assert "Fig. 8a" in out and "Fig. 8b" in out


def test_hercules_session(capsys):
    out = run_example("hercules_session.py", capsys)
    assert "placed Performance[n0]" in out
    assert "revealed:" in out


def test_chip_project(capsys):
    out = run_example("chip_project.py", capsys)
    assert "4/4 goals achieved" in out
    assert "STALE: chip/alu" in out


def test_design_space_exploration(capsys):
    out = run_example("design_space_exploration.py", capsys)
    assert "6 performances" in out
    assert "fast" in out and "slow" in out


def test_sequential_counter(capsys):
    out = run_example("sequential_counter.py", capsys)
    assert "01 -> 10 -> 11 -> 00" in out


def test_tutorial_snippets_execute(capsys):
    """Every python block in TUTORIAL.md must run, in order."""
    import re

    tutorial = EXAMPLES.parent / "TUTORIAL.md"
    blocks = re.findall(r"```python\n(.*?)```",
                        tutorial.read_text(encoding="utf-8"), re.S)
    assert len(blocks) >= 8
    script = "\n".join(blocks)
    exec(compile(script, str(tutorial), "exec"), {})
    out = capsys.readouterr().out
    assert "flow trace:" in out
