"""Tests for the observability subsystem (events, sinks, metrics)."""

import threading
import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ObservabilityError, ToolError
from repro.execution import ScheduledFlowExecutor, encapsulation
from repro.obs import (CACHE_HIT, CACHE_MISS, COMPOSITION_RUN,
                       EVENT_TYPES, EXECUTION_FAILED, FLOW_FINISHED,
                       FLOW_STARTED, INSTANCE_CREATED, LANE_ASSIGNED,
                       NODE_READY, SCHEMA_VERSION, TOOL_FINISHED,
                       TOOL_INVOKED, Event, EventBus, JSONLSink,
                       MetricsRegistry, NullSink, RingBufferSink,
                       escape_label_value, read_events, replay_into,
                       sanitize_metric_name, timer_stats_of)
from repro.obs.metrics import _percentile
from repro.schema import standard as S
from tests.conftest import build_performance_flow


@pytest.fixture
def ring(stocked_env) -> RingBufferSink:
    sink = RingBufferSink()
    stocked_env.bus.subscribe(sink)
    return sink


def simulate_flow(env):
    return build_performance_flow(
        env,
        netlist_id=env.netlist.instance_id,
        models_id=env.models.instance_id,
        stimuli_id=env.stimuli.instance_id,
        simulator_id=env.tools[S.SIMULATOR].instance_id)


class TestEventBus:
    def test_emit_without_sinks_is_noop(self):
        bus = EventBus()
        assert not bus.enabled
        assert bus.emit(FLOW_STARTED, flow="f") is None

    def test_emit_dispatches_in_sequence_order(self):
        bus = EventBus()
        sink = RingBufferSink()
        bus.subscribe(sink)
        bus.emit(FLOW_STARTED, flow="f")
        bus.emit(FLOW_FINISHED, flow="f", duration=1.5)
        first, second = sink.events()
        assert (first.seq, second.seq) == (1, 2)
        assert first.event_type == FLOW_STARTED
        assert second.duration == 1.5
        assert second.schema_version == SCHEMA_VERSION

    def test_unknown_event_type_rejected(self):
        bus = EventBus()
        bus.subscribe(NullSink())
        with pytest.raises(ObservabilityError):
            bus.emit("made_up_event")

    def test_sink_without_handle_rejected(self):
        with pytest.raises(ObservabilityError):
            EventBus().subscribe(object())

    def test_unsubscribe_restores_fast_path(self):
        bus = EventBus()
        sink = RingBufferSink()
        bus.subscribe(sink)
        bus.unsubscribe(sink)
        assert not bus.enabled
        assert bus.emit(FLOW_STARTED) is None

    def test_ring_buffer_evicts_oldest(self):
        bus = EventBus()
        sink = RingBufferSink(capacity=3)
        bus.subscribe(sink)
        for _ in range(5):
            bus.emit(NODE_READY, node="n")
        assert [e.seq for e in sink.events()] == [3, 4, 5]


class TestEventOrdering:
    def test_multi_node_flow_event_sequence(self, stocked_env, ring):
        flow, goal = simulate_flow(stocked_env)
        stocked_env.run(flow)
        kinds = [e.event_type for e in ring.events()]
        # one compose invocation (Circuit) then one tool invocation
        # (Simulator), bracketed by flow start/finish
        assert kinds == [
            FLOW_STARTED,
            NODE_READY, TOOL_INVOKED, INSTANCE_CREATED, COMPOSITION_RUN,
            NODE_READY, TOOL_INVOKED, INSTANCE_CREATED, TOOL_FINISHED,
            FLOW_FINISHED,
        ]
        seqs = [e.seq for e in ring.events()]
        assert seqs == sorted(seqs)
        assert all(e.flow == "simulate" for e in ring.events())

    def test_events_join_back_onto_history(self, stocked_env, ring):
        flow, goal = simulate_flow(stocked_env)
        stocked_env.run(flow)
        created = ring.events(INSTANCE_CREATED)
        for event in created:
            instance_id = event.value("instance_id")
            assert instance_id in stocked_env.db
            instance = stocked_env.db.get(instance_id)
            assert instance.derivation.invocation == event.invocation_id
        finished = ring.events(TOOL_FINISHED)[0]
        assert finished.tool_type == S.SIMULATOR
        assert finished.duration > 0
        assert finished.value("created") == [
            created[-1].value("instance_id")]

    def test_installs_emit_instance_created(self, env):
        sink = RingBufferSink()
        env.bus.subscribe(sink)
        env.install_data(S.STIMULI, {"vectors": []}, name="s")
        event = sink.events(INSTANCE_CREATED)[-1]
        assert event.value("installed") is True
        assert event.value("entity_type") == S.STIMULI

    def test_failure_emits_execution_failed(self, stocked_env, ring):
        env = stocked_env

        def explode(ctx, inputs):
            raise ToolError("simulator crashed")

        env.registry.register(S.SIMULATOR,
                              encapsulation("boom", explode))
        flow, goal = simulate_flow(env)
        with pytest.raises(ToolError):
            env.run(flow)
        failed = ring.events(EXECUTION_FAILED)
        assert len(failed) == 1
        assert "simulator crashed" in failed[0].value("error")
        assert not ring.events(FLOW_FINISHED)

    def test_parallel_lanes_emit_lane_events(self, stocked_env):
        env = stocked_env
        sink = RingBufferSink()
        env.bus.subscribe(sink)
        # two disjoint single-node branches: two independent circuits
        flow = env.new_flow("par")
        n1 = flow.place(S.CIRCUIT)
        n2 = flow.place(S.CIRCUIT)
        for node in (n1, n2):
            flow.expand(node)
        for node in flow.nodes():
            if node.entity_type == S.NETLIST:
                flow.bind(node, env.netlist.instance_id)
            elif node.entity_type == S.DEVICE_MODELS:
                flow.bind(node, env.models.instance_id)
        report = env.parallel_executor(machines=2).execute(flow)
        assert len(report.results) == 2
        lanes = sink.events(LANE_ASSIGNED)
        assert len(lanes) == 2
        # a fast lane may release its machine before the other acquires,
        # so distinctness isn't guaranteed — pool membership is
        assert {lane.machine for lane in lanes} <= \
            {"machine0", "machine1"}
        assert all(lane.value("branch") for lane in lanes)
        summary = [e for e in sink.events(FLOW_FINISHED)
                   if e.value("lanes") is not None]
        assert summary and summary[-1].value("lanes") == 2
        assert summary[-1].value("serial_time") == \
            pytest.approx(report.serial_time)


class TestMetricsRegistry:
    def test_aggregation_across_repeated_invocations(self, stocked_env):
        metrics = MetricsRegistry()
        stocked_env.bus.subscribe(metrics)
        flow, goal = simulate_flow(stocked_env)
        stocked_env.run(flow)
        stocked_env.run(flow, force=True)
        stocked_env.run(flow, force=True)
        assert metrics.counter(f"tool.{S.SIMULATOR}.invocations") == 3
        assert metrics.counter("tool.@compose.invocations") == 3
        assert metrics.counter("flows.started") == 3
        assert metrics.counter("flows.finished") == 3
        stats = metrics.timer(f"tool.{S.SIMULATOR}")
        assert stats.count == 3
        assert stats.total == pytest.approx(stats.mean * 3)
        assert stats.p50 <= stats.p95 <= stats.max
        assert metrics.counter("failures") == 0

    def test_counters_and_gauges_api(self):
        metrics = MetricsRegistry()
        metrics.inc("a")
        metrics.inc("a", 4)
        metrics.set_gauge("queue_depth", 7.0)
        assert metrics.counter("a") == 5
        assert metrics.counter("missing") == 0
        assert metrics.gauge("queue_depth") == 7.0
        assert metrics.timer("missing").count == 0

    def test_render_summarizes_failures_and_tools(self):
        metrics = MetricsRegistry()
        bus = EventBus()
        bus.subscribe(metrics)
        bus.emit(FLOW_STARTED, flow="f")
        bus.emit(TOOL_FINISHED, flow="f", tool_type="Simulator",
                 duration=0.25, payload={"runs": 1})
        bus.emit(EXECUTION_FAILED, flow="f", payload={"error": "x"})
        text = metrics.render()
        assert "1 started" in text
        assert "1 failed" in text
        assert "Simulator" in text
        assert "failures by flow: f=1" in text

    def test_snapshot_shape(self):
        metrics = MetricsRegistry()
        metrics.inc("c")
        metrics.observe("t", 0.5)
        snap = metrics.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["timers"]["t"]["count"] == 1


class TestJsonlRoundTrip:
    def test_write_replay_identical_sequence(self, stocked_env, ring,
                                             tmp_path):
        log = tmp_path / "events.jsonl"
        jsonl = JSONLSink(log)
        stocked_env.bus.subscribe(jsonl)
        flow, goal = simulate_flow(stocked_env)
        stocked_env.run(flow)
        jsonl.close()
        replayed = read_events(log)
        assert replayed == ring.events()

    def test_replay_into_metrics_matches_live(self, stocked_env, ring,
                                              tmp_path):
        log = tmp_path / "events.jsonl"
        live = MetricsRegistry()
        with JSONLSink(log) as jsonl:
            stocked_env.bus.subscribe(jsonl)
            stocked_env.bus.subscribe(live)
            flow, goal = simulate_flow(stocked_env)
            stocked_env.run(flow)
        offline = MetricsRegistry()
        count = replay_into(read_events(log), offline)
        assert count == len(ring.events())
        assert offline.snapshot() == live.snapshot()

    def test_unsupported_schema_version_rejected(self, tmp_path):
        log = tmp_path / "bad.jsonl"
        log.write_text('{"schema_version": "obs2.v9", "seq": 1, '
                       '"event_type": "flow_started", "timestamp": 0}\n')
        with pytest.raises(ObservabilityError):
            read_events(log)

    def test_corrupt_line_rejected(self, tmp_path):
        log = tmp_path / "bad.jsonl"
        log.write_text("not json\n")
        with pytest.raises(ObservabilityError):
            read_events(log)

    def test_missing_log_rejected(self, tmp_path):
        with pytest.raises(ObservabilityError):
            read_events(tmp_path / "absent.jsonl")


class TestSchedulerFedFromEvents:
    def test_duration_model_learns_from_bus(self):
        from repro.execution import DurationModel

        model = DurationModel(default=9.0)
        bus = EventBus()
        bus.subscribe(model)
        bus.emit(TOOL_FINISHED, tool_type="Simulator", duration=2.0)
        bus.emit(TOOL_FINISHED, tool_type="Simulator", duration=4.0)
        bus.emit(COMPOSITION_RUN, tool_type="@compose", duration=1.0)
        assert model.estimate("Simulator") == pytest.approx(3.0)
        assert model.estimate(None) == pytest.approx(1.0)
        assert model.estimate("Extractor") == 9.0

    def test_scheduled_executor_feeds_model_via_events(self, stocked_env):
        env = stocked_env
        flow, goal = simulate_flow(env)
        executor = ScheduledFlowExecutor(env.db, env.registry,
                                         user=env.user, machines=2)
        report = executor.execute(flow)
        assert len(report.results) == 2
        assert S.SIMULATOR in executor.durations.observed_types()
        assert "@compose" in executor.durations.observed_types()
        assert report.wall_time > 0


class TestOverhead:
    def test_no_sink_emission_is_cheap(self):
        bus = EventBus()
        iterations = 20_000
        started = time.perf_counter()
        for _ in range(iterations):
            bus.emit(NODE_READY, flow="f", node="n")
        elapsed = time.perf_counter() - started
        # generous bound: a disabled bus must stay far under 50us/emit
        assert elapsed < iterations * 50e-6

    def test_uninstrumented_executor_uses_noop_bus(self, stocked_env):
        executor = stocked_env.executor()
        assert executor.bus is stocked_env.bus
        assert not executor.bus.enabled
        flow, goal = simulate_flow(stocked_env)
        report = executor.execute(flow)
        assert report.created  # execution unaffected


class TestEventValueHelpers:
    def test_payload_lookup_and_render(self):
        event = Event(seq=1, event_type=FLOW_STARTED, timestamp=0.0,
                      flow="f", payload=(("a", 1),))
        assert event.value("a") == 1
        assert event.value("missing", "dflt") == "dflt"
        assert "flow=f" in event.render()
        assert event.to_dict()["payload"] == {"a": 1}


class TestMetricsHandleCoverage:
    """handle() must aggregate — or deliberately ignore — every event
    type the bus can emit, and tolerate types it has never seen."""

    @staticmethod
    def _event(kind, **overrides):
        payload = tuple(sorted(overrides.pop("payload", {}).items()))
        return Event(seq=1, event_type=kind, timestamp=0.0,
                     payload=payload, **overrides)

    def test_every_known_event_type_is_accepted(self):
        metrics = MetricsRegistry()
        for kind in sorted(EVENT_TYPES):
            metrics.handle(self._event(
                kind, flow="f", tool_type="Simulator", duration=0.1,
                payload={"runs": 2, "queue_wait": 0.01,
                         "entity_type": "Netlist", "bytes": 10,
                         "saved": 0.05}))
        # the aggregating kinds all left their mark
        assert metrics.counter("tool.Simulator.invocations") == 2
        assert metrics.counter("tool.Simulator.runs") == 4
        assert metrics.counter("flows.started") == 1
        assert metrics.counter("flows.finished") == 1
        assert metrics.counter("instances") == 1
        assert metrics.counter("instances.Netlist") == 1
        assert metrics.counter("failures.f") == 1
        assert metrics.counter("cache.hits.Simulator") == 1
        assert metrics.counter("cache.misses.Simulator") == 1
        assert metrics.counter("cache.bytes_saved") == 10
        assert metrics.timer("queue_wait").count == 2
        assert metrics.timer("flow.f").count == 1

    def test_cache_events_aggregate_hits_and_savings(self):
        metrics = MetricsRegistry()
        metrics.handle(self._event(CACHE_HIT, tool_type="Simulator",
                                   payload={"bytes": 64, "saved": 0.5}))
        metrics.handle(self._event(CACHE_MISS, tool_type="Simulator"))
        assert metrics.counter("cache.hits") == 1
        assert metrics.counter("cache.hits.Simulator") == 1
        assert metrics.counter("cache.misses") == 1
        assert metrics.counter("cache.bytes_saved") == 64
        saved = metrics.timer("cache.time_saved")
        assert saved.total == pytest.approx(0.5)

    def test_tool_less_invocations_fall_back_to_compose(self):
        metrics = MetricsRegistry()
        metrics.handle(self._event(TOOL_FINISHED, duration=0.2))
        metrics.handle(self._event(COMPOSITION_RUN, duration=0.1))
        assert metrics.counter("tool.@compose.invocations") == 2

    def test_pure_marker_events_change_nothing(self):
        metrics = MetricsRegistry()
        metrics.handle(self._event(NODE_READY, node="n0"))
        metrics.handle(self._event(TOOL_INVOKED, tool_type="Sim"))
        metrics.handle(self._event(LANE_ASSIGNED, machine="m0"))
        assert metrics.snapshot() == {"counters": {}, "gauges": {},
                                      "timers": {}}

    def test_unknown_event_type_is_tolerated(self):
        metrics = MetricsRegistry()
        metrics.handle(self._event("event_from_the_future",
                                   duration=1.0))
        assert metrics.snapshot() == {"counters": {}, "gauges": {},
                                      "timers": {}}


class TestPercentile:
    def test_single_sample_is_every_percentile(self):
        stats = timer_stats_of([0.25])
        assert stats.p50 == stats.p95 == stats.max == 0.25
        assert stats.mean == 0.25

    def test_two_samples_interpolate(self):
        assert _percentile([1.0, 2.0], 0.5) == pytest.approx(1.5)
        assert _percentile([1.0, 2.0], 0.95) == pytest.approx(1.95)
        assert _percentile([1.0, 2.0], 0.0) == 1.0
        assert _percentile([1.0, 2.0], 1.0) == 2.0

    def test_empty_sample(self):
        assert _percentile([], 0.5) == 0.0
        assert timer_stats_of([]).count == 0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1,
                    max_size=50),
           st.floats(min_value=0.0, max_value=1.0))
    def test_percentile_bounded_by_sample(self, values, fraction):
        ordered = sorted(values)
        result = _percentile(ordered, fraction)
        assert ordered[0] <= result <= ordered[-1]

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1,
                    max_size=50))
    def test_percentiles_are_monotone(self, values):
        ordered = sorted(values)
        quantiles = [_percentile(ordered, f)
                     for f in (0.0, 0.25, 0.5, 0.95, 1.0)]
        for lower, upper in zip(quantiles, quantiles[1:]):
            # monotone up to float rounding of the interpolation
            assert lower <= upper or lower == pytest.approx(upper)
        assert quantiles[0] == ordered[0]
        assert quantiles[-1] == ordered[-1]


class TestMetricsThreadSafety:
    def test_concurrent_writers_lose_nothing(self):
        metrics = MetricsRegistry()
        increments = 2_000

        def worker(name):
            for _ in range(increments):
                metrics.inc("shared")
                metrics.observe(f"timer.{name}", 0.001)
                metrics.observe("shared.timer", 0.002)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.counter("shared") == 4 * increments
        assert metrics.timer("shared.timer").count == 4 * increments

    def test_snapshot_while_writing(self):
        metrics = MetricsRegistry()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                metrics.inc("c")
                metrics.observe("t", 0.001)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                snap = metrics.snapshot()
                timers = snap["timers"]
                if "t" in timers:
                    assert timers["t"]["count"] >= 1
        finally:
            stop.set()
            thread.join()


class TestPrometheusRendering:
    def test_registry_families_and_samples(self):
        metrics = MetricsRegistry()
        metrics.inc("flows.started", 3)
        metrics.set_gauge("queue_depth", 2.0)
        metrics.observe("tool.Simulator", 0.25)
        metrics.observe("tool.Simulator", 0.75)
        text = metrics.render_prometheus()
        assert ("# TYPE repro_flows_started_total counter\n"
                "repro_flows_started_total 3") in text
        assert ("# TYPE repro_queue_depth gauge\n"
                "repro_queue_depth 2.0") in text
        assert "# TYPE repro_tool_Simulator_seconds summary" in text
        assert 'repro_tool_Simulator_seconds{quantile="0.5"} 0.5' \
            in text
        assert "repro_tool_Simulator_seconds_count 2" in text
        assert "repro_tool_Simulator_seconds_sum 1.0" in text
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_name_sanitization_and_label_escaping(self):
        assert sanitize_metric_name("tool.Sim-3/x") == "tool_Sim_3_x"
        assert sanitize_metric_name("0war") == "_0war"
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
        metrics = MetricsRegistry()
        metrics.inc("tool.Weird-Name.runs")
        text = metrics.render_prometheus()
        assert "repro_tool_Weird_Name_runs_total 1" in text
