"""Extra coverage for schema diff rendering and entity changes."""

from repro.schema.diff import diff_schemas
from repro.schema.entity import EntityKind, data, tool
from repro.schema.schema import TaskSchema


def test_changed_entity_descriptions():
    a = TaskSchema("a")
    a.add_entity(data("Netlist", description="old words"))
    b = TaskSchema("b")
    b.add_entity(data("Netlist", description="new words"))
    diff = diff_schemas(a, b)
    assert len(diff.changed_entities) == 1
    assert "description changed" in diff.changed_entities[0].describe()
    assert not diff.is_empty


def test_kind_change_described():
    a = TaskSchema("a")
    a.add_entity(data("Thing"))
    b = TaskSchema("b")
    b.add_entity(tool("Thing"))
    diff = diff_schemas(a, b)
    description = diff.changed_entities[0].describe()
    assert str(EntityKind.DATA) in description
    assert str(EntityKind.TOOL) in description


def test_render_includes_all_sections():
    a = TaskSchema("a")
    a.add_entity(data("Keep"))
    a.add_entity(data("Drop"))
    b = TaskSchema("b")
    b.add_entity(data("Keep"))
    b.add_entity(data("Add"))
    from repro.schema.dependency import data_dep

    b.add_dependency(data_dep("Add", "Keep"))
    diff = diff_schemas(a, b)
    text = diff.render()
    assert "+ entity Add" in text
    assert "- entity Drop" in text
    assert "+ dependency Add --d--> Keep" in text
    assert "construction methods affected: Add" in text
