"""Shared fixtures for the test suite.

A deterministic clock makes timestamps reproducible; the ``env`` fixture
is a fully tooled design environment over the odyssey schema with a small
set of installed source data, which most integration-flavoured tests
build on.
"""

from __future__ import annotations

import itertools

import pytest

from repro import DesignEnvironment
from repro.schema.standard import fig1_schema, fig2_schema, odyssey_schema
from repro.tools import (default_models, exhaustive, install_standard_tools,
                         standard_library, tech_map)
from repro.tools.logic import LogicSpec


class TickClock:
    """Logical clock: each call advances by one second."""

    def __init__(self, start: float = 1_000_000.0) -> None:
        self._ticks = itertools.count()
        self._start = start

    def __call__(self) -> float:
        return self._start + next(self._ticks)


@pytest.fixture
def clock() -> TickClock:
    return TickClock()


@pytest.fixture
def schema_fig1():
    return fig1_schema()


@pytest.fixture
def schema_fig2():
    return fig2_schema()


@pytest.fixture
def schema():
    return odyssey_schema()


@pytest.fixture
def library():
    return standard_library()


@pytest.fixture
def mux_spec() -> LogicSpec:
    return LogicSpec.from_equations("mux", "y = (a & ~s) | (b & s)")


@pytest.fixture
def nand_spec() -> LogicSpec:
    return LogicSpec.from_equations("nandf", "y = ~(a & b)")


@pytest.fixture
def env(schema, clock) -> DesignEnvironment:
    """Environment with every standard tool installed."""
    environment = DesignEnvironment(schema, user="tester", clock=clock)
    environment.tools = install_standard_tools(environment)  # type: ignore
    return environment


@pytest.fixture
def stocked_env(env, mux_spec) -> DesignEnvironment:
    """Environment with models, stimuli and a mux netlist installed."""
    env.models = env.install_data(  # type: ignore[attr-defined]
        "DeviceModels", default_models(), name="tech1")
    env.stimuli = env.install_data(  # type: ignore[attr-defined]
        "Stimuli", exhaustive(("a", "b", "s"), name="all3"), name="all3")
    env.netlist = env.install_data(  # type: ignore[attr-defined]
        "EditedNetlist", tech_map(mux_spec), name="mux-gates")
    return env


def build_performance_flow(env, *, netlist_id: str, models_id: str,
                           stimuli_id: str, simulator_id: str):
    """Standard simulate-performance flow used across tests/benches."""
    flow, goal = env.goal_flow("Performance", "simulate")
    flow.expand(goal)
    circuit = flow.sole_node_of_type("Circuit")
    flow.expand(circuit)
    flow.bind(flow.sole_node_of_type("Netlist"), netlist_id)
    flow.bind(flow.sole_node_of_type("DeviceModels"), models_id)
    flow.bind(flow.sole_node_of_type("Stimuli"), stimuli_id)
    flow.bind(flow.sole_node_of_type("Simulator"), simulator_id)
    return flow, goal
