"""Tests for the seeded scenario-corpus generator and its exports.

Generator determinism (byte-identical manifests, tamper detection,
shape structure), executed-history agreement with the manifest's
offline simulation, both export contracts (governance cg.v1 round-trip
and triples count-consistency) and the ``repro corpus`` CLI surface.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.persistence import load_environment
from repro.scenarios import (MAIN_FLOW, SHAPES, CorpusSpec,
                             ScenarioSpec, expected_signature,
                             generate_corpus, governance_fingerprint,
                             governance_records, history_signature,
                             load_corpus, materialize_governance,
                             materialize_scenario,
                             register_corpus_encapsulations,
                             render_jsonl, scenario_nodes,
                             scenario_specs, signature_digest,
                             simulate_payloads, triples_records,
                             validate_governance, validate_triples,
                             write_corpus)
from repro.schema.standard import fig2_schema


def spec_of(shape: str, *, seed: int = 11, width: int = 2,
            depth: int = 2, fanout: int = 3) -> ScenarioSpec:
    return ScenarioSpec(f"t-{shape}", shape, seed, width, depth,
                        fanout)


class TestGeneratorDeterminism:
    def test_same_seed_writes_identical_bytes(self, tmp_path):
        corpus = CorpusSpec(seed=42, width=3, depth=2, fanout=3)
        first = write_corpus(corpus, tmp_path / "a")
        second = write_corpus(corpus, tmp_path / "b")
        assert first.read_bytes() == second.read_bytes()

    def test_different_seeds_diverge(self):
        assert generate_corpus(CorpusSpec(seed=1))["digest"] != \
            generate_corpus(CorpusSpec(seed=2))["digest"]

    def test_manifest_lists_all_five_shapes(self):
        manifest = generate_corpus(CorpusSpec(seed=0))
        assert [e["shape"] for e in manifest["scenarios"]] == \
            list(SHAPES)
        for entry in manifest["scenarios"]:
            expected = entry["expected"]
            assert expected["instances"] == len(expected["data_refs"])
            assert expected["runs"] == sum(
                1 for node in entry["nodes"] if node["tool"])

    def test_tampered_manifest_rejected(self, tmp_path):
        path = write_corpus(CorpusSpec(seed=5), tmp_path)
        body = json.loads(path.read_text())
        body["scenarios"][0]["expected"]["instances"] += 1
        path.write_text(json.dumps(body))
        with pytest.raises(ReproError, match="digest mismatch"):
            load_corpus(tmp_path)

    def test_missing_and_wrong_format_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="not a corpus"):
            load_corpus(tmp_path)
        (tmp_path / "corpus.json").write_text(
            json.dumps({"format": "corpus.v9"}))
        with pytest.raises(ReproError, match="unsupported"):
            load_corpus(tmp_path)

    def test_shape_validation(self):
        with pytest.raises(ReproError, match="unknown scenario shape"):
            scenario_nodes(ScenarioSpec("x", "ring", 0, 2, 2, 2))
        with pytest.raises(ReproError, match="fanout >= 2"):
            scenario_nodes(ScenarioSpec("x", "fork_join", 0, 2, 2, 1))
        with pytest.raises(ReproError, match="unknown scenario shape"):
            generate_corpus(CorpusSpec(shapes=("ring",)))


class TestShapeStructure:
    def test_independent_width_scales_branches(self):
        nodes = scenario_nodes(spec_of("independent", width=4))
        assert len(nodes) == 8
        assert sum(1 for n in nodes if n.tool_type is None) == 4

    def test_chain_depth_scales_length(self):
        nodes = scenario_nodes(spec_of("chain", depth=5))
        assert [n.entity_type for n in nodes] == \
            ["Src0"] + [f"Stage{i}" for i in range(1, 6)]

    def test_diamond_joins_both_branches(self):
        nodes = scenario_nodes(spec_of("diamond", depth=2))
        join = nodes[-1]
        assert join.entity_type == "Join"
        assert set(join.inputs) == {"A2", "B2"}

    def test_fork_join_fanout(self):
        nodes = scenario_nodes(spec_of("fork_join", fanout=4))
        assert nodes[-1].inputs == tuple(f"Fork{i}" for i in range(4))

    def test_pipeline_shares_stage_tools_across_lanes(self):
        nodes = scenario_nodes(spec_of("pipeline", width=3, depth=2))
        stage_tools = {n.tool_type for n in nodes
                       if n.tool_type is not None}
        assert stage_tools == {"Stage1", "Stage2"}
        assert sum(1 for n in nodes if n.tool_type == "Stage1") == 3

    def test_simulation_is_topological_and_complete(self):
        spec = spec_of("diamond")
        payloads = simulate_payloads(spec)
        assert set(payloads) == \
            {n.entity_type for n in scenario_nodes(spec)}
        join = payloads["Join"]
        assert join["kind"] == "derived"
        assert set(join["inputs"]) == {"A2", "B2"}


class TestMaterializedRuns:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_run_matches_offline_simulation(self, shape):
        spec = spec_of(shape)
        env = materialize_scenario(spec)
        report = env.run(env.flow_catalog.select(MAIN_FLOW))
        assert not report.failures
        signature = history_signature(env)
        assert signature == expected_signature(spec)
        refs = dict(signature)
        for node in scenario_nodes(spec):
            assert node.entity_type in refs

    def test_executed_digest_equals_manifest_expectation(self):
        manifest = generate_corpus(CorpusSpec(seed=13))
        for spec, entry in zip(scenario_specs(manifest),
                               manifest["scenarios"]):
            env = materialize_scenario(spec)
            report = env.run(env.flow_catalog.select(MAIN_FLOW))
            assert report.runs == entry["expected"]["runs"]
            signature = history_signature(env)
            assert len(signature) == entry["expected"]["instances"]
            assert signature_digest(signature) == \
                entry["expected"]["history_digest"]

    def test_corpus_registration_noop_on_standard_schemas(self):
        from repro.execution.context import DesignEnvironment
        env = DesignEnvironment(fig2_schema(), user="t")
        assert register_corpus_encapsulations(env) == ()

    def test_registration_is_idempotent(self):
        env = materialize_scenario(spec_of("chain"))
        assert register_corpus_encapsulations(env) == ()


class TestGovernanceExport:
    def run_scenario(self, shape="diamond"):
        env = materialize_scenario(spec_of(shape))
        env.run(env.flow_catalog.select(MAIN_FLOW))
        return env

    def test_round_trip_validates_node_and_edge_for_edge(self):
        env = self.run_scenario()
        records = governance_records(env)
        lines = render_jsonl(records).splitlines()
        graph = materialize_governance(lines)
        assert validate_governance(graph, env) == []
        # header + one Task per data node + one Artifact per instance
        data_nodes = [n for n in scenario_nodes(spec_of("diamond"))]
        assert len(graph.nodes_of_type("Task")) == len(data_nodes)
        assert len(graph.nodes_of_type("Artifact")) == \
            len(list(env.db.instances()))
        assert graph.header["schema_version"] == "cg.v1"
        assert "clock_fast" in graph.header
        assert "clock_slow" in graph.header

    def test_depends_on_mirrors_flow_data_edges(self):
        env = self.run_scenario("chain")
        graph = materialize_governance(governance_records(env))
        deps = graph.edges_of_type("depends_on")
        # a chain of depth 2: Stage1<-Src0, Stage2<-Stage1
        assert len(deps) == 2

    def test_validator_flags_missing_task_and_artifact(self):
        env = self.run_scenario()
        records = governance_records(env)
        dropped = [r for r in records
                   if not (r.get("record") == "node"
                           and r.get("node_type") in ("Task",
                                                      "Artifact"))]
        problems = validate_governance(
            materialize_governance(dropped), env)
        assert any("has no Task node" in p for p in problems)
        assert any("has no Artifact node" in p for p in problems)

    def test_validator_flags_digest_mismatch(self):
        env = self.run_scenario()
        records = governance_records(env)
        for record in records:
            if record.get("node_type") == "Artifact":
                record["props"]["digest"] = "0" * 64
        problems = validate_governance(
            materialize_governance(records), env)
        assert any("digest mismatch" in p for p in problems)

    def test_fingerprint_stable_across_fresh_runs(self):
        first = governance_fingerprint(
            governance_records(self.run_scenario()))
        second = governance_fingerprint(
            governance_records(self.run_scenario()))
        assert first == second

    def test_runs_get_run_and_gate_nodes(self):
        env = self.run_scenario()
        records = env.ledger.records() if env.ledger is not None \
            else ()

        class FakeRun:
            run_id = "deadbeef"
            trace_id = ""
            flow = MAIN_FLOW
            executor = "sequential"
            cache_policy = "off"
            runs = 5
            created = 6
            errors = 0
            timestamp = 12.0
        lines = governance_records(env, [FakeRun()])
        graph = materialize_governance(lines)
        assert "run:deadbeef" in graph.nodes
        assert "gate:deadbeef" in graph.nodes
        assert graph.props("gate:deadbeef")["status"] == "pass"
        assert ("run:deadbeef", "gate:deadbeef") in \
            graph.edges_of_type("evaluated_by")
        assert validate_governance(graph, env, [FakeRun()]) == []


class TestTriplesExport:
    def test_parseable_and_count_consistent(self):
        env = materialize_scenario(spec_of("fork_join"))
        env.run(env.flow_catalog.select(MAIN_FLOW))
        lines = render_jsonl(triples_records(env)).splitlines()
        assert validate_triples(lines, env) == []
        parsed = [json.loads(line) for line in lines]
        assert all(set(t) == {"s", "p", "o"} for t in parsed)

    def test_byte_identical_across_fresh_runs(self):
        texts = []
        for _ in range(2):
            env = materialize_scenario(spec_of("pipeline"))
            env.run(env.flow_catalog.select(MAIN_FLOW))
            texts.append(render_jsonl(triples_records(env)))
        assert texts[0] == texts[1]

    def test_validator_flags_missing_and_malformed(self):
        env = materialize_scenario(spec_of("chain"))
        env.run(env.flow_catalog.select(MAIN_FLOW))
        records = triples_records(env)
        short = [r for r in records if r["p"] != "repro:digest"]
        problems = validate_triples(short, env)
        assert any("repro:digest" in p for p in problems)
        assert any("not an s/p/o triple" in p
                   for p in validate_triples(
                       [{"subject": "x"}], env))


class TestCorpusCLI:
    def test_generate_run_export_round_trip(self, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        assert main(["corpus", "generate", str(corpus_dir),
                     "--seed", "3", "--shape", "diamond",
                     "--shape", "fork_join"]) == 0
        manifest = load_corpus(corpus_dir)
        assert len(manifest["scenarios"]) == 2
        assert main(["corpus", "run", str(corpus_dir)]) == 0
        out = capsys.readouterr().out
        assert "all digests match the manifest" in out
        scenario_dir = corpus_dir / \
            manifest["scenarios"][0]["scenario_id"]
        env = load_environment(scenario_dir)
        assert len(list(env.db.instances())) == \
            manifest["scenarios"][0]["expected"]["instances"]
        gov = tmp_path / "gov.jsonl"
        assert main(["corpus", "export", str(scenario_dir),
                     "-o", str(gov)]) == 0
        graph = materialize_governance(
            gov.read_text().splitlines())
        assert graph.nodes_of_type("Task")
        assert main(["corpus", "export", str(scenario_dir),
                     "--format", "triples"]) == 0
        triples_out = capsys.readouterr().out
        assert '"rdf:type"' in triples_out

    def test_generate_is_byte_identical_across_invocations(
            self, tmp_path):
        for name in ("one", "two"):
            assert main(["corpus", "generate",
                         str(tmp_path / name), "--seed", "9"]) == 0
        assert (tmp_path / "one" / "corpus.json").read_bytes() == \
            (tmp_path / "two" / "corpus.json").read_bytes()

    def test_rerun_is_idempotent(self, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        main(["corpus", "generate", str(corpus_dir), "--seed", "4",
              "--shape", "chain"])
        assert main(["corpus", "run", str(corpus_dir)]) == 0
        # second run re-materializes from scratch: digests still match
        assert main(["corpus", "run", str(corpus_dir)]) == 0
        assert "all digests match" in capsys.readouterr().out

    def test_unknown_scenario_filter_rejected(self, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        main(["corpus", "generate", str(corpus_dir), "--shape",
              "chain"])
        assert main(["corpus", "run", str(corpus_dir),
                     "--scenario", "nope"]) == 2
        assert "no such scenario" in capsys.readouterr().err
