"""Tests for traces, chaining queries, template queries and versioning."""

import pytest

from repro.core.taskgraph import TaskGraph
from repro.history.database import HistoryDatabase
from repro.history.instance import DerivationRecord
from repro.history.query import (antecedents_of_type, dependents_of_type,
                                 derivation_inputs, derivation_tool,
                                 find_bindings, template_query,
                                 was_performed)
from repro.history.trace import (backward_trace, forward_trace, full_trace,
                                 lineage)
from repro.schema import standard as S


@pytest.fixture
def world(schema, clock):
    """A small populated history: layout -> netlist -> circuit -> 2 perfs.

    Also a second, unrelated layout/netlist pair to catch over-matching.
    """
    db = HistoryDatabase(schema, clock=clock)
    w = {"db": db}
    w["extractor"] = db.install(S.EXTRACTOR, {}, name="netex")
    w["simulator"] = db.install(S.SIMULATOR, {}, name="cosmos")
    w["models"] = db.install(S.DEVICE_MODELS, {"vth": 0.7}, name="tech")
    w["stim_a"] = db.install(S.STIMULI, [[0], [1]], name="stimA")
    w["stim_b"] = db.install(S.STIMULI, [[1], [0]], name="stimB")
    w["layout"] = db.install(S.EDITED_LAYOUT, {"id": "L1"}, name="lay1")
    w["other_layout"] = db.install(S.EDITED_LAYOUT, {"id": "L2"},
                                   name="lay2")

    def extract(layout):
        return db.record(
            S.EXTRACTED_NETLIST, {"from": layout.instance_id},
            DerivationRecord.make(w["extractor"].instance_id,
                                  {"layout": layout.instance_id}))

    w["netlist"] = extract(w["layout"])
    w["other_netlist"] = extract(w["other_layout"])
    w["circuit"] = db.record(
        S.CIRCUIT, {"c": 1},
        DerivationRecord.make(None,
                              {"models": w["models"].instance_id,
                               "netlist": w["netlist"].instance_id}))
    for stim_key in ("stim_a", "stim_b"):
        w[f"perf_{stim_key}"] = db.record(
            S.PERFORMANCE, {"delay": 1},
            DerivationRecord.make(
                w["simulator"].instance_id,
                {"circuit": w["circuit"].instance_id,
                 "stimuli": w[stim_key].instance_id}))
    return w


class TestBackwardChaining:
    def test_immediate_inputs(self, world):
        inputs = derivation_inputs(world["db"],
                                   world["netlist"].instance_id)
        assert inputs["layout"].instance_id == \
            world["layout"].instance_id

    def test_tool_lookup(self, world):
        tool = derivation_tool(world["db"], world["netlist"].instance_id)
        assert tool.instance_id == world["extractor"].instance_id
        assert derivation_tool(world["db"],
                               world["layout"].instance_id) is None

    def test_full_backward_trace(self, world):
        trace = backward_trace(world["db"],
                               world["perf_stim_a"].instance_id)
        assert world["layout"].instance_id in trace
        assert world["extractor"].instance_id in trace
        assert world["stim_b"].instance_id not in trace

    def test_depth_limited_trace_is_the_history_popup(self, world):
        trace = backward_trace(world["db"],
                               world["perf_stim_a"].instance_id, depth=1)
        assert world["circuit"].instance_id in trace
        assert world["simulator"].instance_id in trace
        # deeper ancestry not revealed at depth 1
        assert world["netlist"].instance_id not in trace

    def test_antecedents_of_type(self, world):
        layouts = antecedents_of_type(world["db"],
                                      world["perf_stim_a"].instance_id,
                                      S.LAYOUT)
        assert [i.instance_id for i in layouts] == [
            world["layout"].instance_id]


class TestForwardChaining:
    def test_performances_from_netlist(self, world):
        """Section 4.2's example query."""
        perfs = dependents_of_type(world["db"],
                                   world["netlist"].instance_id,
                                   S.PERFORMANCE)
        assert {p.instance_id for p in perfs} == {
            world["perf_stim_a"].instance_id,
            world["perf_stim_b"].instance_id}

    def test_unrelated_data_not_included(self, world):
        perfs = dependents_of_type(world["db"],
                                   world["other_netlist"].instance_id,
                                   S.PERFORMANCE)
        assert perfs == ()

    def test_forward_trace_contains_intermediates(self, world):
        trace = forward_trace(world["db"], world["layout"].instance_id)
        assert world["circuit"].instance_id in trace
        assert world["perf_stim_b"].instance_id in trace

    def test_full_trace_spans_both_directions(self, world):
        trace = full_trace(world["db"], world["circuit"].instance_id)
        assert world["layout"].instance_id in trace
        assert world["perf_stim_a"].instance_id in trace


class TestWasPerformed:
    def test_positive(self, world):
        matches = was_performed(world["db"], S.EXTRACTED_NETLIST,
                                layout=world["layout"].instance_id)
        assert [m.instance_id for m in matches] == [
            world["netlist"].instance_id]

    def test_negative_means_task_needed(self, world):
        fresh_layout = world["db"].install(S.EDITED_LAYOUT, {"id": "L3"})
        assert was_performed(world["db"], S.EXTRACTED_NETLIST,
                             layout=fresh_layout.instance_id) == ()


class TestTemplateQuery:
    def build_template(self, world, netlist_id=None) -> TaskGraph:
        """Performance <- Sim(circuit <- compose(netlist=bound), stim)."""
        db = world["db"]
        graph = TaskGraph(db.schema, "template")
        perf = graph.add_node(S.PERFORMANCE)
        circuit = graph.add_node(S.CIRCUIT)
        netlist = graph.add_node(S.NETLIST)
        graph.connect(perf.node_id, circuit.node_id, role="circuit")
        graph.connect(circuit.node_id, netlist.node_id, role="netlist")
        if netlist_id is not None:
            netlist.bind(netlist_id)
        return graph, perf

    def test_simulations_performed_for_this_netlist(self, world):
        graph, perf = self.build_template(
            world, world["netlist"].instance_id)
        results = template_query(world["db"], graph, perf.node_id)
        assert {r.instance_id for r in results} == {
            world["perf_stim_a"].instance_id,
            world["perf_stim_b"].instance_id}

    def test_other_netlist_matches_nothing(self, world):
        graph, perf = self.build_template(
            world, world["other_netlist"].instance_id)
        assert template_query(world["db"], graph, perf.node_id) == ()

    def test_unbound_template_matches_all(self, world):
        graph, perf = self.build_template(world)
        results = template_query(world["db"], graph, perf.node_id)
        assert len(results) == 2

    def test_tool_edge_constrains(self, world):
        db = world["db"]
        graph = TaskGraph(db.schema, "t")
        netlist = graph.add_node(S.EXTRACTED_NETLIST)
        extractor = graph.add_node(S.EXTRACTOR)
        graph.connect(netlist.node_id, extractor.node_id)
        extractor.bind(world["extractor"].instance_id)
        results = template_query(db, graph, netlist.node_id)
        assert len(results) == 2  # both extractions used this extractor

    def test_find_bindings_covers_subtree(self, world):
        graph, perf = self.build_template(
            world, world["netlist"].instance_id)
        assignments = find_bindings(world["db"], graph, perf.node_id)
        assert len(assignments) == 2
        for assignment in assignments:
            assert assignment[perf.node_id].startswith("Performance#")
            assert len(assignment) == 3


class TestLineage:
    def test_edit_chain(self, world):
        db = world["db"]
        editor = db.install(S.CIRCUIT_EDITOR, {}, name="ed")
        v1 = db.install(S.EDITED_NETLIST, {"v": 1}, name="v1")
        v2 = db.record(S.EDITED_NETLIST, {"v": 2},
                       DerivationRecord.make(editor.instance_id,
                                             {"previous": v1.instance_id}))
        v3 = db.record(S.EDITED_NETLIST, {"v": 3},
                       DerivationRecord.make(editor.instance_id,
                                             {"previous": v2.instance_id}))
        assert lineage(db, v3.instance_id) == (
            v1.instance_id, v2.instance_id, v3.instance_id)
        assert lineage(db, v1.instance_id) == (v1.instance_id,)

    def test_extraction_is_not_an_edit(self, world):
        """An ExtractedNetlist's lineage does not cross into layouts."""
        chain = lineage(world["db"], world["netlist"].instance_id)
        assert chain == (world["netlist"].instance_id,)
