"""Tests for the switch-level simulator (the COSMOS substrate)."""

import pytest

from repro.errors import ToolError
from repro.tools import (GROUND, NMOS, PMOS, POWER, WEAK, CompiledNetwork,
                         Netlist, compile_netlist, default_models,
                         exhaustive, truth_table, walking_ones)
from repro.tools.stimuli import Stimuli, from_table, random_vectors


def inverter() -> Netlist:
    n = Netlist("inv", inputs=("a",), outputs=("y",))
    n.add("mp", PMOS, gate="a", source=POWER, drain="y")
    n.add("mn", NMOS, gate="a", source=GROUND, drain="y")
    return n


class TestStimuli:
    def test_exhaustive_counts(self):
        stim = exhaustive(("a", "b"))
        assert len(stim) == 4
        assert stim.vectors[0] == (0, 0)
        assert stim.vectors[-1] == (1, 1)

    def test_walking_ones(self):
        stim = walking_ones(("a", "b", "c"))
        assert len(stim) == 4
        assert stim.vectors[1] == (1, 0, 0)

    def test_random_reproducible(self):
        first = random_vectors(("a",), 10, seed=3)
        second = random_vectors(("a",), 10, seed=3)
        assert first.vectors == second.vectors

    def test_from_table(self):
        stim = from_table(("a", "b"), [{"a": 1, "b": 0}])
        assert stim.vectors == ((1, 0),)

    def test_bad_vector_rejected(self):
        with pytest.raises(ValueError):
            Stimuli("bad", ("a",), ((0, 1),))
        with pytest.raises(ValueError):
            Stimuli("bad", ("a",), ((2,),))

    def test_as_maps(self):
        stim = exhaustive(("a",))
        assert stim.as_maps() == ({"a": 0}, {"a": 1})


class TestCompile:
    def test_compile_flat(self):
        network = compile_netlist(inverter())
        assert isinstance(network, CompiledNetwork)
        assert len(network.transistors) == 2

    def test_hierarchical_needs_library(self, library):
        n = Netlist("top", inputs=("a",), outputs=("y",))
        n.add_instance("u1", "inv", a="a", y="y")
        with pytest.raises(ToolError):
            compile_netlist(n)
        network = compile_netlist(n, library)
        assert len(network.transistors) == 2

    def test_unknown_net_lookup(self):
        network = compile_netlist(inverter())
        with pytest.raises(ToolError):
            network.net_index("ghost")

    def test_compiled_roundtrip(self):
        network = compile_netlist(inverter())
        restored = CompiledNetwork.from_dict(network.to_dict())
        assert restored.nets == network.nets


class TestBasicGates:
    def test_inverter(self):
        assert truth_table(inverter()) == {(0,): ("1",), (1,): ("0",)}

    @pytest.mark.parametrize("cell,function", [
        ("inv", lambda a: 1 - a),
        ("buf", lambda a: a),
    ])
    def test_single_input_cells(self, library, cell, function):
        n = Netlist("t", inputs=("a",), outputs=("y",))
        n.add_instance("u1", cell, a="a", y="y")
        table = truth_table(n, library)
        for a in (0, 1):
            assert table[(a,)] == (str(function(a)),)

    @pytest.mark.parametrize("cell,function", [
        ("nand2", lambda a, b: 1 - (a & b)),
        ("nor2", lambda a, b: 1 - (a | b)),
    ])
    def test_two_input_cells(self, library, cell, function):
        n = Netlist("t", inputs=("a", "b"), outputs=("y",))
        n.add_instance("u1", cell, a="a", b="b", y="y")
        table = truth_table(n, library)
        for a in (0, 1):
            for b in (0, 1):
                assert table[(a, b)] == (str(function(a, b)),)

    def test_gate_chain_settles(self, library):
        n = Netlist("chain", inputs=("a",), outputs=("y",))
        previous = "a"
        for index in range(6):
            net = "y" if index == 5 else f"w{index}"
            n.add_instance(f"u{index}", "inv", a=previous, y=net)
            previous = net
        table = truth_table(n, library)
        # six inversions cancel out: y == a
        assert table == {(0,): ("0",), (1,): ("1",)}

    def test_deeper_chain_takes_longer(self, library):
        def chain(depth):
            n = Netlist(f"chain{depth}", inputs=("a",), outputs=("y",))
            previous = "a"
            for index in range(depth):
                net = "y" if index == depth - 1 else f"w{index}"
                n.add_instance(f"u{index}", "inv", a=previous, y=net)
                previous = net
            report = compile_netlist(n, library).simulate(
                exhaustive(("a",)), default_models())
            return max(report.settle_steps)

        assert chain(8) > chain(2)


class TestPseudoNmos:
    def pulldown_line(self) -> Netlist:
        """Weak pull-up vs strong pull-down: the PLA primitive."""
        n = Netlist("pn", inputs=("g",), outputs=("line",))
        n.add("load", PMOS, gate=GROUND, source=POWER, drain="line",
              strength=WEAK)
        n.add("pd", NMOS, gate="g", source=GROUND, drain="line")
        return n

    def test_ratioed_logic(self):
        table = truth_table(self.pulldown_line())
        assert table[(0,)] == ("1",)   # weak pull-up wins when pd off
        assert table[(1,)] == ("0",)   # strong pull-down wins when on

    def test_floating_is_unknown(self):
        n = Netlist("float", inputs=("g",), outputs=("y",))
        n.add("pass", NMOS, gate="g", source="iso", drain="y")
        table = truth_table(n)
        assert table[(0,)] == ("X",)  # undriven either way
        assert table[(1,)] == ("X",)  # connected to floating 'iso'

    def test_fighting_drivers_are_unknown(self):
        n = Netlist("fight", inputs=("g",), outputs=("y",))
        n.add("up", PMOS, gate=GROUND, source=POWER, drain="y")
        n.add("down", NMOS, gate=POWER, source=GROUND, drain="y")
        table = truth_table(n)
        assert table[(0,)] == ("X",)

    def test_unknown_gate_propagates_pessimistically(self):
        """An inverter driven by a floating net outputs X."""
        n = Netlist("xprop", inputs=("g",), outputs=("y",))
        n.add("pass", NMOS, gate="g", source="iso", drain="w")
        n.add("mp", PMOS, gate="w", source=POWER, drain="y")
        n.add("mn", NMOS, gate="w", source=GROUND, drain="y")
        table = truth_table(n)
        assert table[(1,)] == ("X",)


class TestReportMetrics:
    def test_settle_and_transitions(self):
        report = compile_netlist(inverter()).simulate(
            exhaustive(("a",)), default_models())
        assert report.vector_count == 2
        assert all(step >= 1 for step in report.settle_steps)
        assert report.transitions[1] >= 1  # y flips between vectors
        assert report.worst_delay_ns > 0
        assert report.total_energy_fj > 0

    def test_feedback_resolves_to_unknown(self):
        """A ring oscillator settles at the conservative all-X fixpoint.

        The {0,1,X} algebra is monotone toward X, so feedback loops
        without a defined initial state resolve to X rather than
        oscillating numerically — the MOSSIM-style pessimistic answer.
        """
        ring = Netlist("ring3", inputs=(), outputs=("a",))
        prev = "a"
        for index, net in enumerate(("b", "c", "a")):
            ring.add(f"mp{index}", PMOS, gate=prev, source=POWER,
                     drain=net)
            ring.add(f"mn{index}", NMOS, gate=prev, source=GROUND,
                     drain=net)
            prev = net
        stim = Stimuli("one", (), ((),))
        report = compile_netlist(ring).simulate(stim, default_models())
        assert report.waveform("a") == ("X",)
        assert report.has_unknowns

    def test_stimuli_for_unknown_nets_rejected(self):
        network = compile_netlist(inverter())
        with pytest.raises(ToolError):
            network.simulate(exhaustive(("zz",)), default_models())

    def test_report_roundtrip(self):
        from repro.tools import PerformanceReport

        report = compile_netlist(inverter()).simulate(
            exhaustive(("a",)), default_models())
        restored = PerformanceReport.from_dict(report.to_dict())
        assert restored == report

    def test_output_table(self):
        report = compile_netlist(inverter()).simulate(
            exhaustive(("a",)), default_models())
        assert report.output_table() == (("1",), ("0",))


class TestInterpretedReference:
    def test_matches_compiled_on_pseudo_nmos(self, library):
        from repro.tools.simulator import simulate_interpreted
        from repro.tools import pla_layout, extract
        from repro.tools.logic import LogicSpec

        spec = LogicSpec.from_equations("f", "y = (a & b) | ~c")
        netlist, _ = extract(pla_layout(spec, library), library)
        stim = exhaustive(netlist.inputs)
        models = default_models()
        fast = compile_netlist(netlist).simulate(stim, models)
        slow = simulate_interpreted(netlist, stim, models)
        assert fast.waveform_map() == slow.waveform_map()
        assert fast.settle_steps == slow.settle_steps

    def test_undriven_declared_input_rejected(self):
        from repro.tools.simulator import simulate_interpreted

        netlist = inverter()
        stim = exhaustive(())  # drives nothing
        with pytest.raises(ToolError, match="declared input"):
            compile_netlist(netlist).simulate(stim, default_models())
        with pytest.raises(ToolError, match="declared input"):
            simulate_interpreted(netlist, stim, default_models())

    def test_channel_groups_are_static_partition(self, library):
        n = Netlist("two", inputs=("a", "b"), outputs=("x", "y"))
        n.add_instance("u1", "inv", a="a", y="x")
        n.add_instance("u2", "inv", a="b", y="y")
        network = compile_netlist(n, library)
        # two independent inverters: two channel groups (x and y)
        assert len(network.group_nets) == 2
        grouped = sorted(net for group in network.group_nets
                         for net in group)
        assert grouped == sorted(
            network.net_index(net) for net in ("x", "y"))


class TestSequentialCircuits:
    """Charge retention makes latches and flip-flops work."""

    def test_dynamic_latch_holds_state(self, library):
        from repro.tools.stimuli import from_table

        n = Netlist("t", inputs=("d", "en"), outputs=("q",))
        n.add_instance("l", "dlatch", d="d", en="en", q="q")
        stim = from_table(("d", "en"), [
            {"d": 1, "en": 1},   # write 1
            {"d": 0, "en": 0},   # hold: d changed, latch closed
            {"d": 0, "en": 1},   # write 0
            {"d": 1, "en": 0},   # hold
        ])
        report = compile_netlist(n, library).simulate(
            stim, default_models())
        assert report.waveform("q") == ("1", "1", "0", "0")

    def test_dff_captures_on_rising_edge(self, library):
        from repro.tools.stimuli import from_table

        n = Netlist("t", inputs=("d", "clk"), outputs=("q",))
        n.add_instance("ff", "dff", d="d", clk="clk", q="q")
        # keep d stable across each rising edge (no hold violations)
        seq = [(1, 0), (1, 1), (1, 0), (0, 0), (0, 1), (0, 0)]
        stim = from_table(("d", "clk"),
                          [{"d": d, "clk": c} for d, c in seq])
        report = compile_netlist(n, library).simulate(
            stim, default_models())
        assert report.waveform("q") == ("X", "1", "1", "1", "0", "0")

    def test_uninitialized_storage_is_unknown(self, library):
        from repro.tools.stimuli import from_table

        n = Netlist("t", inputs=("d", "en"), outputs=("q",))
        n.add_instance("l", "dlatch", d="d", en="en", q="q")
        stim = from_table(("d", "en"), [{"d": 1, "en": 0}])
        report = compile_netlist(n, library).simulate(
            stim, default_models())
        assert report.waveform("q") == ("X",)  # never written

    def test_retention_parity_with_interpreter(self, library):
        from repro.tools.simulator import simulate_interpreted
        from repro.tools.stimuli import from_table

        n = Netlist("t", inputs=("d", "clk"), outputs=("q",))
        n.add_instance("ff", "dff", d="d", clk="clk", q="q")
        seq = [(1, 0), (1, 1), (0, 0), (0, 1), (1, 1), (1, 0)]
        stim = from_table(("d", "clk"),
                          [{"d": d, "clk": c} for d, c in seq])
        models = default_models()
        fast = compile_netlist(n, library).simulate(stim, models)
        slow = simulate_interpreted(n.flatten(library), stim, models)
        assert fast.waveform_map() == slow.waveform_map()
        assert fast.settle_steps == slow.settle_steps
