"""Tests for hierarchical span tracing and critical-path analysis."""

import json
import pathlib
import threading

import pytest

from repro.cli import main
from repro.errors import ObservabilityError
from repro.obs import (CACHE_SPAN, COMPOSE_SPAN, NULL_SPAN, RUN_SPAN,
                       TASK_SPAN, TOOL_FINISHED, TOOL_SPAN, WAVE_SPAN,
                       EventBus, JSONLSink, MetricsRegistry,
                       RingBufferSink, Span, Tracer, critical_path,
                       export_chrome, read_spans, render_span_tree,
                       spans_of_trace, trace_ids, validate_chrome_trace,
                       validate_spans)
from repro.persistence import TRACE_FILE, save_environment
from repro.schema import standard as S
from repro.execution import encapsulation
from tests.conftest import build_performance_flow


@pytest.fixture
def tracer() -> Tracer:
    return Tracer()


@pytest.fixture
def sink(tracer) -> RingBufferSink:
    sink = RingBufferSink()
    tracer.subscribe(sink)
    return sink


@pytest.fixture
def traced_env(stocked_env) -> tuple:
    """Stocked environment with a span sink on its tracer."""
    sink = RingBufferSink(512)
    stocked_env.tracer.subscribe(sink)
    return stocked_env, sink


def simulate_flow(env):
    return build_performance_flow(
        env,
        netlist_id=env.netlist.instance_id,
        models_id=env.models.instance_id,
        stimuli_id=env.stimuli.instance_id,
        simulator_id=env.tools[S.SIMULATOR].instance_id)


class TestTracerCore:
    def test_disabled_tracer_yields_null_span(self, tracer):
        assert not tracer.enabled
        with tracer.span("run:f", RUN_SPAN) as span:
            assert span is NULL_SPAN
            assert span.context is None
        assert tracer.current() is None

    def test_nested_spans_share_trace_and_chain_parents(self, tracer,
                                                        sink):
        with tracer.span("run:f", RUN_SPAN) as outer:
            with tracer.span("task:t", TASK_SPAN) as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        first, second = sink.events()
        assert first.span_id == inner.span_id  # children flush first
        assert second.parent_id is None

    def test_sequential_roots_get_distinct_traces(self, tracer, sink):
        with tracer.span("run:a", RUN_SPAN):
            pass
        first_trace = tracer.last_trace_id
        with tracer.span("run:b", RUN_SPAN):
            pass
        assert tracer.last_trace_id != first_trace
        assert len(trace_ids(sink.events())) == 2

    def test_worker_inherits_only_via_activate(self, tracer, sink):
        root = tracer.start_span("run:f", RUN_SPAN)
        recorded = {}

        def worker():
            # no implicit inheritance across threads
            recorded["ambient"] = tracer.current()
            with tracer.activate(root.context):
                with tracer.span("task:t", TASK_SPAN) as child:
                    recorded["child"] = child

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(timeout=5)
        tracer.finish(root)
        assert recorded["ambient"] is None
        assert recorded["child"].parent_id == root.span_id
        assert recorded["child"].trace_id == root.trace_id

    def test_activate_none_is_noop(self, tracer):
        with tracer.activate(None):
            assert tracer.current() is None

    def test_exception_marks_span_status(self, tracer, sink):
        with pytest.raises(ValueError):
            with tracer.span("task:t", TASK_SPAN):
                raise ValueError("boom")
        (span,) = sink.events()
        assert span.status == "error:ValueError"
        assert span.end >= span.start

    def test_unknown_kind_rejected(self, tracer, sink):
        with pytest.raises(ObservabilityError):
            tracer.start_span("x", "nonsense")

    def test_sink_without_handle_rejected(self, tracer):
        with pytest.raises(ObservabilityError):
            tracer.subscribe(object())

    def test_unsubscribe_restores_fast_path(self, tracer, sink):
        tracer.unsubscribe(sink)
        assert not tracer.enabled
        with tracer.span("run:f", RUN_SPAN) as span:
            assert span is NULL_SPAN


class TestSpanPersistence:
    def _write(self, tracer, path):
        jsonl = JSONLSink(path)
        tracer.subscribe(jsonl)
        with tracer.span("run:f", RUN_SPAN, attributes={"flow": "f"}):
            with tracer.span("task:t", TASK_SPAN):
                pass
        jsonl.close()

    def test_jsonl_round_trip(self, tracer, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._write(tracer, path)
        spans = read_spans(path)
        assert [s.kind for s in spans] == [TASK_SPAN, RUN_SPAN]
        assert spans[1].value("flow") == "f"
        assert spans[0].to_dict() == Span.from_dict(
            spans[0].to_dict()).to_dict()

    def test_corrupt_trailing_line_tolerated_leniently(self, tracer,
                                                       tmp_path):
        path = tmp_path / "trace.jsonl"
        self._write(tracer, path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"truncated mid-wri')
        assert len(read_spans(path, strict=False)) == 2
        with pytest.raises(ObservabilityError):
            read_spans(path)

    def test_mid_file_corruption_always_rejected(self, tracer,
                                                 tmp_path):
        path = tmp_path / "trace.jsonl"
        self._write(tracer, path)
        lines = path.read_text(encoding="utf-8").splitlines()
        path.write_text("garbage\n" + "\n".join(lines) + "\n",
                        encoding="utf-8")
        with pytest.raises(ObservabilityError):
            read_spans(path, strict=False)

    def test_foreign_schema_version_rejected(self):
        spec = {"schema_version": "other.v1", "trace_id": "t",
                "span_id": "s1"}
        with pytest.raises(ObservabilityError):
            Span.from_dict(spec)


class TestValidation:
    def _span(self, span_id, parent=None, *, kind=TASK_SPAN,
              start=0.0, end=1.0):
        return Span(trace_id="t1", span_id=span_id, parent_id=parent,
                    name=span_id, kind=kind, start=start, end=end)

    def test_clean_tree_validates(self):
        spans = [self._span("s1", kind=RUN_SPAN),
                 self._span("s2", "s1")]
        assert validate_spans(spans) == []

    def test_structural_problems_reported(self):
        spans = [
            self._span("s1", kind=RUN_SPAN),
            self._span("s1", kind=RUN_SPAN),        # duplicate + 2 roots
            self._span("s2", "missing"),             # dangling parent
            self._span("s3", "s1", start=2.0, end=1.0),
        ]
        spans.append(Span(trace_id="t1", span_id="s4", parent_id="s1",
                          name="x", kind="nonsense", start=0, end=1))
        problems = "\n".join(validate_spans(spans))
        assert "duplicate span id s1" in problems
        assert "expected exactly one root" in problems
        assert "unknown parent missing" in problems
        assert "ends before it starts" in problems
        assert "unknown kind" in problems

    def test_chrome_validator_catches_unmatched_pairs(self):
        good = {"traceEvents": [
            {"ph": "B", "pid": 1, "tid": 0, "ts": 0, "name": "a"},
            {"ph": "E", "pid": 1, "tid": 0, "ts": 5},
        ]}
        assert validate_chrome_trace(good) == []
        bad = {"traceEvents": [
            {"ph": "E", "pid": 1, "tid": 0, "ts": 5},
            {"ph": "B", "pid": 1, "tid": 1, "ts": 0, "name": "open"},
            {"ph": "Z", "pid": 1, "tid": 0, "ts": 0},
            {"ph": "X", "pid": 1, "tid": 0, "ts": -3, "dur": 1,
             "name": "n"},
        ]}
        problems = "\n".join(validate_chrome_trace(bad))
        assert "E without matching B" in problems
        assert "unclosed B event 'open'" in problems
        assert "unsupported phase" in problems
        assert "invalid ts" in problems

    def test_not_a_trace_rejected(self):
        assert validate_chrome_trace({}) == \
            ["traceEvents missing or not a list"]


class TestSequentialExecutorTracing:
    def test_run_produces_valid_span_tree(self, traced_env):
        env, sink = traced_env
        flow, goal = simulate_flow(env)
        report = env.run(flow)
        spans = list(sink.events())
        assert validate_spans(spans) == []
        roots = [s for s in spans if s.parent_id is None]
        assert len(roots) == 1 and roots[0].kind == RUN_SPAN
        assert roots[0].value("flow") == flow.name
        tasks = [s for s in spans if s.kind == TASK_SPAN]
        assert len(tasks) == len(report.results)
        assert all(t.parent_id == roots[0].span_id for t in tasks)
        # leaves hang off their task, and the composed Circuit shows up
        by_id = {s.span_id: s for s in spans}
        leaves = [s for s in spans
                  if s.kind in (TOOL_SPAN, COMPOSE_SPAN)]
        assert leaves
        assert all(by_id[s.parent_id].kind == TASK_SPAN for s in leaves)
        assert any(s.kind == COMPOSE_SPAN for s in spans)

    def test_task_spans_carry_graph_structure(self, traced_env):
        env, sink = traced_env
        flow, goal = simulate_flow(env)
        env.run(flow)
        tasks = [s for s in sink.events() if s.kind == TASK_SPAN]
        produced = {n for t in tasks for n in t.value("outputs", ())}
        consumed = {n for t in tasks for n in t.value("inputs", ())}
        # the simulation consumes the composed circuit it produced
        assert produced & consumed
        assert all(t.value("machine") for t in tasks)

    def test_history_records_stamped_with_trace(self, traced_env):
        env, sink = traced_env
        flow, goal = simulate_flow(env)
        report = env.run(flow)
        spans = {s.span_id: s for s in sink.events()}
        trace = env.tracer.last_trace_id
        for instance_id in report.created:
            instance = env.db.get(instance_id)
            assert instance.trace_id == trace
            producer = spans[instance.span_id]
            assert producer.kind in (TOOL_SPAN, COMPOSE_SPAN)
            payload = instance.to_dict()
            assert payload["trace_id"] == trace

    def test_untraced_instances_round_trip_without_ids(self, env):
        instance = env.install_data(S.STIMULI, {"v": 1}, name="plain")
        payload = instance.to_dict()
        assert "trace_id" not in payload
        restored = type(instance).from_dict(payload)
        assert restored.trace_id == "" and restored.span_id == ""


class TestParallelExecutorTracing:
    def _two_branch_env_and_flow(self, schema, clock):
        from repro import DesignEnvironment
        env = DesignEnvironment(schema, user="tester", clock=clock)

        def extract(ctx, inputs):
            return {t: {"made": t} for t in ctx.output_types}

        env.install_tool(S.EXTRACTOR, encapsulation("x", extract),
                         name="x")
        flow = env.new_flow("fig6")
        for index in range(2):
            layout = env.install_data(S.EDITED_LAYOUT, {"i": index})
            netlist = flow.place(S.EXTRACTED_NETLIST)
            flow.expand(netlist)
            layouts = [n for n in flow.graph.leaves()
                       if n.entity_type == S.LAYOUT and not n.is_bound]
            flow.bind(layouts[0], layout.instance_id)
            tools = [n for n in flow.nodes()
                     if n.entity_type == S.EXTRACTOR and not n.is_bound]
            flow.bind(tools[0], env.db.latest(S.EXTRACTOR).instance_id)
        return env, flow

    def test_workers_attach_to_coordinator_root(self, schema, clock):
        env, flow = self._two_branch_env_and_flow(schema, clock)
        sink = RingBufferSink(256)
        env.tracer.subscribe(sink)
        env.parallel_executor(machines=2).execute(flow)
        spans = list(sink.events())
        assert validate_spans(spans) == []
        roots = [s for s in spans if s.parent_id is None]
        assert len(roots) == 1
        assert roots[0].value("scheduler") == "disjoint-branches"
        branches = [s for s in spans if s.kind == WAVE_SPAN]
        assert len(branches) == 2
        assert {b.parent_id for b in branches} == {roots[0].span_id}
        assert all(b.value("machine") for b in branches)
        first, second = (set(b.value("branch")) for b in branches)
        assert first and second and not (first & second)
        branch_ids = {b.span_id for b in branches}
        tasks = [s for s in spans if s.kind == TASK_SPAN]
        assert tasks and all(t.parent_id in branch_ids for t in tasks)
        assert len({s.trace_id for s in spans}) == 1


class TestScheduledExecutorTracing:
    def test_lanes_waves_and_queue_wait(self, traced_env):
        env, sink = traced_env
        flow, goal = simulate_flow(env)
        report = env.scheduled_executor(machines=2).execute(flow)
        spans = list(sink.events())
        assert validate_spans(spans) == []
        root = next(s for s in spans if s.parent_id is None)
        assert root.value("scheduler") == "invocation-level"
        lanes = [s for s in spans if s.kind == WAVE_SPAN]
        assert lanes and all(s.parent_id == root.span_id for s in lanes)
        tasks = [s for s in spans if s.kind == TASK_SPAN]
        waves = [t.value("wave") for t in tasks]
        assert all(isinstance(w, int) for w in waves)
        assert min(waves) == 0 and max(waves) >= 1
        # queue wait is accounted separately from execute time
        assert report.queue_wait_time >= 0.0
        assert report.queue_wait_time == pytest.approx(
            sum(r.queue_wait for r in report.results))

    def test_queue_wait_reported_in_metrics(self):
        bus = EventBus()
        metrics = MetricsRegistry()
        bus.subscribe(metrics)
        bus.emit(TOOL_FINISHED, tool_type="Simulator", duration=0.5,
                 payload={"queue_wait": 0.25})
        assert metrics.timer("queue_wait").count == 1
        assert metrics.timer("tool.Simulator.queue_wait").total == 0.25
        # execute time stays unpolluted by scheduling pressure
        assert metrics.timer("tool.Simulator").total == 0.5
        assert "queue wait:" in metrics.render()


class TestCacheHitSpans:
    def test_warm_run_hits_never_extend_critical_path(self, stocked_env):
        env = stocked_env
        sink = RingBufferSink(512)
        env.tracer.subscribe(sink)
        cold_flow, _ = simulate_flow(env)
        env.run(cold_flow, cache="readwrite")
        cold_trace = env.tracer.last_trace_id
        warm_flow, _ = simulate_flow(env)
        warm = env.run(warm_flow, cache="reuse")
        spans = list(sink.events())
        assert warm.cache_hits and not warm.created

        warm_spans = spans_of_trace(spans)  # latest trace
        assert warm_spans[0].trace_id != cold_trace
        tasks = [s for s in warm_spans if s.kind == TASK_SPAN]
        assert tasks and all(t.value("cache") == "hit" for t in tasks)
        assert not any(s.kind == TOOL_SPAN for s in warm_spans)
        lookups = [s for s in warm_spans if s.kind == CACHE_SPAN]
        assert lookups
        assert all(s.value("outcome") == "hit" for s in lookups)

        cold = critical_path(spans, cold_trace)
        hot = critical_path(spans)
        assert [s.value("tool_type") for s in cold.path] == \
            [s.value("tool_type") for s in hot.path]
        # hits cost only their lookup time, so the warm chain is
        # dramatically shorter than the executed one
        assert hot.critical_length < cold.critical_length
        assert hot.busy_time < cold.busy_time


class TestCriticalPathSynthetic:
    def _diamond(self):
        def task(span_id, name, start, end, inputs, outputs):
            return Span(trace_id="t1", span_id=span_id, parent_id="s0",
                        name=name, kind=TASK_SPAN, start=start, end=end,
                        attributes={"inputs": inputs,
                                    "outputs": outputs,
                                    "tool_type": name})
        return [
            Span(trace_id="t1", span_id="s0", parent_id=None,
                 name="run:d", kind=RUN_SPAN, start=0.0, end=10.0,
                 attributes={"flow": "d"}),
            task("s1", "A", 0.0, 3.0, [], ["a"]),
            task("s2", "B", 3.0, 4.0, ["a"], ["b"]),
            task("s3", "C", 3.0, 8.0, ["a"], ["c"]),
            task("s4", "D", 8.0, 10.0, ["b", "c"], ["d"]),
        ]

    def test_longest_chain_slack_and_parallelism(self):
        report = critical_path(self._diamond())
        assert [s.name for s in report.path] == ["A", "C", "D"]
        assert report.critical_length == pytest.approx(10.0)
        assert report.wall_time == pytest.approx(10.0)
        assert report.parallelism == pytest.approx(1.1)
        timing = {t.span.name: t for t in report.tasks}
        assert timing["B"].slack == pytest.approx(4.0)
        assert not timing["B"].on_path
        assert all(timing[n].slack == 0.0 for n in ("A", "C", "D"))
        rendered = report.render()
        assert "longest chain: 3 tasks" in rendered
        assert "off-path tasks by slack" in rendered

    def test_cycle_rejected(self):
        spans = self._diamond()[:1] + [
            Span(trace_id="t1", span_id="s1", parent_id="s0", name="A",
                 kind=TASK_SPAN, start=0, end=1,
                 attributes={"inputs": ["b"], "outputs": ["a"]}),
            Span(trace_id="t1", span_id="s2", parent_id="s0", name="B",
                 kind=TASK_SPAN, start=1, end=2,
                 attributes={"inputs": ["a"], "outputs": ["b"]}),
        ]
        with pytest.raises(ObservabilityError):
            critical_path(spans)

    def test_no_spans_rejected(self):
        with pytest.raises(ObservabilityError):
            critical_path([])


class TestChromeExport:
    def test_spans_become_complete_events_with_lanes(self):
        spans = [
            Span(trace_id="t1", span_id="s0", parent_id=None,
                 name="run:f", kind=RUN_SPAN, start=1.0, end=2.0),
            Span(trace_id="t1", span_id="s1", parent_id="s0",
                 name="task:x", kind=TASK_SPAN, start=1.1, end=1.5,
                 attributes={"machine": "m0"}),
            Span(trace_id="t1", span_id="s2", parent_id="s1",
                 name="tool:T", kind=TOOL_SPAN, start=1.2, end=1.4),
        ]
        payload = export_chrome(spans)
        assert validate_chrome_trace(payload) == []
        complete = [e for e in payload["traceEvents"]
                    if e["ph"] == "X"]
        assert len(complete) == 3
        run_event = next(e for e in complete if e["name"] == "run:f")
        assert run_event["ts"] == 0.0
        assert run_event["dur"] == pytest.approx(1e6)
        lanes = {e["args"]["name"] for e in payload["traceEvents"]
                 if e.get("name") == "thread_name"}
        assert lanes == {"flow", "m0"}
        # the leaf inherits its task's machine lane
        tool_event = next(e for e in complete if e["name"] == "tool:T")
        task_event = next(e for e in complete if e["name"] == "task:x")
        assert tool_event["tid"] == task_event["tid"]
        assert payload["otherData"]["trace_id"] == "t1"

    def test_render_span_tree_indents_children(self):
        spans = [
            Span(trace_id="t1", span_id="s0", parent_id=None,
                 name="run:f", kind=RUN_SPAN, start=0, end=2),
            Span(trace_id="t1", span_id="s1", parent_id="s0",
                 name="task:x", kind=TASK_SPAN, start=0, end=1),
        ]
        tree = render_span_tree(spans)
        lines = tree.splitlines()
        assert lines[0].startswith("trace t1: 2 spans")
        assert lines[1].startswith("  run:f")
        assert lines[2].startswith("    task:x")


class TestTraceCli:
    def run(self, *argv: str) -> int:
        return main(list(argv))

    @pytest.fixture
    def project(self, stocked_env, tmp_path):
        env = stocked_env
        flow, goal = simulate_flow(env)
        env.save_flow("simulate", flow, "standard simulation")
        directory = tmp_path / "proj"
        save_environment(env, directory)
        return str(directory)

    @pytest.fixture
    def traced_project(self, project, capsys):
        assert self.run("run", project, "simulate", "--trace") == 0
        out = capsys.readouterr().out
        assert "trace " in out and TRACE_FILE in out
        assert (pathlib.Path(project) / TRACE_FILE).exists()
        return project

    def test_trace_show_prints_tree(self, traced_project, capsys):
        assert self.run("trace", "show", traced_project) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace ")
        assert "run:simulate" in out

    def test_trace_critical_path(self, traced_project, capsys):
        assert self.run("trace", "critical-path", traced_project) == 0
        out = capsys.readouterr().out
        assert "critical path for trace" in out
        assert "longest chain" in out
        assert "Simulator" in out

    def test_trace_export_writes_valid_chrome_json(self, traced_project,
                                                   tmp_path, capsys):
        target = tmp_path / "trace.json"
        assert self.run("trace", "export", traced_project,
                        "-o", str(target)) == 0
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert validate_chrome_trace(payload) == []
        assert any(e.get("ph") == "X" for e in payload["traceEvents"])
        capsys.readouterr()
        # stdout variant parses too
        assert self.run("trace", "export", traced_project) == 0
        json.loads(capsys.readouterr().out)

    def test_trace_on_missing_log_fails_cleanly(self, project, capsys):
        assert self.run("trace", "show", project) == 2
        assert "error" in capsys.readouterr().err

    def test_history_joins_producing_span(self, traced_project, capsys):
        from repro.persistence import load_environment
        env = load_environment(traced_project)
        perf = env.db.browse(S.PERFORMANCE)[-1]
        assert perf.trace_id
        capsys.readouterr()
        assert self.run("history", traced_project,
                        perf.instance_id) == 0
        out = capsys.readouterr().out
        assert f"produced by span {perf.span_id} of trace " \
            f"{perf.trace_id}" in out
        assert "within task:" in out

    def test_events_since_filters_and_tolerates_corrupt_tail(
            self, tmp_path, capsys):
        from repro.obs import FLOW_FINISHED, FLOW_STARTED
        times = iter([10.0, 20.0, 30.0])
        bus = EventBus(clock=lambda: next(times))
        log = tmp_path / "events.jsonl"
        jsonl = JSONLSink(log)
        bus.subscribe(jsonl)
        bus.emit(FLOW_STARTED, flow="f")
        bus.emit(TOOL_FINISHED, flow="f", tool_type="Simulator")
        bus.emit(FLOW_FINISHED, flow="f")
        jsonl.close()
        assert self.run("events", str(log), "--since", "15") == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 2
        with open(log, "a", encoding="utf-8") as handle:
            handle.write('{"cut off')
        assert self.run("events", str(log), "--since", "25") == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1 and "flow_finished" in out[0]


class TestCiTraceSmoke:
    def test_workflow_has_trace_smoke_job(self):
        yaml = pytest.importorskip("yaml")
        workflow = pathlib.Path(__file__).parent.parent / ".github" \
            / "workflows" / "ci.yml"
        doc = yaml.safe_load(workflow.read_text(encoding="utf-8"))
        job = doc["jobs"]["trace-smoke"]
        runs = [step.get("run", "") for step in job["steps"]]
        assert any("benchmarks/check_trace_smoke.py" in r for r in runs)

    def test_baseline_checked_in_and_structural(self):
        baseline = pathlib.Path(__file__).parent.parent / "benchmarks" \
            / "artifacts" / "trace_baseline.json"
        recorded = json.loads(baseline.read_text(encoding="utf-8"))
        assert recorded["critical_chain"] == \
            ["Extractor", "@compose", "Simulator", "Plotter"]
        assert recorded["roots"] == 1
        assert not any(key.endswith("_elapsed") for key in recorded)
