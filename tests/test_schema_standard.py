"""Tests for the reconstructed paper schemas (Figs. 1 and 2)."""

import pytest

from repro.schema import standard as S
from repro.schema.serialize import dumps, loads
from repro.schema.standard import fig1_schema, fig2_schema, odyssey_schema


class TestFig1Schema:
    def test_validates(self, schema_fig1):
        schema_fig1.validate()

    def test_netlist_subtypes(self, schema_fig1):
        assert set(schema_fig1.subtypes_of(S.NETLIST)) == {
            S.EXTRACTED_NETLIST, S.EDITED_NETLIST}

    def test_netlist_is_abstract(self, schema_fig1):
        assert schema_fig1.is_abstract(S.NETLIST)

    def test_performance_functionally_depends_on_simulator(
            self, schema_fig1):
        dep = schema_fig1.functional_dependency(S.PERFORMANCE)
        assert dep.target == S.SIMULATOR

    def test_circuit_is_composed(self, schema_fig1):
        entity = schema_fig1.entity(S.CIRCUIT)
        assert entity.composed
        method = schema_fig1.construction(S.CIRCUIT)
        assert method.tool is None
        assert {d.role for d in method.inputs} == {"models", "netlist"}

    def test_edit_loop_is_optional(self, schema_fig1):
        method = schema_fig1.construction(S.EDITED_NETLIST)
        assert [d.role for d in method.optional_inputs] == ["previous"]

    def test_extractor_has_two_outputs(self, schema_fig1):
        assert set(schema_fig1.outputs_of_tool(S.EXTRACTOR)) == {
            S.EXTRACTED_NETLIST, S.EXTRACTION_STATISTICS}

    def test_verifier_roles(self, schema_fig1):
        method = schema_fig1.construction(S.VERIFICATION)
        assert {d.role for d in method.inputs} == {"reference",
                                                   "candidate"}

    def test_editing_entities_cover_editors(self, schema_fig1):
        editing = set(schema_fig1.editing_entities())
        assert {S.DEVICE_MODELS, S.EDITED_NETLIST,
                S.EDITED_LAYOUT} <= editing

    def test_stimuli_is_source(self, schema_fig1):
        assert schema_fig1.is_source(S.STIMULI)

    def test_sim_args_optional(self, schema_fig1):
        method = schema_fig1.construction(S.PERFORMANCE)
        optional_roles = {d.role for d in method.optional_inputs}
        assert "args" in optional_roles


class TestFig2Schema:
    def test_compiled_simulator_is_simulator_subtype(self, schema_fig2):
        assert schema_fig2.is_subtype(S.COMPILED_SIMULATOR, S.SIMULATOR)

    def test_compiled_simulator_is_a_tool_created_during_design(
            self, schema_fig2):
        entity = schema_fig2.entity(S.COMPILED_SIMULATOR)
        assert entity.is_tool
        method = schema_fig2.construction(S.COMPILED_SIMULATOR)
        assert method.tool == S.SIM_COMPILER
        assert [d.target for d in method.inputs] == [S.NETLIST]

    def test_plain_simulator_remains_installable(self, schema_fig2):
        # Simulator itself has no construction: instances are installed
        assert schema_fig2.construction(S.SIMULATOR) is None


class TestOdysseySchema:
    def test_superset_of_fig2(self):
        fig2 = {e.name for e in fig2_schema().entities()}
        odyssey = {e.name for e in odyssey_schema().entities()}
        assert fig2 <= odyssey

    def test_optimizers_share_supertype(self, schema):
        for optimizer in (S.RANDOM_OPTIMIZER, S.COORDINATE_OPTIMIZER,
                          S.ANNEALING_OPTIMIZER):
            assert schema.is_subtype(optimizer, S.OPTIMIZER)

    def test_optimizer_takes_simulator_as_data(self, schema):
        method = schema.construction(S.OPTIMIZED_NETLIST)
        targets = {d.role: d.target for d in method.inputs}
        assert targets["simulator"] == S.SIMULATOR
        assert schema.entity(S.SIMULATOR).is_tool

    def test_three_layout_generators(self, schema):
        assert schema.construction(S.STD_CELL_LAYOUT).tool == \
            S.STD_CELL_GENERATOR
        assert schema.construction(S.PLA_LAYOUT).tool == S.PLA_GENERATOR

    def test_layout_family(self, schema):
        for layout_type in (S.EDITED_LAYOUT, S.PLACED_LAYOUT,
                            S.STD_CELL_LAYOUT, S.PLA_LAYOUT):
            assert schema.is_subtype(layout_type, S.LAYOUT)

    def test_serialization_roundtrip(self, schema):
        restored = loads(dumps(schema))
        assert {e.name for e in restored.entities()} == \
            {e.name for e in schema.entities()}
        assert set(restored.dependencies()) == set(schema.dependencies())
        restored.validate()

    @pytest.mark.parametrize("factory", [fig1_schema, fig2_schema,
                                         odyssey_schema])
    def test_all_schemas_validate(self, factory):
        factory().validate()
