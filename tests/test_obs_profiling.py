"""Continuous profiling: sampled stacks, memory peaks, query timing.

Covers the PR 9 surface end to end: collapsed-stack collection and the
mergeable :class:`ProfileAggregate` (absorb across worker respawns
never double-counts; clamping keeps self time inside the traced tool
spans — property-tested), the deterministic sampler (scripted clocks,
synchronous sweeps, per-thread tool attribution, opt-in tracemalloc
peaks), the :class:`QueryRecorder` with its fingerprinted slow-query
log (including an injected-slow-statement capture on sqlite), the
``EXPLAIN QUERY PLAN`` index audit, WAL snapshot isolation under
concurrent readers while a writer appends, the machine-readable
timeline model, the profiled-run ledger round trip (schema stays
``ledger.v1``), the two profiling health checks, and the ``repro run
--profile`` / ``repro profile`` CLI surface on all executors.
"""

from __future__ import annotations

import json
import sys
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.errors import ObservabilityError
from repro.execution import DesignEnvironment, encapsulation
from repro.history.database import HistoryDatabase
from repro.history.instance import EntityInstance
from repro.history.sqlite_store import AUDITED_QUERIES, SqliteHistoryStore
from repro.history.store import InMemoryHistoryStore
from repro.obs import (FAIL, OK, TOOL_SPAN, HealthThresholds,
                       JSONLSink, ProfileAggregate, QueryRecorder,
                       RingBufferSink, RunLedger, RunRecord,
                       SamplingProfiler, UNSAMPLED_FRAME,
                       append_profile, collapse_frames, find_profile,
                       merge_profiles, profile_record, read_profiles,
                       render_profile, statement_fingerprint,
                       timeline_model)
from repro.obs.health import (check_query_latency_drift,
                              check_tool_self_time_drift)
from repro.persistence import (PROFILE_FILE, SLOW_QUERY_FILE,
                               save_environment)
from repro.schema import standard as S
from repro.schema.builder import SchemaBuilder
from repro.schema.standard import odyssey_schema
from repro.tools import install_standard_tools, standard_library
from repro.tools import stdcell_layout
from repro.tools.logic import LogicSpec

# ---------------------------------------------------------------------------
# shared fixtures: a 4-branch fan flow with samplable (5ms) tool bodies
# ---------------------------------------------------------------------------


def fan_schema():
    builder = SchemaBuilder("fan")
    builder.data("Spec")
    builder.tool("Tool")
    builder.data("Out")
    builder.produced_by("Out", "Tool", inputs=[("src", "Spec")])
    return builder.build()


def fan_env() -> DesignEnvironment:
    env = DesignEnvironment(fan_schema(), user="tester")

    def fn(ctx, inputs):
        time.sleep(0.005)
        return {"ok": inputs["src"]["n"]}

    env.install_tool("Tool", encapsulation("fan-tool", fn), name="t0")
    for index in range(4):
        env.install_data("Spec", {"n": index}, name=f"s{index}")
    return env


def fan_flow(env: DesignEnvironment):
    tool = env.db.latest("Tool")
    specs = sorted((i for i in env.db.instances()
                    if i.entity_type == "Spec"),
                   key=lambda i: i.name)
    flow = env.new_flow("fan")
    for index, spec in enumerate(specs):
        spec_node = flow.place("Spec", label=f"s{index}")
        flow.bind(spec_node, spec.instance_id)
        out = flow.place("Out", label=f"o{index}")
        tool_node = flow.place("Tool", label=f"t{index}")
        flow.bind(tool_node, tool.instance_id)
        flow.connect(out, tool_node)
        flow.connect(out, spec_node, role="src")
    return flow


def scripted_clock(*ticks: float):
    stream = iter(ticks)
    return lambda: next(stream)


# ---------------------------------------------------------------------------
# statement fingerprints and stack collapsing
# ---------------------------------------------------------------------------
class TestStatementFingerprint:
    def test_stable_across_whitespace(self):
        a = statement_fingerprint("SELECT  x\n FROM t\tWHERE y = ?")
        b = statement_fingerprint("SELECT x FROM t WHERE y = ?")
        assert a == b

    def test_is_short_hex(self):
        fingerprint = statement_fingerprint("SELECT 1")
        assert len(fingerprint) == 12
        int(fingerprint, 16)

    def test_distinct_statements_differ(self):
        assert statement_fingerprint("SELECT 1") != \
            statement_fingerprint("SELECT 2")


class TestCollapseFrames:
    def test_none_is_empty(self):
        assert collapse_frames(None) == ""

    def test_root_first_and_labels(self):
        def inner():
            return collapse_frames(sys._getframe())

        def outer():
            return inner()

        stack = outer()
        labels = stack.split(";")
        assert labels[-1].endswith(":inner")
        assert labels[-2].endswith(":outer")
        assert all(" " not in label for label in labels)

    def test_deep_stacks_truncate_at_the_root(self):
        def recurse(depth):
            if depth == 0:
                return collapse_frames(sys._getframe())
            return recurse(depth - 1)

        stack = recurse(200)
        labels = stack.split(";")
        assert labels[0] == "..."
        from repro.obs.profiling import MAX_STACK_DEPTH
        assert len(labels) == MAX_STACK_DEPTH + 1


# ---------------------------------------------------------------------------
# ProfileAggregate: merge, clamp, containment
# ---------------------------------------------------------------------------
class TestProfileAggregate:
    def test_self_time_bounded_by_busy(self):
        aggregate = ProfileAggregate(0.010)
        aggregate.add_stack("T", "a;b", count=10)  # sampled 100ms
        aggregate.add_invocation("T", busy=0.040)
        assert aggregate.self_time("T") == pytest.approx(0.040)

    def test_self_time_bounded_by_samples(self):
        aggregate = ProfileAggregate(0.010)
        aggregate.add_stack("T", "a;b", count=2)  # sampled 20ms
        aggregate.add_invocation("T", busy=0.500)
        assert aggregate.self_time("T") == pytest.approx(0.020)

    def test_unbusied_tool_uses_sampled_estimate(self):
        aggregate = ProfileAggregate(0.010)
        aggregate.add_stack("T", "a", count=3)
        assert aggregate.self_time("T") == pytest.approx(0.030)

    def test_collapsed_includes_unsampled_tools(self):
        aggregate = ProfileAggregate()
        aggregate.add_stack("Slow", "m:f;m:g", count=2)
        aggregate.add_invocation("Fast", busy=0.0001)
        aggregate.add_invocation("Fast", busy=0.0001)
        lines = aggregate.collapsed().splitlines()
        assert "Slow;m:f;m:g 2" in lines
        assert f"Fast;{UNSAMPLED_FRAME} 2" in lines

    def test_round_trip(self):
        aggregate = ProfileAggregate(0.002)
        aggregate.add_stack("T", "a;b", count=3)
        aggregate.add_invocation("T", busy=0.5, mem_peak=4096)
        aggregate.add_invocation("U", busy=0.25)
        clone = ProfileAggregate.from_dict(aggregate.to_dict())
        assert clone.to_dict() == aggregate.to_dict()
        assert clone.sample_count("T") == 3
        assert clone.self_time("T") == aggregate.self_time("T")

    def test_absorb_rederives_sample_counts(self):
        base = ProfileAggregate(0.001)
        base.add_stack("T", "a", count=4)
        payload = base.to_dict()
        merged = ProfileAggregate(0.001)
        merged.absorb(payload)
        merged.absorb(payload)
        # two worker incarnations with identical stacks: counts sum,
        # and the totals stay consistent with the folded stacks
        assert merged.sample_count("T") == 8
        assert merged.samples == 8
        assert merged.to_dict()["stacks"]["T"]["a"] == 8

    def test_clamp_caps_busy_and_ignores_unknown_tools(self):
        aggregate = ProfileAggregate(0.001)
        aggregate.add_invocation("T", busy=1.0)
        aggregate.clamp_to({"T": 0.25, "Ghost": 0.1})
        assert aggregate.busy_time("T") == pytest.approx(0.25)
        assert "Ghost" not in aggregate.tool_types()

    def test_merge_profiles_empty_and_folding(self):
        assert merge_profiles(None, {}, None) == {}
        a = ProfileAggregate(0.002)
        a.add_stack("T", "x", count=1)
        a.add_invocation("T", busy=0.1)
        b = ProfileAggregate(0.002)
        b.add_stack("T", "x", count=2)
        b.add_invocation("U", busy=0.2, mem_peak=2048)
        merged = ProfileAggregate.from_dict(
            merge_profiles(a.to_dict(), b.to_dict()))
        assert merged.sample_count("T") == 3
        assert merged.busy_time("U") == pytest.approx(0.2)
        assert merged.to_dict()["tools"]["U"]["mem_peak"] == 2048

    @settings(max_examples=60, deadline=None)
    @given(samples=st.integers(0, 500),
           busy=st.floats(0.0, 10.0, allow_nan=False),
           cap=st.floats(0.0, 5.0, allow_nan=False),
           interval=st.floats(0.0001, 0.1, allow_nan=False))
    def test_property_self_time_containment(self, samples, busy, cap,
                                            interval):
        """Self time never exceeds sampled estimate, measured busy
        time, or the span-derived cap the coordinator clamps to."""
        aggregate = ProfileAggregate(interval)
        if samples:
            aggregate.add_stack("T", "a;b", count=samples)
        aggregate.add_invocation("T", busy=busy)
        aggregate.clamp_to({"T": cap})
        self_time = aggregate.self_time("T")
        epsilon = 1e-9
        assert self_time <= samples * interval + epsilon
        assert self_time <= min(busy, cap) + epsilon


# ---------------------------------------------------------------------------
# SamplingProfiler: deterministic sweeps, attribution, memory
# ---------------------------------------------------------------------------
class TestSamplingProfiler:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ObservabilityError):
            SamplingProfiler(0.0)

    def test_invocation_measures_busy_with_scripted_clock(self):
        profiler = SamplingProfiler(0.001,
                                    clock=scripted_clock(2.0, 3.5))
        with profiler.invocation("T"):
            pass
        assert profiler.aggregate.busy_time("T") == pytest.approx(1.5)
        summary = profiler.summary()
        assert summary["tools"]["T"]["calls"] == 1

    def test_sample_once_attributes_stack_to_tool(self):
        profiler = SamplingProfiler(0.001)

        def probe():
            assert profiler.sample_once() == 1
            return "value"

        assert profiler.run("T", probe) == "value"
        assert profiler.aggregate.sample_count("T") == 1
        collapsed = profiler.collapsed()
        assert collapsed.startswith("T;")
        assert ":probe" in collapsed

    def test_sample_once_without_active_threads(self):
        assert SamplingProfiler(0.001).sample_once() == 0

    def test_threads_sampled_under_their_own_tool_types(self):
        profiler = SamplingProfiler(0.001)
        ready = threading.Barrier(3)
        release = threading.Event()

        def body(tool_type):
            with profiler.invocation(tool_type):
                ready.wait(timeout=5)
                release.wait(timeout=5)

        threads = [threading.Thread(target=body, args=(name,))
                   for name in ("Alpha", "Beta")]
        for thread in threads:
            thread.start()
        ready.wait(timeout=5)
        taken = profiler.sample_once()
        release.set()
        for thread in threads:
            thread.join()
        assert taken == 2
        assert profiler.aggregate.sample_count("Alpha") == 1
        assert profiler.aggregate.sample_count("Beta") == 1

    def test_background_sampler_catches_a_busy_body(self):
        profiler = SamplingProfiler(0.0005)
        profiler.start()
        try:
            deadline = time.perf_counter() + 0.05
            with profiler.invocation("Spin"):
                while time.perf_counter() < deadline:
                    pass
        finally:
            profiler.stop()
        assert profiler.aggregate.sample_count("Spin") > 0
        assert profiler.aggregate.self_time("Spin") <= \
            profiler.aggregate.busy_time("Spin") + 1e-9

    def test_memory_peaks_only_when_opted_in(self):
        tracked = SamplingProfiler(0.001, track_memory=True)
        tracked.start()
        try:
            with tracked.invocation("Alloc"):
                blob = bytearray(2_000_000)
                del blob
        finally:
            tracked.stop()
        peak = tracked.summary()["tools"]["Alloc"]["mem_peak_kb"]
        assert peak >= 1024

        untracked = SamplingProfiler(0.001)
        untracked.start()
        try:
            with untracked.invocation("Alloc"):
                blob = bytearray(2_000_000)
                del blob
        finally:
            untracked.stop()
        assert untracked.summary()["tools"]["Alloc"]["mem_peak_kb"] == 0

    def test_summary_includes_attached_query_recorder(self):
        profiler = SamplingProfiler(0.001)
        recorder = QueryRecorder(backend="sqlite")
        recorder.record("SELECT 1", 0.002, rows=1)
        profiler.query_recorder = recorder
        with profiler.invocation("T"):
            pass
        summary = profiler.summary()
        assert summary["query"]["backend"] == "sqlite"
        assert summary["query"]["count"] == 1


# ---------------------------------------------------------------------------
# QueryRecorder: fingerprints and the slow-query log
# ---------------------------------------------------------------------------
class TestQueryRecorder:
    def test_snapshot_aggregates_by_fingerprint(self):
        recorder = QueryRecorder()
        recorder.record("SELECT  a FROM t", 0.002, rows=3)
        recorder.record("SELECT a\nFROM t", 0.004, rows=1)
        snapshot = recorder.snapshot()
        fingerprint = statement_fingerprint("SELECT a FROM t")
        assert set(snapshot) == {fingerprint}
        entry = snapshot[fingerprint]
        assert entry["count"] == 2
        assert entry["rows"] == 4
        assert entry["total_s"] == pytest.approx(0.006)
        assert entry["max_s"] == pytest.approx(0.004)

    def test_timed_reports_rows_via_the_cell(self):
        recorder = QueryRecorder(clock=scripted_clock(1.0, 1.25))
        with recorder.timed("SELECT b FROM t") as cell:
            cell[0] = 7
        entry = recorder.snapshot()[
            statement_fingerprint("SELECT b FROM t")]
        assert entry["rows"] == 7
        assert entry["total_s"] == pytest.approx(0.25)

    def test_summary_empty_until_recorded(self):
        recorder = QueryRecorder(backend="json")
        assert recorder.summary() == {}
        recorder.record("MEM SCAN instances", 0.001, rows=10)
        summary = recorder.summary()
        assert summary["backend"] == "json"
        assert summary["statements"] == 1
        assert summary["slow"] == 0

    def test_slow_statements_land_in_the_jsonl_log(self, tmp_path):
        log = tmp_path / "slow_queries.jsonl"
        recorder = QueryRecorder(slow_threshold=0.005, slow_log=log,
                                 backend="sqlite")
        recorder.record("SELECT fast", 0.001)
        recorder.record("SELECT  slow FROM t", 0.02, rows=9)
        lines = log.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["fingerprint"] == \
            statement_fingerprint("SELECT slow FROM t")
        assert entry["statement"] == "SELECT slow FROM t"
        assert entry["rows"] == 9
        assert entry["backend"] == "sqlite"
        assert recorder.summary()["slow"] == 1


# ---------------------------------------------------------------------------
# history-backend query observability
# ---------------------------------------------------------------------------
def instance_batch(start: int, count: int) -> list[EntityInstance]:
    return [EntityInstance(f"N#{serial}", "Netlist", user="t",
                           timestamp=float(serial))
            for serial in range(start, start + count)]


class TestSqliteQueryObservability:
    def test_reads_are_timed_with_audited_fingerprints(self, tmp_path):
        seeded = SqliteHistoryStore(tmp_path / "h.sqlite")
        for instance in instance_batch(1, 5):
            seeded.add(instance)
        seeded.close()
        # reopen cold so reads hit SQL, not the write-through cache
        store = SqliteHistoryStore(tmp_path / "h.sqlite")
        try:
            recorder = QueryRecorder(backend="sqlite")
            store.set_query_recorder(recorder)
            assert store.get("N#3") is not None
            assert store.ids_of_type("Netlist") == tuple(
                f"N#{serial}" for serial in range(1, 6))
            by_name = {entry[0]: entry[1] for entry in AUDITED_QUERIES}
            snapshot = recorder.snapshot()
            assert statement_fingerprint(
                by_name["instance-by-id"]) in snapshot
            typed = snapshot[statement_fingerprint(
                by_name["instances-of-type"])]
            assert typed["rows"] == 5
        finally:
            store.close()

    def test_detached_recorder_stops_timing(self, tmp_path):
        store = SqliteHistoryStore(tmp_path / "h.sqlite")
        try:
            recorder = QueryRecorder()
            store.set_query_recorder(recorder)
            store.get("N#1")
            counted = len(recorder.snapshot())
            store.set_query_recorder(None)
            store.get("N#1")
            assert len(recorder.snapshot()) == counted
        finally:
            store.close()

    def test_query_plan_audit_uses_indexes_everywhere(self, tmp_path):
        store = SqliteHistoryStore(tmp_path / "h.sqlite")
        try:
            audits = {entry["name"]: entry
                      for entry in store.query_plan_audit()}
            assert set(audits) == {name for name, _, _, _
                                   in AUDITED_QUERIES}
            for name, statement, _, expect_index in AUDITED_QUERIES:
                entry = audits[name]
                assert entry["fingerprint"] == \
                    statement_fingerprint(statement)
                assert entry["expect_index"] is expect_index
                if expect_index:
                    assert entry["uses_index"], \
                        f"{name} lost its index: {entry['plan']}"
                    assert not entry["full_scan"]
            # the whole-history walk is the one sanctioned scan
            assert audits["history-scan"]["full_scan"]
        finally:
            store.close()

    def test_injected_slow_statement_is_captured(self, tmp_path):
        store = SqliteHistoryStore(tmp_path / "h.sqlite")
        log = tmp_path / "slow_queries.jsonl"
        try:
            recorder = QueryRecorder(slow_threshold=0.005,
                                     slow_log=log, backend="sqlite")
            store.set_query_recorder(recorder)
            store._conn.create_function(
                "repro_sleep", 1,
                lambda seconds: time.sleep(seconds) or 0)
            store._fetchall("SELECT repro_sleep(0.02)")
        finally:
            store.close()
        entries = [json.loads(line) for line in
                   log.read_text(encoding="utf-8").splitlines()]
        assert len(entries) == 1
        assert entries[0]["fingerprint"] == \
            statement_fingerprint("SELECT repro_sleep(0.02)")
        assert entries[0]["seconds"] >= 0.02

    def test_wal_snapshot_isolation_under_concurrent_readers(
            self, tmp_path):
        """Readers on their own connections never block the writer,
        always see a consistent prefix, and their timers carry the
        audited statement fingerprints."""
        path = tmp_path / "h.sqlite"
        writer = SqliteHistoryStore(path)
        for instance in instance_batch(1, 10):
            writer.add(instance)
        writer.flush()

        stop = threading.Event()
        failures: list[str] = []
        recorders = [QueryRecorder(backend="sqlite") for _ in range(3)]

        def read_loop(recorder):
            reader = SqliteHistoryStore(path)
            reader.set_query_recorder(recorder)
            try:
                last = 0
                while True:
                    done = stop.is_set()  # always read at least once
                    ids = reader.ids_of_type("Netlist")
                    if len(ids) < last:
                        failures.append(
                            f"count went backwards: {len(ids)} < {last}")
                        return
                    last = len(ids)
                    # every visible prefix is dense: no torn writes
                    if ids != tuple(f"N#{serial}" for serial
                                    in range(1, len(ids) + 1)):
                        failures.append(f"torn prefix: {ids[-3:]}")
                        return
                    if ids and reader.get(ids[-1]) is None:
                        failures.append(f"missing row {ids[-1]}")
                        return
                    if done:
                        return
            finally:
                reader.close()

        threads = [threading.Thread(target=read_loop, args=(recorder,))
                   for recorder in recorders]
        for thread in threads:
            thread.start()
        try:
            for serial in range(11, 61):
                writer.add(EntityInstance(f"N#{serial}", "Netlist",
                                          user="t",
                                          timestamp=float(serial)))
                writer.flush()
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
            writer.close()
        assert failures == []
        by_name = {entry[0]: entry[1] for entry in AUDITED_QUERIES}
        typed_fingerprint = statement_fingerprint(
            by_name["instances-of-type"])
        for recorder in recorders:
            snapshot = recorder.snapshot()
            assert typed_fingerprint in snapshot
            assert snapshot[typed_fingerprint]["count"] > 0


class TestJsonScanObservability:
    def test_scan_paths_are_timed(self):
        store = InMemoryHistoryStore()
        for instance in instance_batch(1, 4):
            store.add(instance)
        recorder = QueryRecorder(backend="json")
        store.set_query_recorder(recorder)
        assert len(list(store.iter_instances())) == 4
        assert store.ids_of_type("Netlist")
        store.consumers_of("N#1")
        snapshot = recorder.snapshot()
        scanned = snapshot[statement_fingerprint("MEM SCAN instances")]
        assert scanned["rows"] == 4
        assert statement_fingerprint(
            "MEM SELECT instances BY entity_type") in snapshot
        assert statement_fingerprint(
            "MEM SELECT consumers BY antecedent") in snapshot

    def test_no_recorder_means_no_overhead_path(self):
        store = InMemoryHistoryStore()
        store.add(EntityInstance("N#1", "Netlist"))
        assert store._recorder is None
        assert list(store.iter_instances())


# ---------------------------------------------------------------------------
# the profiles.jsonl log and its CLI-facing helpers
# ---------------------------------------------------------------------------
class TestProfileLog:
    def make_aggregate(self):
        aggregate = ProfileAggregate(0.001)
        aggregate.add_stack("T", "m:f", count=2)
        aggregate.add_invocation("T", busy=0.01)
        return aggregate

    def test_record_round_trips_through_the_log(self, tmp_path):
        record = profile_record(
            self.make_aggregate(), run_id="run0001", trace_id="t1",
            flow="fan", executor="scheduled",
            query={"backend": "sqlite", "count": 3, "total_s": 0.001},
            timestamp=123.0)
        log = tmp_path / PROFILE_FILE
        append_profile(log, record)
        append_profile(log, profile_record(self.make_aggregate(),
                                           run_id="run0002",
                                           timestamp=124.0))
        records = read_profiles(log)
        assert [r["run_id"] for r in records] == ["run0001", "run0002"]
        assert records[0]["schema_version"] == "profile.v1"
        loaded = ProfileAggregate.from_dict(records[0])
        assert loaded.sample_count("T") == 2

    def test_find_profile_latest_prefix_and_errors(self, tmp_path):
        log = tmp_path / PROFILE_FILE
        for run_id in ("run0001", "run0002", "xyz9"):
            append_profile(log, profile_record(self.make_aggregate(),
                                               run_id=run_id,
                                               timestamp=1.0))
        records = read_profiles(log)
        assert find_profile(records)["run_id"] == "xyz9"
        assert find_profile(records, "run0002")["run_id"] == "run0002"
        with pytest.raises(ObservabilityError):
            find_profile(records, "run000")  # ambiguous
        with pytest.raises(ObservabilityError):
            find_profile(records, "nope")
        with pytest.raises(ObservabilityError):
            find_profile(())

    def test_render_profile_mentions_tools_and_queries(self):
        record = profile_record(
            self.make_aggregate(), run_id="run0042", flow="fan",
            executor="procpool",
            query={"backend": "sqlite", "statements": 2, "count": 9,
                   "total_s": 0.004, "max_s": 0.003, "slow": 1},
            timestamp=1.0)
        rendered = render_profile(record)
        assert "run0042" in rendered
        assert "T: self" in rendered
        assert "queries (sqlite): 2 statement(s)" in rendered


# ---------------------------------------------------------------------------
# ledger round trip: RunRecord.profile is optional and compatible
# ---------------------------------------------------------------------------
class TestLedgerProfile:
    def make_record(self, profile):
        return RunRecord(run_id="r1", timestamp=1.0, flow="fan",
                         executor="scheduled", cache_policy="off",
                         wall_time=0.1, runs=4, profile=profile)

    def test_profile_round_trips(self):
        profile = {"interval_ms": 1.0, "samples": 8,
                   "tools": {"T": {"self_s": 0.005, "busy_s": 0.02,
                                   "calls": 4, "samples": 5,
                                   "mem_peak_kb": 0}},
                   "query": {"backend": "sqlite", "count": 3,
                             "total_s": 0.0001}}
        record = self.make_record(profile)
        clone = RunRecord.from_dict(record.to_dict())
        assert clone.profile == profile
        assert clone.schema_version == record.schema_version
        assert "profiled=8smp" in clone.render()

    def test_old_ledger_records_load_without_profile(self):
        spec = self.make_record(None).to_dict()
        assert "profile" not in spec
        loaded = RunRecord.from_dict(spec)
        assert loaded.profile == {}


# ---------------------------------------------------------------------------
# the two profiling health checks
# ---------------------------------------------------------------------------
def profiled_record(run_id, self_s, query_mean=None, errors=0):
    profile = {"interval_ms": 1.0, "samples": 10,
               "tools": {"Tool": {"self_s": self_s, "busy_s": self_s,
                                  "calls": 4, "samples": 10,
                                  "mem_peak_kb": 0}}}
    if query_mean is not None:
        profile["query"] = {"backend": "sqlite", "count": 100,
                            "total_s": query_mean * 100}
    return RunRecord(run_id=run_id, timestamp=1.0, flow="fan",
                     executor="scheduled", cache_policy="off",
                     wall_time=0.1, runs=4, errors=errors,
                     profile=profile)


class TestProfilingHealthChecks:
    thresholds = HealthThresholds(min_samples=3)

    def baseline(self, self_s=0.010, query_mean=0.0001):
        return [profiled_record(f"r{index}", self_s, query_mean)
                for index in range(5)]

    def test_self_time_within_baseline_is_ok(self):
        result = check_tool_self_time_drift(
            profiled_record("new", 0.010), self.baseline(),
            self.thresholds)
        assert result.verdict == OK

    def test_self_time_drift_fails(self):
        result = check_tool_self_time_drift(
            profiled_record("new", 0.200), self.baseline(),
            self.thresholds)
        assert result.verdict == FAIL
        assert "Tool" in result.detail

    def test_unprofiled_run_passes_trivially(self):
        record = RunRecord(run_id="r", timestamp=1.0, flow="fan",
                           executor="sequential", cache_policy="off")
        result = check_tool_self_time_drift(record, self.baseline(),
                                            self.thresholds)
        assert result.verdict == OK
        assert "no profile" in result.detail

    def test_errored_baseline_runs_are_ignored(self):
        noisy = self.baseline() + [
            profiled_record(f"bad{index}", 10.0, errors=1)
            for index in range(5)]
        result = check_tool_self_time_drift(
            profiled_record("new", 0.010), noisy, self.thresholds)
        assert result.verdict == OK

    def test_query_latency_within_baseline_is_ok(self):
        result = check_query_latency_drift(
            profiled_record("new", 0.01, query_mean=0.0001),
            self.baseline(), self.thresholds)
        assert result.verdict == OK
        assert "baseline" in result.detail

    def test_query_latency_drift_fails(self):
        result = check_query_latency_drift(
            profiled_record("new", 0.01, query_mean=0.02),
            self.baseline(), self.thresholds)
        assert result.verdict == FAIL
        assert "statement latency" in result.detail

    def test_no_query_telemetry_passes(self):
        result = check_query_latency_drift(
            profiled_record("new", 0.01), self.baseline(),
            self.thresholds)
        assert result.verdict == OK
        assert "no query telemetry" in result.detail


# ---------------------------------------------------------------------------
# timeline model (machine-readable satellite)
# ---------------------------------------------------------------------------
class TestTimelineModel:
    def test_raises_without_spans(self):
        with pytest.raises(ObservabilityError):
            timeline_model(())

    def test_model_matches_a_real_procpool_run(self, tmp_path):
        env = fan_env()
        spans = RingBufferSink(512)
        env.tracer.subscribe(spans)
        env.process_executor(workers=2).execute(fan_flow(env))
        model = timeline_model(tuple(spans.events()))
        assert model["flow"] == "fan"
        assert model["wall"] > 0
        lanes = {lane["lane"] for lane in model["lanes"]}
        assert lanes == {"worker0", "worker1"}
        tasks = [task for lane in model["lanes"]
                 for task in lane["tasks"]]
        assert len(tasks) == 4
        for task in tasks:
            assert 0.0 <= task["start"] <= task["end"] <= model["wall"]
            assert task["status"] == "ok"

    def test_trace_timeline_json_cli(self, tmp_path, capsys):
        env = fan_env()
        sink = JSONLSink(tmp_path / "trace.jsonl")
        env.tracer.subscribe(sink)
        env.process_executor(workers=2).execute(fan_flow(env))
        sink.close()
        assert main(["trace", "timeline", str(tmp_path),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["flow"] == "fan"
        assert {lane["lane"] for lane in payload["lanes"]} == \
            {"worker0", "worker1"}


# ---------------------------------------------------------------------------
# executor integration: containment against the traced tool spans
# ---------------------------------------------------------------------------
def tool_span_budget(spans):
    """Summed traced tool-span duration per tool type."""
    budget: dict[str, float] = {}
    for span in spans:
        if span.kind == TOOL_SPAN:
            tool_type = span.value("tool_type",
                                   span.name.split(":", 1)[-1])
            budget[tool_type] = budget.get(tool_type, 0.0) + \
                span.duration
    return budget


class TestExecutorIntegration:
    def profiled_run(self, make_executor):
        env = fan_env()
        spans = RingBufferSink(512)
        env.tracer.subscribe(spans)
        env.profiler = SamplingProfiler(0.001)
        env.profiler.start()
        try:
            make_executor(env).execute(fan_flow(env))
        finally:
            env.profiler.stop()
        return env.profiler.aggregate, tuple(spans.events())

    def assert_contained(self, aggregate, spans):
        budget = tool_span_budget(spans)
        assert "Tool" in aggregate.tool_types()
        assert aggregate.to_dict()["tools"]["Tool"]["calls"] == 4
        for tool_type in aggregate.tool_types():
            assert aggregate.self_time(tool_type) <= \
                budget[tool_type] + 1e-6, \
                f"{tool_type} self time exceeds its traced spans"
        assert "Tool;" in aggregate.collapsed()

    def test_sequential_executor_containment(self):
        aggregate, spans = self.profiled_run(
            lambda env: env.executor())
        self.assert_contained(aggregate, spans)

    def test_scheduled_executor_containment(self):
        aggregate, spans = self.profiled_run(
            lambda env: env.scheduled_executor(machines=2))
        self.assert_contained(aggregate, spans)
        # 4 x 5ms sleeping bodies at a 1ms sweep: the sampler must
        # actually catch some of them in the act
        assert aggregate.sample_count("Tool") > 0

    def test_procpool_ships_profiles_home_and_clamps(self):
        aggregate, spans = self.profiled_run(
            lambda env: env.process_executor(workers=2))
        self.assert_contained(aggregate, spans)
        assert aggregate.sample_count("Tool") > 0

    def test_profiled_run_lands_in_the_ledger(self, tmp_path):
        env = fan_env()
        env.ledger = RunLedger(tmp_path / "ledger.jsonl")
        env.profiler = SamplingProfiler(0.001)
        env.profiler.start()
        try:
            env.process_executor(workers=2).execute(fan_flow(env))
        finally:
            env.profiler.stop()
        record = RunLedger(tmp_path / "ledger.jsonl").records()[-1]
        assert record.profile
        assert record.profile["tools"]["Tool"]["calls"] == 4
        assert record.profile["tools"]["Tool"]["self_s"] <= \
            record.profile["tools"]["Tool"]["busy_s"] + 1e-6


# ---------------------------------------------------------------------------
# the CLI surface: repro run --profile and repro profile ...
# ---------------------------------------------------------------------------
def saved_project(tmp_path, name, backend=None):
    env = DesignEnvironment(odyssey_schema(), user="cli")
    tools = install_standard_tools(env)
    library = standard_library()
    spec = LogicSpec.from_equations("f0", "y = a & b")
    layout = env.install_data(
        S.STD_CELL_LAYOUT,
        stdcell_layout(spec, library, {"seed": 0}), name="variant-0")
    flow = env.new_flow("extract")
    netlist = flow.place(S.EXTRACTED_NETLIST)
    flow.expand(netlist)
    flow.bind(flow.sole_node_of_type(S.LAYOUT), layout.instance_id)
    flow.bind(flow.sole_node_of_type(S.EXTRACTOR),
              tools[S.EXTRACTOR].instance_id)
    env.save_flow("extract", flow)
    directory = tmp_path / name
    save_environment(env, directory, backend=backend)
    return directory


class TestProfileCli:
    def test_run_profile_appends_a_record(self, tmp_path, capsys):
        directory = saved_project(tmp_path, "proj", backend="sqlite")
        assert main(["run", str(directory), "extract", "--profile",
                     "--profile-interval-ms", "0.5", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "profile:" in out
        records = read_profiles(directory / PROFILE_FILE)
        assert len(records) == 1
        record = records[0]
        assert record["schema_version"] == "profile.v1"
        assert record["run_id"]
        assert record["trace_id"]
        assert record["executor"] == "sequential"
        assert S.EXTRACTOR in record["tools"]
        assert record["query"]["backend"] == "sqlite"
        ledger = RunLedger(directory / "ledger.jsonl").records()[-1]
        assert ledger.run_id == record["run_id"]
        assert ledger.profile["tools"][S.EXTRACTOR]["calls"] >= 1

    def test_profile_show_and_flamegraph_and_export(self, tmp_path,
                                                    capsys):
        directory = saved_project(tmp_path, "proj")
        assert main(["run", str(directory), "extract",
                     "--profile"]) == 0
        capsys.readouterr()
        assert main(["profile", "show", str(directory)]) == 0
        shown = capsys.readouterr().out
        assert "profile of run" in shown
        assert S.EXTRACTOR in shown

        out_path = tmp_path / "flame.txt"
        assert main(["profile", "flamegraph", str(directory),
                     "-o", str(out_path)]) == 0
        collapsed = out_path.read_text(encoding="utf-8")
        assert collapsed.strip()
        # every line is valid collapsed-stack: frames, space, count
        for line in collapsed.strip().splitlines():
            frames, _, count = line.rpartition(" ")
            assert frames and int(count) > 0
        assert any(line.startswith(f"{S.EXTRACTOR};")
                   for line in collapsed.splitlines())

        capsys.readouterr()
        assert main(["profile", "export", str(directory)]) == 0
        exported = json.loads(capsys.readouterr().out)
        assert exported["schema_version"] == "profile.v1"

    def test_profile_queries_audits_the_sqlite_backend(self, tmp_path,
                                                       capsys):
        directory = saved_project(tmp_path, "proj", backend="sqlite")
        assert main(["profile", "queries", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "INDEX" in out
        assert "full-scan regression" not in out
        for name, _, _, _ in AUDITED_QUERIES:
            assert name in out

    def test_profile_queries_rejects_json_backend(self, tmp_path,
                                                  capsys):
        directory = saved_project(tmp_path, "proj")
        assert main(["profile", "queries", str(directory)]) == 2
        assert "migrate" in capsys.readouterr().err

    def test_profile_show_without_profiles_fails(self, tmp_path,
                                                 capsys):
        directory = saved_project(tmp_path, "proj")
        assert main(["profile", "show", str(directory)]) == 2
        assert "no profiles recorded" in capsys.readouterr().err

    def test_run_rejects_bad_interval(self, tmp_path, capsys):
        directory = saved_project(tmp_path, "proj")
        assert main(["run", str(directory), "extract", "--profile",
                     "--profile-interval-ms", "0"]) == 2
        assert "--profile-interval-ms" in capsys.readouterr().err

    def test_profiled_procpool_run_via_cli(self, tmp_path, capsys):
        directory = saved_project(tmp_path, "proj")
        assert main(["run", str(directory), "extract", "--profile",
                     "--profile-interval-ms", "0.5",
                     "--executor", "procpool", "--workers", "2"]) == 0
        records = read_profiles(directory / PROFILE_FILE)
        assert records[-1]["executor"] == "procpool"
        assert S.EXTRACTOR in records[-1]["tools"]
